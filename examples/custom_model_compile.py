#!/usr/bin/env python3
"""Bring your own model: build, inspect, and ablate the compiler.

Walks through the full public API on a custom attention block:

1. build an IR graph with the GraphBuilder over symbolic dims;
2. inspect the symbolic shape analysis (what the compiler can *prove*);
3. compare fusion plans across ablated configurations;
4. compile and read the generated kernels;
5. execute and check against the reference interpreter.

Run:  python examples/custom_model_compile.py
"""

import numpy as np

from repro import (A10, CompileOptions, ConstraintLevel, DiscCompiler,
                   ExecutionEngine, FusionConfig, GraphBuilder, evaluate,
                   f32)
from repro.core.fusion import plan_fusion
from repro.core.symbolic import analyze_shapes


def attention_block():
    """Single-head attention with the reshape glue real models carry."""
    b = GraphBuilder("attention")
    batch = b.sym("batch", hint=4)
    seqlen = b.sym("seqlen", hint=64)
    hidden = 64
    rng = np.random.default_rng(0)

    x = b.parameter("x", (batch, seqlen, hidden), f32)
    wq = b.constant(rng.normal(0, 0.1, (hidden, hidden)).astype("f4"))
    wk = b.constant(rng.normal(0, 0.1, (hidden, hidden)).astype("f4"))
    wv = b.constant(rng.normal(0, 0.1, (hidden, hidden)).astype("f4"))

    q = b.dot(x, wq)
    k = b.dot(x, wk)
    v = b.dot(x, wv)
    scores = b.mul(b.dot(q, b.transpose(k, (0, 2, 1))),
                   b.scalar(hidden ** -0.5))
    probs = b.softmax(scores, axis=-1)
    b.outputs(b.dot(probs, v))
    return b.graph, batch, seqlen


def main():
    graph, batch, seqlen = attention_block()

    print("== 1. what the symbolic analysis proves ==")
    analysis = analyze_shapes(graph)
    print(f"  facts: {analysis.summary()}")
    print(f"  seqlen == seqlen across ops: "
          f"{analysis.dims_equal(seqlen, seqlen)}")

    print("\n== 2. fusion plans under ablation ==")
    for label, config in [
        ("no fusion", FusionConfig.none()),
        ("kLoop only", FusionConfig.loop_only()),
        ("kLoop+kInput", FusionConfig.loop_and_input()),
        ("full (with kStitch)", FusionConfig()),
    ]:
        # Fusion runs on the *lowered* graph; compile does this for us,
        # so clone + lower manually for the comparison.
        from repro.passes import PassManager, default_pipeline
        working = graph.clone()
        PassManager(default_pipeline()).run(working)
        plan = plan_fusion(working, analyze_shapes(working), config)
        print(f"  {label:22s}: {plan.stats()}")

    print("\n== 3. compile (constraint-level ablation) ==")
    for level in (ConstraintLevel.NONE, ConstraintLevel.FULL):
        exe = DiscCompiler(CompileOptions(constraint_level=level)).compile(
            graph)
        print(f"  constraints={level.value:8s}: "
              f"{exe.report.num_kernels} kernels")

    executable = DiscCompiler().compile(graph)
    print("\n== 4. a generated stitch kernel (softmax) ==")
    for kernel in executable.kernels:
        if "kStitch" in kernel.name:
            print(kernel.source)
            break

    print("== 5. execute at two shapes and verify ==")
    engine = ExecutionEngine(executable, A10)
    rng = np.random.default_rng(7)
    for shape in [(2, 10, 64), (5, 33, 64)]:
        x = rng.normal(size=shape).astype(np.float32)
        (got,), stats = engine.run({"x": x})
        (want,) = evaluate(graph, {"x": x})
        print(f"  {shape}: match={np.allclose(got, want, atol=1e-4)} "
              f"simulated={stats.device_time_us:.1f} us")


if __name__ == "__main__":
    main()
