#!/usr/bin/env python3
"""Why dynamic shapes break static compilers: a diversity sweep.

Serves the same number of BERT queries while increasing how many *distinct*
shapes appear in the trace, and plots (as an ASCII chart) the amortised
per-query cost — compilation included — for:

- BladeDISC (compile once, shape-generic kernels),
- an XLA-style per-signature JIT,
- a TensorRT-style padded bucket engine.

This is the experiment that motivates the whole paper: at one shape the
static systems look great; at production diversity they drown in
recompilation or padding.

Run:  python examples/shape_diversity_study.py
"""

import numpy as np

from repro import DiscExecutor, build_model, device_named, make_baseline
from repro.workloads.traces import Trace


def k_shape_trace(model, num_queries, k, seed=0):
    spans = {axis: np.linspace(lo, hi, k).astype(int)
             for axis, (lo, hi) in model.axes.items()}
    axis_values = [{axis: int(v[i % k]) for axis, v in spans.items()}
                   for i in range(num_queries)]
    return Trace(model=model, axis_values=axis_values, seed=seed + 1)


def ascii_chart(series, shape_counts, width=50):
    peak = max(max(v) for v in series.values())
    lines = []
    for name, values in series.items():
        lines.append(f"{name}:")
        for k, v in zip(shape_counts, values):
            bar = "#" * max(1, int(width * v / peak))
            lines.append(f"  {k:4d} shapes |{bar} {v:,.0f} us/query")
    return "\n".join(lines)


def main():
    device = device_named("A10")
    model = build_model("bert", layers=3, hidden=256, heads=4)
    shape_counts = (1, 2, 4, 8, 16)
    num_queries = 32

    systems = {
        "BladeDISC": lambda: DiscExecutor(model.graph, device),
        "XLA (JIT/shape)": lambda: make_baseline("XLA", model.graph,
                                                 device),
        "TensorRT (pad)": lambda: make_baseline("TensorRT", model.graph,
                                                device),
    }
    series = {name: [] for name in systems}
    for k in shape_counts:
        trace = k_shape_trace(model, num_queries, k)
        inputs = trace.inputs()
        for name, factory in systems.items():
            timeline = factory().run_trace(inputs)
            series[name].append(timeline.mean_total_us)
        print(f"measured k={k}")

    print(f"\nAmortised us/query (compile included), {num_queries} "
          f"queries on {device.name}:\n")
    print(ascii_chart(series, shape_counts))
    flat = max(series["BladeDISC"]) / min(series["BladeDISC"])
    print(f"\nBladeDISC max/min across diversity: {flat:.2f}x (flat); "
          f"the others climb with every new shape.")


if __name__ == "__main__":
    main()
