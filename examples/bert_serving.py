#!/usr/bin/env python3
"""BERT serving under dynamic sequence lengths: BladeDISC vs everyone.

Replays a Zipf-distributed trace of inference requests (short sequences
dominate, long tail — the shape distribution real serving sees) against
the BERT encoder on the simulated A10, through BladeDISC and all seven
baseline systems, and prints the end-to-end comparison including each
system's compilation story.

Run:  python examples/bert_serving.py [--queries 40] [--device T4]
"""

import argparse

from repro import DiscExecutor, baseline_names, build_model, \
    device_named, make_baseline, make_trace


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--queries", type=int, default=40)
    parser.add_argument("--device", default="A10", choices=("A10", "T4"))
    parser.add_argument("--distribution", default="zipf",
                        choices=("zipf", "uniform", "bimodal", "fixed"))
    args = parser.parse_args()

    device = device_named(args.device)
    model = build_model("bert", layers=3, hidden=256, heads=4)
    trace = make_trace(model, args.queries, args.distribution, seed=0)
    print(f"model: {model.description}")
    print(f"trace: {len(trace)} queries, "
          f"{trace.distinct_signatures()} distinct shape signatures, "
          f"{args.distribution} lengths, device {device.name}\n")

    inputs = trace.inputs()
    disc = DiscExecutor(model.graph, device)
    disc_timeline = disc.run_trace(inputs)

    header = (f"{'system':14s} {'mean us/query':>14s} {'p95 us':>10s} "
              f"{'kernels/query':>14s} {'compiles':>9s} "
              f"{'compile total':>14s} {'speedup':>8s}")
    print(header)
    print("-" * len(header))

    def report(name, timeline):
        speedup = timeline.mean_steady_us / disc_timeline.mean_steady_us
        print(f"{name:14s} {timeline.mean_steady_us:14.1f} "
              f"{timeline.percentile_us(95):10.1f} "
              f"{timeline.kernels / timeline.calls:14.1f} "
              f"{timeline.compile_events:9d} "
              f"{timeline.compile_us / 1e6:12.2f} s "
              f"{speedup:7.2f}x")

    report("BladeDISC", disc_timeline)
    for name in baseline_names():
        executor = make_baseline(name, model.graph, device)
        report(name, executor.run_trace(inputs))

    print("\nspeedup = that system's mean steady latency / BladeDISC's "
          "(compile time shown separately).")


if __name__ == "__main__":
    main()
