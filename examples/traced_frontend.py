#!/usr/bin/env python3
"""The tracing frontend: from plain Python code to a compiled executable.

Real deployments rarely hand-build IR — BladeDISC attaches to PyTorch by
tracing.  This example writes a small attention-pooled classifier as
ordinary Python over traced tensors, captures it once with symbolic batch
and length dims, compiles it, and serves dynamic shapes.

Run:  python examples/traced_frontend.py
"""

import numpy as np

from repro import (A10, ExecutionEngine, compile_graph, evaluate,
                   print_graph, trace)
from repro.frontend import constant
from repro.ir import f32


def make_classifier(hidden: int = 64, classes: int = 4):
    rng = np.random.default_rng(0)
    w_score = rng.normal(0, 0.1, (hidden, 1)).astype(np.float32)
    w_out = rng.normal(0, 0.1, (hidden, classes)).astype(np.float32)

    def classifier(x):
        # x: [batch, length, hidden] with symbolic batch/length.
        scores = (x @ constant(w_score))          # [b, L, 1]
        weights = scores.softmax(axis=1)          # attend over length
        pooled = (x * weights).sum(axis=1)        # [b, hidden]
        normed = pooled.layer_norm(np.ones(hidden, np.float32),
                                   np.zeros(hidden, np.float32))
        return (normed @ constant(w_out)).softmax(axis=-1)

    return trace(classifier, [
        ("x", ("batch", "length", hidden), f32)])


def main():
    graph = make_classifier()
    print("== traced IR ==")
    print(print_graph(graph))

    executable = compile_graph(graph)
    print(f"\ncompiled into {executable.report.num_kernels} kernels "
          f"({executable.report.fusion_stats['by_kind']})")

    engine = ExecutionEngine(executable, A10)
    rng = np.random.default_rng(1)
    print("\n== serving ==")
    for batch, length in [(1, 5), (8, 40), (3, 200)]:
        x = rng.normal(size=(batch, length, 64)).astype(np.float32)
        (probs,), stats = engine.run({"x": x})
        (expected,) = evaluate(graph, {"x": x})
        ok = np.allclose(probs, expected, atol=1e-5)
        print(f"  ({batch:2d},{length:3d}): prob rows sum to "
              f"{probs.sum(axis=-1).mean():.4f}, "
              f"{stats.device_time_us:6.1f} simulated us, "
              f"numerics {'OK' if ok else 'WRONG'}")


if __name__ == "__main__":
    main()
