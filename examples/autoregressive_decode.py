#!/usr/bin/env python3
"""Autoregressive decoding: a new tensor shape at every single step.

Generation grows the sequence by one token per step, so *every* forward
pass has a shape no static compiler has seen before — the harshest dynamic
workload there is.  This example decodes greedily from the GPT-2-style zoo
model and compares three strategies over the whole generation:

- BladeDISC: one shape-generic compile, every step served immediately;
- XLA-style JIT: recompiles at every step (each length is a new
  signature);
- TensorRT-style padded engine: pads each step up to the bucket and wastes
  the difference.

Run:  python examples/autoregressive_decode.py [--steps 24]
"""

import argparse

import numpy as np

from repro import DiscExecutor, build_model, device_named, make_baseline


def decode(executor, prompt_ids, steps):
    """Greedy decode; returns (generated ids, totals dict)."""
    ids = prompt_ids.copy()
    totals = {"steady_us": 0.0, "compile_us": 0.0, "kernels": 0,
              "pad_bytes": 0}
    for _ in range(steps):
        (logits,), stats = executor.run({"input_ids": ids})
        next_token = logits[:, -1, :].argmax(axis=-1)
        ids = np.concatenate([ids, next_token[:, None]], axis=1)
        totals["steady_us"] += stats.steady_time_us
        totals["compile_us"] += stats.compile_time_us
        totals["kernels"] += stats.kernels_launched
        totals["pad_bytes"] += stats.padding_waste_bytes
    return ids, totals


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=24)
    parser.add_argument("--device", default="A10", choices=("A10", "T4"))
    args = parser.parse_args()

    device = device_named(args.device)
    model = build_model("gpt2", layers=2, hidden=192, heads=4, vocab=2048)
    rng = np.random.default_rng(0)
    prompt = rng.integers(0, 2048, size=(1, 8), dtype=np.int64)
    print(f"decoding {args.steps} tokens from an 8-token prompt "
          f"({args.steps} distinct shapes!) on {device.name}\n")

    systems = {
        "BladeDISC": DiscExecutor(model.graph, device),
        "XLA-style JIT": make_baseline("XLA", model.graph, device),
        "TensorRT-style": make_baseline("TensorRT", model.graph, device),
    }
    reference = None
    header = (f"{'system':16s} {'steady total':>14s} {'compile total':>14s}"
              f" {'pad waste':>10s} {'same tokens':>12s}")
    print(header)
    print("-" * len(header))
    for name, executor in systems.items():
        ids, totals = decode(executor, prompt, args.steps)
        if reference is None:
            reference = ids
        same = bool(np.array_equal(ids, reference))
        print(f"{name:16s} {totals['steady_us'] / 1e3:11.2f} ms "
              f"{totals['compile_us'] / 1e6:11.2f} s  "
              f"{totals['pad_bytes'] / 1e6:7.1f} MB {str(same):>12s}")

    print("\nevery step is a new sequence length: the JIT recompiles "
          f"{args.steps} times, the padded engine\nwastes compute on "
          "filler positions, BladeDISC compiled exactly once.")


if __name__ == "__main__":
    main()
