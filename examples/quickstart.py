#!/usr/bin/env python3
"""Quickstart: compile a dynamic-shape model once, run it at any shape.

Builds a small two-layer MLP whose batch size and sequence length are
*symbolic*, compiles it with the DISC pipeline, and serves a handful of
differently-shaped requests from the single compiled executable —
verifying the numerics against the reference interpreter and printing the
simulated A10 cost of every call.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (A10, ExecutionEngine, GraphBuilder, compile_graph,
                   evaluate, f32, print_graph)


def build_model():
    """A tiny model with everything dynamic shapes make hard: a reshape
    across a symbolic boundary, a layer-norm and a softmax."""
    b = GraphBuilder("quickstart")
    batch = b.sym("batch", hint=8)     # hint = likely value (heuristics)
    seqlen = b.sym("seqlen", hint=64)

    x = b.parameter("x", (batch, seqlen, 64), f32)
    w1 = b.constant(np.random.default_rng(0).normal(
        0, 0.05, size=(64, 128)).astype(np.float32))
    w2 = b.constant(np.random.default_rng(1).normal(
        0, 0.05, size=(128, 64)).astype(np.float32))
    gamma = b.constant(np.ones(64, dtype=np.float32))
    beta = b.constant(np.zeros(64, dtype=np.float32))

    flat = b.reshape(x, (b.sym("bs"), 64))       # [batch*seqlen, 64]
    h = b.gelu(b.dot(flat, w1))
    h = b.dot(h, w2)
    h = b.reshape(h, (batch, seqlen, 64))
    h = b.layer_norm(b.add(h, x), gamma, beta)   # residual + LN
    b.outputs(b.softmax(h, axis=-1))
    return b.graph


def main():
    graph = build_model()
    print("== model IR ==")
    print(print_graph(graph))

    # Compile ONCE.  No shape values exist at this point.
    executable = compile_graph(graph)
    report = executable.report
    print(f"\ncompiled: {report.num_kernels} kernels from "
          f"{report.num_nodes} ops; fusion = {report.fusion_stats}")
    print("\n== one generated kernel ==")
    stitch = [k for k in executable.kernels if "kStitch" in k.name]
    print(stitch[0].source if stitch else executable.kernels[0].source)

    engine = ExecutionEngine(executable, A10)
    rng = np.random.default_rng(42)
    print("\n== serving dynamically shaped requests ==")
    for batch, seqlen in [(1, 7), (4, 64), (2, 200), (16, 3)]:
        x = rng.normal(size=(batch, seqlen, 64)).astype(np.float32)
        (result,), stats = engine.run({"x": x})
        (expected,) = evaluate(graph, {"x": x})
        ok = np.allclose(result, expected, atol=1e-4)
        print(f"  shape ({batch:3d},{seqlen:4d}): "
              f"{stats.kernels_launched:3d} kernels, "
              f"{stats.device_time_us:8.1f} us simulated device time, "
              f"numerics {'OK' if ok else 'WRONG'}")
    print("\nsame executable, every shape — zero recompilation.")


if __name__ == "__main__":
    main()
