"""Fuzz-case serialisation: (graph, bindings, metadata) <-> JSON.

A corpus case is self-contained: the graph goes through
:mod:`repro.ir.serde` (weights embedded), the dim bindings and a free-form
metadata dict ride alongside.  Minimized repros from fuzz campaigns are
written here and checked into ``tests/regressions/corpus``, where the
regression suite replays them through the differential oracle forever
after.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..ir.graph import Graph
from ..ir.serde import graph_from_dict, graph_to_dict

__all__ = ["save_case", "load_case", "iter_corpus", "case_filename"]

_CASE_VERSION = 1


def save_case(path, graph: Graph, bindings: dict,
              meta: dict | None = None) -> Path:
    """Write one corpus case; returns the path."""
    payload = {
        "case_version": _CASE_VERSION,
        "graph": graph_to_dict(graph),
        "bindings": {str(k): int(v) for k, v in (bindings or {}).items()},
        "meta": meta or {},
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as f:
        json.dump(payload, f, indent=1, sort_keys=True)
    return path


def load_case(path) -> tuple[Graph, dict, dict]:
    """Read one corpus case: (graph, bindings, meta)."""
    with open(path) as f:
        payload = json.load(f)
    version = payload.get("case_version")
    if version != _CASE_VERSION:
        raise ValueError(f"unsupported corpus case version {version!r}")
    graph = graph_from_dict(payload["graph"])
    bindings = {k: int(v) for k, v in payload.get("bindings", {}).items()}
    return graph, bindings, payload.get("meta", {})


def iter_corpus(directory) -> list[Path]:
    """All corpus case files under ``directory``, sorted by name."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return sorted(directory.glob("*.json"))


def case_filename(tag: str, index: int) -> str:
    return f"case_{tag}_{index:03d}.json"
