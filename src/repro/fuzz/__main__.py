"""CLI entry point: ``python -m repro.fuzz --seed N --iters K``."""

from __future__ import annotations

import argparse
import sys

from ..lint.diagnostics import LintLevel
from .generator import GeneratorConfig
from .oracle import DifferentialOracle
from .runner import run_campaign


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="Differential fuzzing of the DISC pipeline against "
                    "the reference interpreter and simulated baselines.")
    parser.add_argument("--seed", type=int, default=0,
                        help="campaign seed (default 0)")
    parser.add_argument("--iters", type=int, default=100,
                        help="number of random graphs (default 100)")
    parser.add_argument("--max-nodes", type=int, default=None,
                        help="cap on generated graph size")
    parser.add_argument("--bindings-per-graph", type=int, default=3,
                        help="shape assignments checked per graph")
    parser.add_argument("--out", default="fuzz-artifacts",
                        help="directory for minimized failure repros")
    parser.add_argument("--no-minimize", action="store_true",
                        help="skip delta-debugging of failures")
    parser.add_argument("--lint", action="store_true",
                        help="run the repro.lint analyzer suite on every "
                             "case (generated graph + pipeline artifacts) "
                             "and treat failing diagnostics as oracle "
                             "failures; also cross-checks the interval "
                             "engine dynamically — every concrete shape "
                             "executed must lie inside its statically "
                             "derived interval")
    parser.add_argument("--lint-level", choices=["default", "strict"],
                        default="default",
                        help="lint strictness when --lint is set "
                             "(strict also fails on warnings)")
    parser.add_argument("--serving", action="store_true",
                        help="additionally replay every case through the "
                             "serving runtime (virtual scheduler seeded "
                             "from the case, injected compile faults); "
                             "responses must be OK and bit-identical to "
                             "a direct engine run")
    parser.add_argument("--batching", action="store_true",
                        help="additionally replay every case through the "
                             "dynamic-batching serving engine (cold burst "
                             "explodes, warm burst batches, lone request "
                             "serves solo; injected compile faults hit the "
                             "batched plan key); responses must be OK and "
                             "bit-identical to a direct engine run, and a "
                             "permanent fault must quarantine the batched "
                             "key to solo service")
    parser.add_argument("--obs", action="store_true",
                        help="additionally recompile and re-run every "
                             "case under a CapturingTracer: outputs and "
                             "RunStats must be bit-identical to the "
                             "untraced run and the recorded trace must "
                             "satisfy the structural trace invariants")
    parser.add_argument("--tuning", action="store_true",
                        help="additionally run the schedule autotuner on "
                             "every case: tuned plans must be bit-"
                             "identical to heuristic plans, never slower "
                             "on simulated device time, deterministic, "
                             "and within the search budget; seed-varied, "
                             "a serving run with an injected tuner fault "
                             "must quarantine the search while every "
                             "response stays OK")
    parser.add_argument("--fleet", action="store_true",
                        help="additionally drive every case through a "
                             "multi-replica serving fleet (routing policy "
                             "and replica count varied by seed, seeded "
                             "per-replica compile/tuner fault schedules, "
                             "a replica drained mid-stream); no request "
                             "may be lost or double-served across the "
                             "scale-down, quarantine must stay on the "
                             "faulted replica, and every response must be "
                             "OK and bit-identical to a direct engine run")
    parser.add_argument("--memplan", action="store_true",
                        help="additionally audit the symbolic (class-wide) "
                             "memory plan on every case: the frozen slot "
                             "expressions must price the binding exactly "
                             "like the concrete plan and stay inside the "
                             "class peak interval, the ground-truth memory "
                             "oracle must never observe more live bytes "
                             "than the plan charges, the plan's aliasing "
                             "proof and the independent L602 analyzer must "
                             "agree and both be clean, and a recompile "
                             "under the peak-aware reorder pass must stay "
                             "bit-identical")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    config = GeneratorConfig()
    if args.max_nodes is not None:
        config.max_nodes = args.max_nodes
    oracle = None
    if args.lint or args.serving or args.batching or args.obs \
            or args.tuning or args.fleet or args.memplan:
        oracle = DifferentialOracle(
            lint_level=LintLevel(args.lint_level) if args.lint
            else LintLevel.OFF,
            serving=args.serving, batching=args.batching, obs=args.obs,
            tuning=args.tuning, fleet=args.fleet, memplan=args.memplan)
    report = run_campaign(
        seed=args.seed, iters=args.iters, config=config,
        out_dir=args.out, minimize_failures=not args.no_minimize,
        oracle=oracle,
        bindings_per_graph=args.bindings_per_graph,
        log=lambda msg: print(msg, file=sys.stderr))
    print(report.summary())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
