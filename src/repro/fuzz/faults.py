"""Deliberate fault injection, for validating the oracle and minimizer.

A fuzzer that has never caught a planted bug proves nothing.  This module
plants two kinds:

- :func:`corrupt_kernel` perturbs the output of one compiled kernel in an
  :class:`~repro.runtime.executable.Executable` — a stand-in for a codegen
  miscompile.  The differential oracle must flag the engine run.
- :class:`CorruptedInterpreter` mis-executes one op kind (by silently
  forwarding its input) — a *semantic* fault whose observability depends on
  the graph's structure, which is exactly what the minimizer needs: the
  minimal repro is the smallest graph where the bad op still reaches an
  output.
- :class:`CompileFaultInjector` fails *background compiles* in the serving
  runtime on a deterministic schedule — transient failures that must be
  retried away and permanent failures that must quarantine the signature
  to the interpreter fallback, never surfacing to a response.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..interp.interpreter import Interpreter
from ..ir.graph import Graph
from ..ir.shapes import is_static
from ..numerics import (apply_op, bind_inputs, concretize_attrs,
                        concretize_shape, unify_shape)
from ..runtime.executable import Executable
from ..serving.compilepool import (PermanentCompileError,
                                   TransientCompileError)

__all__ = ["CompileFaultInjector", "TunerFaultError",
           "TunerFaultInjector", "corrupt_kernel",
           "CorruptedInterpreter"]


def corrupt_kernel(executable: Executable, kernel_index: int = 0,
                   delta: float = 1.0) -> Executable:
    """Wrap one kernel's callable so its first output is off by ``delta``.

    Mutates (and returns) ``executable``.  Non-float outputs are perturbed
    by casting the delta into their dtype, so even integer kernels corrupt
    visibly.
    """
    kernels = [k for k in executable.kernels if k.members]
    kernel = kernels[kernel_index % len(kernels)]
    original = kernel.fn

    def corrupted(args, dims):
        outputs = list(original(args, dims))
        first = np.asarray(outputs[0])
        outputs[0] = first + np.asarray(delta).astype(first.dtype)
        return tuple(outputs)

    kernel.fn = corrupted
    return executable


class CompileFaultInjector:
    """Deterministic compile-fault schedule for serving-runtime runs.

    Plugs into ``ServingEngine(compile_fault=...)``; called once per
    compile attempt with ``(model, signature, attempt)``:

    - the first ``transient_attempts`` attempts of every signature raise
      :class:`TransientCompileError` (the pool must retry with backoff
      and eventually succeed);
    - if ``permanent`` is True — or the signature is the Nth distinct
      one with ``permanent_every=N`` (1-based) — every attempt raises
      :class:`PermanentCompileError` (the pool must quarantine).

    The schedule depends only on submission order, so it is exactly as
    deterministic as the virtual scheduler driving it.  ``calls`` logs
    every attempt for assertions.
    """

    def __init__(self, transient_attempts: int = 0,
                 permanent: bool = False,
                 permanent_every: int | None = None) -> None:
        self.transient_attempts = transient_attempts
        self.permanent = permanent
        self.permanent_every = permanent_every
        #: distinct (model, signature) keys in first-seen order.
        self.seen: dict = {}
        #: log of (model, signature, attempt) per invocation.
        self.calls: list[tuple] = []

    def __call__(self, model: str, signature: tuple,
                 attempt: int) -> None:
        key = (model, signature)
        if key not in self.seen:
            self.seen[key] = len(self.seen) + 1
        self.calls.append((model, signature, attempt))
        index = self.seen[key]
        if self.permanent or (self.permanent_every is not None
                              and index % self.permanent_every == 0):
            raise PermanentCompileError(
                f"injected permanent fault for {model} sig#{index}")
        if attempt < self.transient_attempts:
            raise TransientCompileError(
                f"injected transient fault for {model} sig#{index} "
                f"attempt {attempt}")


class TunerFaultError(RuntimeError):
    """Injected schedule-search failure (distinct from compile faults)."""


class TunerFaultInjector:
    """Deterministic tuner-fault schedule for serving-runtime runs.

    Plugs into ``ServingEngine(tuning_fault=...)``; called once per
    background compile attempt with ``(model, signature, attempt)``.
    The first ``fault_signatures`` distinct (model, signature) keys
    raise :class:`TunerFaultError` on every attempt.  The serving
    engine must quarantine only the key's *tuning*: the compile still
    completes, a heuristic (untuned) plan is installed, and every
    response stays OK and bit-identical — a tuner defect can cost
    performance, never correctness or availability.
    """

    def __init__(self, fault_signatures: int = 1) -> None:
        self.fault_signatures = fault_signatures
        #: distinct (model, signature) keys in first-seen order.
        self.seen: dict = {}
        #: log of (model, signature, attempt) per invocation.
        self.calls: list[tuple] = []

    def __call__(self, model: str, signature: tuple,
                 attempt: int) -> None:
        key = (model, signature)
        if key not in self.seen:
            self.seen[key] = len(self.seen) + 1
        self.calls.append((model, signature, attempt))
        if self.seen[key] <= self.fault_signatures:
            raise TunerFaultError(
                f"injected tuner fault for {model} "
                f"sig#{self.seen[key]}")


class CorruptedInterpreter(Interpreter):
    """An interpreter that mis-executes every node of one op kind.

    ``bad_op`` nodes forward their first operand unchanged (cast to the
    node's dtype so the graph still type-checks downstream).  Differential
    comparison against the true interpreter then fails exactly when a
    ``bad_op`` node's value reaches an output — the property the
    minimizer's test predicate uses.
    """

    def __init__(self, graph: Graph, bad_op: str,
                 check_shapes: bool = True) -> None:
        super().__init__(graph, check_shapes)
        self.bad_op = bad_op

    def run(self, inputs: Mapping[str, np.ndarray]) -> list[np.ndarray]:
        bindings = bind_inputs(self.graph.params, inputs)
        env: dict = {}
        for node in self.graph.nodes:
            if node.op == "parameter":
                value = np.ascontiguousarray(
                    inputs[node.attrs["param_name"]])
            else:
                args = [env[operand] for operand in node.inputs]
                attrs = concretize_attrs(node, bindings,
                                         [a.shape for a in args])
                if node.op == self.bad_op:
                    value = np.asarray(args[0])
                else:
                    value = np.asarray(apply_op(node.op, args, attrs))
            expected_np = node.dtype.to_numpy()
            if value.dtype != expected_np:
                value = value.astype(expected_np)
            if self.check_shapes and node.op != self.bad_op:
                unify_shape(node.shape, value.shape, bindings)
                if is_static(node.shape):
                    expected = concretize_shape(node.shape, bindings)
                    if tuple(value.shape) != expected:
                        raise RuntimeError(
                            f"{node.short()}: computed shape "
                            f"{value.shape} != inferred {expected}")
            env[node] = value
        return [env[out] for out in self.graph.outputs]
