"""Campaign driver: generate -> sample shapes -> check -> minimize -> save.

A campaign is fully determined by ``(seed, iters, config)``: case ``i``
uses graph seed ``seed * 1_000_003 + i``, its binding suite and input
seeds derive from the same value.  Failing cases are delta-debugged down
and written to the output directory as corpus JSON plus a human-readable
report line.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

from ..ir.graph import Graph
from ..numerics.resolve import resolve_all_dims
from .corpus import case_filename, save_case
from .generator import GeneratorConfig, generate_graph
from .minimizer import minimize
from .oracle import DifferentialOracle
from .sampler import binding_suite, free_symbols

__all__ = ["FuzzReport", "run_campaign"]

_CASE_STRIDE = 1_000_003


@dataclass
class FuzzReport:
    """What a campaign did; ``summary()`` renders the CLI report."""

    seed: int
    iters: int
    cases_run: int = 0
    checks_run: int = 0
    ops_covered: set = field(default_factory=set)
    executors: list = field(default_factory=list)
    failures: list = field(default_factory=list)  # (case_seed, CaseResult)
    artifacts: list = field(default_factory=list)  # saved corpus paths
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        lines = [
            f"fuzz campaign: seed={self.seed} iters={self.iters}",
            f"  cases run:       {self.cases_run} graphs, "
            f"{self.checks_run} (graph, binding) checks",
            f"  executors:       {', '.join(self.executors)}",
            f"  ops covered:     {len(self.ops_covered)} "
            f"({', '.join(sorted(self.ops_covered))})",
            f"  elapsed:         {self.elapsed_s:.1f}s",
            f"  failures:        {len(self.failures)}",
        ]
        for case_seed, result in self.failures:
            lines.append(f"    case seed {case_seed} "
                         f"bindings={result.bindings}:")
            for failure in result.failures:
                lines.append(f"      {failure}")
        for path in self.artifacts:
            lines.append(f"  minimized repro: {path}")
        return "\n".join(lines)


def full_bindings(graph: Graph,
                  bindings: Mapping[str, int]) -> dict[str, int]:
    """Free bindings extended with every derivable symbol of ``graph``.

    Minimizer cuts can promote interior nodes (whose shapes mention
    *derived* symbols — merged-reshape dims, concat sums) to parameters;
    input synthesis for the shrunk graph then needs those symbols bound.
    """
    resolved = dict(bindings)
    resolve_all_dims(graph.nodes, resolved)
    return resolved


def _failure_predicate(oracle: DifferentialOracle, bindings: dict,
                       input_seed: int, executors: set):
    """A graph "still fails" when any of the original culprits still do."""

    def still_fails(candidate: Graph) -> bool:
        result = oracle.check_case(candidate, bindings, input_seed)
        return bool(result.failed_executors() & executors)

    return still_fails


def run_campaign(seed: int, iters: int,
                 config: GeneratorConfig | None = None,
                 out_dir=None, minimize_failures: bool = True,
                 oracle: DifferentialOracle | None = None,
                 bindings_per_graph: int = 3,
                 log=None) -> FuzzReport:
    """Run ``iters`` differential cases; returns the :class:`FuzzReport`."""
    config = config or GeneratorConfig()
    oracle = oracle or DifferentialOracle()
    report = FuzzReport(seed=seed, iters=iters)
    started = time.perf_counter()
    for i in range(iters):
        case_seed = seed * _CASE_STRIDE + i
        graph = generate_graph(case_seed, config)
        report.cases_run += 1
        report.ops_covered |= {n.op for n in graph.nodes}
        suite = binding_suite(graph, limit=bindings_per_graph,
                              seed=case_seed)
        for binding_index, bindings in enumerate(suite):
            input_seed = case_seed * 7 + binding_index
            result = oracle.check_case(graph, bindings, input_seed)
            report.checks_run += 1
            if not report.executors:
                report.executors = list(result.executors_checked)
            if result.ok:
                continue
            report.failures.append((case_seed, result))
            if log is not None:
                log(f"FAIL case seed {case_seed} bindings={bindings}: "
                    + "; ".join(str(f) for f in result.failures))
            if minimize_failures and out_dir is not None:
                path = _minimize_and_save(
                    graph, bindings, input_seed, result, oracle,
                    Path(out_dir), case_seed, len(report.failures) - 1)
                if path is not None:
                    report.artifacts.append(str(path))
            break  # further bindings for a broken graph add noise
    report.elapsed_s = time.perf_counter() - started
    return report


def _minimize_and_save(graph: Graph, bindings: dict, input_seed: int,
                       result, oracle: DifferentialOracle, out_dir: Path,
                       case_seed: int, index: int):
    """Shrink one failing case and persist it as a corpus artifact."""
    extended = full_bindings(graph, bindings)
    predicate = _failure_predicate(oracle, extended, input_seed,
                                   result.failed_executors())
    try:
        shrunk = minimize(graph, predicate)
        minimized, note = shrunk.graph, \
            f"minimized {shrunk.original_nodes}->{shrunk.minimized_nodes}"
    except Exception as exc:  # noqa: BLE001 - keep the unshrunk repro
        minimized, note = graph, f"minimize failed: {exc}"
    # Only persist the symbols the shrunk graph actually needs.
    needed = set(free_symbols(minimized))
    kept = {k: v for k, v in extended.items() if k in needed}
    meta = {
        "case_seed": case_seed,
        "input_seed": input_seed,
        "note": note,
        "failures": [str(f) for f in result.failures],
        "executors": sorted(result.failed_executors()),
    }
    return save_case(out_dir / case_filename("fuzz", index),
                     minimized, kept, meta)
