"""Differential compiler fuzzing for the DISC pipeline.

The paper's claim is that one compiled artifact stays correct for *every*
shape.  This package cross-checks that claim systematically rather than by
hand-built cases:

- :mod:`generator` — a seeded random graph generator drawing from the
  ``repro.ir.ops`` registry; every emitted graph is well-formed (built
  through :class:`~repro.ir.builder.GraphBuilder`, so shape inference has
  already accepted it) and carries symbolic dims.
- :mod:`sampler` — binds the free symbols of a graph to adversarial edge
  values (1, 2, primes, large, equal-vs-unequal) and synthesizes the
  concrete input arrays.
- :mod:`oracle` — runs one (graph, binding) case through the optimizing
  pipeline + runtime engine and through all seven simulated baselines,
  comparing numerics against the reference interpreter with dtype-aware
  tolerances, and asserting pipeline invariants along the way.
- :mod:`minimizer` — delta-debugging shrinker that reduces a failing graph
  to a minimal repro while a predicate keeps holding.
- :mod:`faults` — deliberate fault injection (corrupted kernels, corrupted
  op semantics) used to validate that the oracle and minimizer actually
  catch and shrink miscompiles.
- :mod:`corpus` — (graph, bindings) case serialisation via ``ir.serde``;
  minimized repros are checked into ``tests/regressions/corpus``.
- :mod:`runner` / ``__main__`` — the campaign driver behind
  ``python -m repro.fuzz --seed N --iters K``.
"""

from .corpus import load_case, save_case
from .faults import CompileFaultInjector, CorruptedInterpreter, \
    TunerFaultError, TunerFaultInjector, corrupt_kernel
from .generator import GeneratorConfig, generate_graph
from .minimizer import MinimizeResult, minimize
from .oracle import CaseResult, DifferentialOracle, Failure, make_inputs
from .runner import FuzzReport, run_campaign
from .sampler import binding_suite, free_symbols, sample_bindings

__all__ = [
    "GeneratorConfig",
    "generate_graph",
    "free_symbols",
    "sample_bindings",
    "binding_suite",
    "make_inputs",
    "DifferentialOracle",
    "CaseResult",
    "Failure",
    "minimize",
    "MinimizeResult",
    "corrupt_kernel",
    "CorruptedInterpreter",
    "CompileFaultInjector",
    "TunerFaultError",
    "TunerFaultInjector",
    "save_case",
    "load_case",
    "run_campaign",
    "FuzzReport",
]
