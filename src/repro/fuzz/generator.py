"""Seeded random graph generation over the ``repro.ir.ops`` registry.

The generator grows a well-formed graph one op at a time through
:class:`~repro.ir.builder.GraphBuilder`, so every emitted graph has already
passed symbolic shape inference; ``tests/fuzz`` additionally asserts the
verifier accepts every generated graph.  The op mix deliberately mirrors
what the fusion planner must handle: elementwise chains, explicit
broadcasts, reshape/transpose glue, reduce-rooted subgraphs, matmuls,
concat/slice/gather data movement and composites (softmax/gelu/layer_norm)
that the lowering pass decomposes.

Numerical sanity is part of graph generation, not input generation: ops
that explode (``exp`` of a large value) or leave their domain (``log`` of a
negative) are guarded by *sanitizer subgraphs built from registry ops* —
``log`` gets ``abs(x) + c``, a hot ``exp`` gets a ``tanh`` squash, ``div``
denominators are bounded away from zero.  That keeps the differential
oracle's comparisons meaningful while the guards themselves widen op
coverage.

Determinism: one ``seed`` fixes the graph exactly (``random.Random``, whose
sequence is stable across Python versions for the methods used here).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np

from ..ir import dtypes as dt
from ..ir.builder import GraphBuilder
from ..ir.graph import Graph
from ..ir.node import Node
from ..ir.shapes import SymDim

__all__ = ["GeneratorConfig", "GraphGenerator", "generate_graph"]


@dataclass
class GeneratorConfig:
    """Knobs for the random graph generator."""

    #: stop growing once the graph holds this many nodes.
    max_nodes: int = 26
    #: tensor parameters to seed the value pool with.
    num_params: int = 2
    #: symbolic dims shared by the parameter shapes.
    num_symbols: int = 2
    #: maximum tensor rank generated.
    max_rank: int = 3
    #: static extents drawn for non-symbolic dims.
    static_dims: tuple = (1, 2, 3, 4, 6, 8)
    #: element dtypes for parameters.
    dtypes: tuple = (dt.f32,)
    #: op families that may be drawn (weight 0 disables one).
    weights: dict = field(default_factory=lambda: {
        "unary": 6, "binary": 6, "compare_select": 2, "broadcast": 2,
        "reshape": 3, "transpose": 2, "reduce": 3, "matmul": 2,
        "composite": 2, "concat": 1, "slice": 1, "gather": 1,
        "cast": 1, "iota": 1,
    })
    #: magnitude bound above which explosive ops get a tanh squash first.
    magnitude_cap: float = 60.0


# unary ops grouped by numeric behaviour
_SAFE_UNARY = ("neg", "abs", "tanh", "relu", "sigmoid", "erf", "floor",
               "sign")
_POSITIVE_UNARY = ("log", "sqrt", "rsqrt")  # need operand > 0
_EXPLOSIVE_UNARY = ("exp",)                 # need bounded operand
_SAFE_BINARY = ("add", "sub", "mul", "maximum", "minimum")
_REDUCE_KINDS = ("sum", "max", "min", "mean")
_COMPARES = ("eq", "ne", "lt", "le", "gt", "ge")


class GraphGenerator:
    """Grows one random graph; see :func:`generate_graph`."""

    def __init__(self, seed: int, config: GeneratorConfig | None = None):
        self.config = config or GeneratorConfig()
        self.rng = random.Random(seed)
        self.np_rng = np.random.default_rng(seed ^ 0x5EED)
        self.builder = GraphBuilder(f"fuzz_{seed}")
        #: symbols available for parameter shapes.
        self.symbols: list[SymDim] = []
        #: pool of values ops may consume.
        self.pool: list[Node] = []
        #: crude per-value magnitude bound, used to keep numerics finite.
        self.mag: dict[Node, float] = {}
        self._fresh = 0

    # -- helpers ----------------------------------------------------------

    def _remember(self, node: Node, mag: float) -> Node:
        self.pool.append(node)
        self.mag[node] = min(mag, 1e30)
        return node

    def _pick(self, predicate=None) -> Node | None:
        candidates = [v for v in self.pool
                      if predicate is None or predicate(v)]
        if not candidates:
            return None
        return self.rng.choice(candidates)

    def _fresh_sym(self, prefix: str) -> SymDim:
        self._fresh += 1
        return self.builder.sym(f"{prefix}{self._fresh}")

    def _random_shape(self) -> tuple:
        rank = self.rng.randint(1, self.config.max_rank)
        shape = []
        for axis in range(rank):
            if self.symbols and self.rng.random() < 0.45:
                shape.append(self.rng.choice(self.symbols))
            else:
                shape.append(self.rng.choice(self.config.static_dims))
        return tuple(shape)

    def _float(self, node: Node) -> bool:
        return node.dtype.is_float

    # -- numeric guards ---------------------------------------------------

    def _squash(self, node: Node) -> Node:
        """Bound a value into [-1, 1] via tanh (a registry op)."""
        out = self.builder.tanh(node)
        return self._remember(out, 1.0)

    def _positive(self, node: Node) -> Node:
        """Rewrite a value to be strictly positive: abs(x) + 0.25."""
        b = self.builder
        absd = self._remember(b.abs(node), self.mag[node])
        out = b.add(absd, b.scalar(0.25, node.dtype))
        return self._remember(out, self.mag[node] + 0.25)

    # -- op family emitters ------------------------------------------------
    # Each returns True when it added at least one node.

    def _emit_unary(self) -> bool:
        operand = self._pick(self._float)
        if operand is None:
            return False
        kind = self.rng.choice(("safe", "positive", "explosive"))
        if kind == "safe":
            op = self.rng.choice(_SAFE_UNARY)
            mag = {"tanh": 1.0, "sigmoid": 1.0, "erf": 1.0,
                   "sign": 1.0}.get(op, self.mag[operand])
            self._remember(getattr(self.builder, op)(operand), mag)
        elif kind == "positive":
            op = self.rng.choice(_POSITIVE_UNARY)
            operand = self._positive(operand)
            self._remember(getattr(self.builder, op)(operand),
                           max(2.0, self.mag[operand]))
        else:
            if self.mag[operand] > self.config.magnitude_cap:
                operand = self._squash(operand)
            self._remember(self.builder.exp(operand),
                           float(np.exp(min(self.mag[operand], 60.0))))
        return True

    def _emit_binary(self) -> bool:
        a = self._pick(self._float)
        if a is None:
            return False
        b = self._pick(lambda v: v.dtype is a.dtype
                       and self._compatible(a, v))
        if b is None:
            return False
        use_div = self.rng.random() < 0.2
        if use_div:
            denom = self._positive(b)
            out = self.builder.div(a, denom)
            self._remember(out, self.mag[a] * 4.0)
            return True
        op = self.rng.choice(_SAFE_BINARY)
        out = getattr(self.builder, op)(a, b)
        mag = self.mag[a] * self.mag[b] if op == "mul" \
            else self.mag[a] + self.mag[b]
        self._remember(out, mag)
        return True

    def _compatible(self, a: Node, b: Node) -> bool:
        """Can the builder coerce ``a`` and ``b`` to one shape?"""
        if a.shape == b.shape:
            return True
        lo, hi = sorted((a, b), key=lambda n: len(n.shape))
        offset = len(hi.shape) - len(lo.shape)
        return all(d == 1 or d == hi.shape[i + offset]
                   for i, d in enumerate(lo.shape))

    def _emit_compare_select(self) -> bool:
        a = self._pick(self._float)
        if a is None:
            return False
        b = self._pick(lambda v: v.shape == a.shape and v.dtype is a.dtype)
        if b is None:
            return False
        op = self.rng.choice(_COMPARES)
        pred = self._remember(getattr(self.builder, op)(a, b), 1.0)
        out = self.builder.select(pred, a, b)
        self._remember(out, max(self.mag[a], self.mag[b]))
        return True

    def _emit_broadcast(self) -> bool:
        operand = self._pick(lambda v: len(v.shape) < self.config.max_rank)
        if operand is None:
            return False
        lead_rank = self.rng.randint(1, self.config.max_rank
                                     - len(operand.shape))
        lead = tuple(self.rng.choice(self.symbols)
                     if self.symbols and self.rng.random() < 0.5
                     else self.rng.choice(self.config.static_dims)
                     for _ in range(lead_rank))
        out = self.builder.broadcast_to(operand, lead + operand.shape)
        self._remember(out, self.mag[operand])
        return True

    def _emit_reshape(self) -> bool:
        operand = self._pick(lambda v: len(v.shape) >= 2)
        if operand is None:
            return False
        shape = operand.shape
        axis = self.rng.randrange(len(shape) - 1)
        merged = self._fresh_sym("m")
        new_shape = shape[:axis] + (merged,) + shape[axis + 2:]
        out = self.builder.reshape(operand, new_shape)
        if out is operand:
            return False
        self._remember(out, self.mag[operand])
        if self.rng.random() < 0.4:
            # unflatten back: products provably equal, any binding valid.
            back = self.builder.reshape(out, shape)
            self._remember(back, self.mag[operand])
        return True

    def _emit_transpose(self) -> bool:
        operand = self._pick(lambda v: len(v.shape) >= 2)
        if operand is None:
            return False
        perm = list(range(len(operand.shape)))
        self.rng.shuffle(perm)
        out = self.builder.transpose(operand, tuple(perm))
        self._remember(out, self.mag[operand])
        return True

    def _emit_reduce(self) -> bool:
        operand = self._pick(self._float)
        if operand is None or not operand.shape:
            return False
        rank = len(operand.shape)
        axes = tuple(sorted(self.rng.sample(
            range(rank), self.rng.randint(1, rank))))
        kind = self.rng.choice(_REDUCE_KINDS)
        keepdims = self.rng.random() < 0.5
        out = self.builder.reduce(operand, kind, axes, keepdims)
        reduced = 1.0
        for a in axes:
            d = operand.shape[a]
            reduced *= d if isinstance(d, int) else 128
        mag = self.mag[operand] * (reduced if kind == "sum"
                                   else 1.0)
        self._remember(out, mag)
        return True

    def _emit_matmul(self) -> bool:
        a = self._pick(lambda v: len(v.shape) >= 2 and v.dtype.is_float)
        if a is None:
            return False
        k = a.shape[-1]
        n = self.rng.choice(self.config.static_dims)
        w = self.builder.parameter(f"w{self._next_param()}", (k, n),
                                   a.dtype)
        self.mag[w] = 1.0
        out = self.builder.dot(a, w)
        k_bound = k if isinstance(k, int) else 128
        self._remember(out, self.mag[a] * k_bound)
        return True

    def _emit_composite(self) -> bool:
        operand = self._pick(lambda v: self._float(v) and len(v.shape) >= 1)
        if operand is None:
            return False
        choice = self.rng.choice(("softmax", "gelu", "layer_norm"))
        if choice == "softmax":
            out = self.builder.softmax(operand, axis=-1)
            self._remember(out, 1.0)
        elif choice == "gelu":
            if self.mag[operand] > self.config.magnitude_cap:
                operand = self._squash(operand)
            out = self.builder.gelu(operand)
            self._remember(out, self.mag[operand])
        else:
            last = operand.shape[-1]
            scale = self.builder.parameter(
                f"w{self._next_param()}", (last,), operand.dtype)
            bias = self.builder.parameter(
                f"w{self._next_param()}", (last,), operand.dtype)
            self.mag[scale] = self.mag[bias] = 2.0
            out = self.builder.layer_norm(operand, scale, bias)
            self._remember(out, 8.0)
        return True

    def _emit_concat(self) -> bool:
        a = self._pick()
        if a is None or not a.shape:
            return False
        b = self._pick(lambda v: v.shape == a.shape and v.dtype is a.dtype)
        if b is None:
            return False
        axis = self.rng.randrange(len(a.shape))
        out = self.builder.concat((a, b), axis)
        self._remember(out, max(self.mag[a], self.mag[b]))
        return True

    def _emit_slice(self) -> bool:
        operand = self._pick(lambda v: any(
            isinstance(d, int) and d >= 2 for d in v.shape))
        if operand is None:
            return False
        starts, limits = [], []
        for d in operand.shape:
            if isinstance(d, int) and d >= 2 and self.rng.random() < 0.6:
                lo = self.rng.randrange(d - 1)
                hi = self.rng.randint(lo + 1, d)
                starts.append(lo)
                limits.append(hi)
            else:
                starts.append(0)
                limits.append(d)
        out = self.builder.slice(operand, starts, limits)
        self._remember(out, self.mag[operand])
        return True

    def _emit_gather(self) -> bool:
        operand = self._pick(lambda v: isinstance(v.shape[0], int)
                             and v.shape[0] >= 1 if v.shape else False)
        if operand is None:
            return False
        table = int(operand.shape[0])
        count = self.rng.randint(1, 4)
        idx = self.builder.constant(
            self.np_rng.integers(0, table, size=(count,)).astype(np.int64))
        self.mag[idx] = float(table)
        out = self.builder.gather(operand, idx, axis=0)
        self._remember(out, self.mag[operand])
        return True

    def _emit_cast(self) -> bool:
        operand = self._pick(self._float)
        if operand is None:
            return False
        # float -> int -> float keeps values exact for |x| < 2**31.
        bounded = operand
        if self.mag[operand] > 1e6:
            bounded = self._squash(operand)
        floored = self._remember(self.builder.floor(bounded),
                                 self.mag[bounded])
        as_int = self._remember(self.builder.cast(floored, dt.i32),
                                self.mag[bounded])
        back = self.builder.cast(as_int, operand.dtype)
        self._remember(back, self.mag[bounded])
        return True

    def _emit_iota(self) -> bool:
        shape = self._random_shape()
        axis = self.rng.randrange(len(shape))
        out = self.builder.iota(shape, axis=axis, dtype=dt.i64)
        extent = shape[axis]
        self._remember(out, float(extent) if isinstance(extent, int)
                       else 128.0)
        if self.rng.random() < 0.5:
            cast = self.builder.cast(out, dt.f32)
            self._remember(cast, self.mag[out])
        return True

    # -- driver -----------------------------------------------------------

    _param_counter = 0

    def _next_param(self) -> int:
        self._param_counter += 1
        return self._param_counter

    def generate(self) -> Graph:
        config = self.config
        for i in range(config.num_symbols):
            self.symbols.append(self.builder.sym(
                f"d{i}", hint=self.rng.choice((4, 8, 16, 64))))
        for i in range(config.num_params):
            shape = list(self._random_shape())
            if i == 0 and not any(isinstance(d, SymDim) for d in shape):
                shape[self.rng.randrange(len(shape))] = \
                    self.rng.choice(self.symbols)
            dtype = self.rng.choice(config.dtypes)
            param = self.builder.parameter(f"p{i}", tuple(shape), dtype)
            self.mag[param] = 2.0
            self.pool.append(param)
        # Interior ops may only reference symbols the inputs bind: a
        # broadcast/iota dim using an un-anchored symbol would be
        # unresolvable at run time.
        anchored = {d.name for p in self.pool
                    for d in p.shape if isinstance(d, SymDim)}
        self.symbols = [s for s in self.symbols if s.name in anchored]

        emitters = {
            "unary": self._emit_unary,
            "binary": self._emit_binary,
            "compare_select": self._emit_compare_select,
            "broadcast": self._emit_broadcast,
            "reshape": self._emit_reshape,
            "transpose": self._emit_transpose,
            "reduce": self._emit_reduce,
            "matmul": self._emit_matmul,
            "composite": self._emit_composite,
            "concat": self._emit_concat,
            "slice": self._emit_slice,
            "gather": self._emit_gather,
            "cast": self._emit_cast,
            "iota": self._emit_iota,
        }
        families = [f for f, w in config.weights.items() if w > 0]
        weights = [config.weights[f] for f in families]
        stall = 0
        while len(self.builder.graph.nodes) < config.max_nodes \
                and stall < 50:
            family = self.rng.choices(families, weights)[0]
            if emitters[family]():
                stall = 0
            else:
                stall += 1

        self._choose_outputs()
        return self.builder.graph

    def _choose_outputs(self) -> None:
        graph = self.builder.graph
        used = {operand for node in graph.nodes for operand in node.inputs}
        sinks = [v for v in self.pool
                 if v not in used and v.op != "parameter"]
        if not sinks:
            fallback = self._pick(lambda v: v.op != "parameter")
            if fallback is None:
                fallback = self._remember(
                    self.builder.exp(self.pool[0]), 8.0)
            sinks = [fallback]
        count = min(len(sinks), self.rng.randint(1, 3))
        self.builder.outputs(*self.rng.sample(sinks, count))


def generate_graph(seed: int,
                   config: GeneratorConfig | None = None) -> Graph:
    """One well-formed random graph, fully determined by ``seed``."""
    return GraphGenerator(seed, config).generate()
