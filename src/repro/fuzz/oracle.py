"""The differential oracle: every executor against the interpreter.

One *case* is a (graph, dim bindings, input seed) triple.  The oracle

1. synthesizes concrete inputs for the bindings (:func:`make_inputs`);
2. evaluates the reference interpreter — the source of numerical truth;
3. compiles the graph through the full optimizing pipeline with
   per-pass IR verification, asserting the structural invariants (fusion
   plan is an acyclic total partition, buffer plan never shares a slot
   between overlapping live ranges);
4. runs the compiled executable on the runtime engine and all seven
   simulated baselines, comparing every output against the reference with
   dtype-aware tolerances.

Any deviation — wrong numbers, an exception in one executor but not the
reference, or a broken invariant — is recorded as a :class:`Failure`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from ..baselines.systems import baseline_names, make_baseline
from ..core.pipeline import CompileOptions, compile_graph
from ..device.profiles import A10, DeviceProfile
from ..interp.interpreter import evaluate
from ..ir.graph import Graph
from ..ir.shapes import substitute
from ..ir.verifier import verify
from ..lint.diagnostics import LintLevel
from ..lint.engine import lint_graph
from ..runtime.engine import ExecutionEngine

__all__ = ["Failure", "CaseResult", "DifferentialOracle", "make_inputs",
           "compare_arrays", "DISC_EXECUTOR", "SERVING_EXECUTOR",
           "BATCHING_EXECUTOR", "OBS_EXECUTOR", "TUNING_EXECUTOR",
           "FLEET_EXECUTOR", "MEMPLAN_EXECUTOR"]

#: name under which the optimized pipeline appears in results.
DISC_EXECUTOR = "DISC"
#: name under which the serving-runtime replay appears in results.
SERVING_EXECUTOR = "SERVING"
#: name under which the dynamic-batching serving replay appears.
BATCHING_EXECUTOR = "BATCHING"
#: name under which the tracing (observability) oracle appears.
OBS_EXECUTOR = "OBS"
#: name under which the schedule-autotuning oracle appears.
TUNING_EXECUTOR = "TUNING"
#: name under which the multi-replica fleet oracle appears.
FLEET_EXECUTOR = "FLEET"
#: name under which the symbolic-memory-plan oracle appears.
MEMPLAN_EXECUTOR = "MEMPLAN"

#: (rtol, atol) per dtype name; ints/bools compare exactly.
_TOLERANCES = {
    "f16": (2e-2, 2e-2),
    "f32": (2e-4, 1e-5),
    "f64": (1e-8, 1e-10),
}


def make_inputs(graph: Graph, bindings: Mapping[str, int],
                seed: int = 0) -> dict[str, np.ndarray]:
    """Deterministic input arrays for every parameter of ``graph``.

    Floats are drawn from a bounded uniform range (the generator's
    magnitude guards assume |x| <= 2), ints from a small non-negative
    range, bools fairly.
    """
    rng = np.random.default_rng(seed)
    inputs: dict[str, np.ndarray] = {}
    for param in graph.params:
        shape = substitute(param.shape, bindings)
        concrete = tuple(int(d) for d in shape)
        dtype = param.dtype
        if dtype.is_float:
            value = rng.uniform(-2.0, 2.0, size=concrete)
        elif dtype.is_bool:
            value = rng.integers(0, 2, size=concrete)
        else:
            value = rng.integers(0, 4, size=concrete)
        inputs[param.attrs["param_name"]] = value.astype(dtype.to_numpy())
    return inputs


def compare_arrays(reference: np.ndarray, got: np.ndarray,
                   dtype_name: str) -> str | None:
    """None when ``got`` matches ``reference``; else a short description."""
    if reference.shape != got.shape:
        return f"shape {got.shape} != reference {reference.shape}"
    if reference.dtype != got.dtype:
        return f"dtype {got.dtype} != reference {reference.dtype}"
    tol = _TOLERANCES.get(dtype_name)
    if tol is None:
        if not np.array_equal(reference, got):
            bad = int(np.sum(reference != got))
            return f"{bad} element(s) differ (exact dtype {dtype_name})"
        return None
    rtol, atol = tol
    ref_finite = np.isfinite(reference)
    got_finite = np.isfinite(got)
    if not np.array_equal(ref_finite, got_finite):
        return "finite/non-finite pattern differs"
    # Non-finite entries must agree exactly (inf sign, nan-for-nan).
    if not np.array_equal(reference[~ref_finite], got[~got_finite],
                          equal_nan=True):
        return "non-finite values differ"
    a = reference[ref_finite].astype(np.float64)
    b = got[got_finite].astype(np.float64)
    err = np.abs(a - b) - (atol + rtol * np.abs(a))
    if err.size and float(np.max(err)) > 0:
        worst = float(np.max(np.abs(a - b)))
        return f"max abs err {worst:.3e} beyond rtol={rtol}, atol={atol}"
    return None


@dataclass
class Failure:
    """One observed deviation for one executor on one case."""

    executor: str
    kind: str        # "mismatch" | "exception" | "invariant"
    detail: str
    output_index: int | None = None

    def __str__(self) -> str:
        where = "" if self.output_index is None \
            else f" (output {self.output_index})"
        return f"[{self.executor}] {self.kind}{where}: {self.detail}"


@dataclass
class CaseResult:
    """Everything the oracle observed for one (graph, bindings) case."""

    graph: Graph
    bindings: dict
    input_seed: int
    failures: list = field(default_factory=list)
    executors_checked: list = field(default_factory=list)
    ops_covered: set = field(default_factory=set)

    @property
    def ok(self) -> bool:
        return not self.failures

    def failed_executors(self) -> set:
        return {f.executor for f in self.failures}


class DifferentialOracle:
    """Checks cases against the interpreter across all executors."""

    def __init__(self, device: DeviceProfile = A10,
                 baselines: tuple | None = None,
                 check_invariants: bool = True,
                 lint_level: LintLevel = LintLevel.OFF,
                 serving: bool = False,
                 batching: bool = False,
                 obs: bool = False,
                 tuning: bool = False,
                 fleet: bool = False,
                 memplan: bool = False) -> None:
        self.device = device
        self.baselines = tuple(baselines) if baselines is not None \
            else tuple(baseline_names())
        self.check_invariants = check_invariants
        #: when True, every case is additionally replayed through the
        #: serving runtime (repro.serving) under a virtual scheduler
        #: seeded from the case, with injected compile faults; every
        #: response must arrive OK and be *bit-identical* to a direct
        #: ExecutionEngine run of the same inputs.
        self.serving = serving
        #: when True, every case is additionally replayed through the
        #: *dynamic-batching* serving engine: bursts that co-bucket and
        #: batch, a late lone request that serves solo, and injected
        #: compile faults against the batched plan key.  Every response
        #: must arrive OK and bit-identical to a direct engine run (no
        #: cross-member contamination inside a batch), and a permanent
        #: fault must pin the bucket to solo service via quarantine.
        self.batching = batching
        #: when not OFF, the static-analysis suite (repro.lint) runs on
        #: every case — the generated graph before compilation and the
        #: full pipeline artifacts after — and any failing diagnostic is
        #: an oracle failure of kind "lint" (a second, independent oracle
        #: beside the numeric comparison).
        self.lint_level = lint_level
        #: when True, every case additionally recompiles and re-runs the
        #: pipeline under a CapturingTracer: outputs and RunStats must be
        #: bit-identical to the untraced run, and the recorded trace must
        #: satisfy the structural invariants (balanced spans, parent
        #: containment, pass coverage, kernel accounting) — a third
        #: oracle asserting on system *behavior*, not just numbers.
        self.obs = obs
        #: when True, every case additionally runs the schedule
        #: autotuner: tuned plans must be bit-identical to heuristic
        #: plans (schedules change cost, never numerics), never slower
        #: on simulated device time, deterministic (same signature and
        #: budget => same winners, same spend), and within budget — and,
        #: seed-varied, a serving run with an injected tuner fault must
        #: quarantine the search while every response stays OK.
        self.tuning = tuning
        #: when True, every case additionally drives a multi-replica
        #: fleet (routing policy and replica count varied by seed) with
        #: seeded *per-replica* compile and tuner fault schedules and a
        #: mid-stream replica drain.  Invariants: no request is lost or
        #: double-served across the scale-down, quarantine stays
        #: confined to the faulted replica, and every response is OK
        #: and bit-identical to a direct engine run.
        self.fleet = fleet
        #: when True, every case additionally audits the symbolic
        #: (class-wide) memory plan: the frozen slot expressions must
        #: price the case's binding exactly like the concrete plan, the
        #: class peak interval must contain it, the ground-truth oracle
        #: (``measure_peak_bytes``) must never observe more live bytes
        #: than the plan charges, the plan's own aliasing proof and the
        #: independent L602 analyzer must both be clean *and agree*,
        #: and a recompile under the peak-aware reorder pass must stay
        #: bit-identical.
        self.memplan = memplan

    # -- single case -------------------------------------------------------

    def check_case(self, graph: Graph, bindings: Mapping[str, int],
                   input_seed: int = 0) -> CaseResult:
        result = CaseResult(graph=graph, bindings=dict(bindings),
                            input_seed=input_seed,
                            ops_covered={n.op for n in graph.nodes})
        if self.lint_level is not LintLevel.OFF:
            # The raw generated graph legitimately carries dead code (DCE
            # has not run yet), so only error-severity findings gate here;
            # the chosen level applies in full to the pipeline artifacts.
            for diag in lint_graph(graph).failures(LintLevel.DEFAULT):
                result.failures.append(Failure(
                    executor="lint", kind="lint",
                    detail=f"generated graph: {diag}"))
            # Dynamic cross-check of the interval engine: every concrete
            # value this case actually binds/derives must lie inside the
            # statically derived interval for its symbol — a violation
            # means the L6xx abstraction is unsound, the one defect the
            # analyzers themselves cannot see.
            try:
                from ..core.symbolic.intervals import \
                    check_dynamic_bindings
                for detail in check_dynamic_bindings(graph, bindings):
                    result.failures.append(Failure(
                        executor="lint", kind="interval",
                        detail=f"static/dynamic disagreement: {detail}"))
            except Exception as exc:  # noqa: BLE001 - unbindable case
                result.failures.append(Failure(
                    executor="lint", kind="interval",
                    detail=f"interval cross-check crashed: "
                           f"{type(exc).__name__}: {exc}"))
        try:
            inputs = make_inputs(graph, bindings, input_seed)
        except Exception as exc:  # noqa: BLE001 - unbindable case
            result.failures.append(Failure(
                executor="inputs", kind="exception",
                detail=f"{type(exc).__name__}: {exc}"))
            return result
        try:
            reference = [np.asarray(v) for v in evaluate(graph, inputs)]
        except Exception as exc:  # noqa: BLE001 - the fuzzer must survive
            result.failures.append(Failure(
                executor="interpreter", kind="exception",
                detail=f"{type(exc).__name__}: {exc}"))
            return result

        executable = self._check_pipeline(graph, inputs, reference, result)
        if self.serving and executable is not None:
            self._check_serving(inputs, executable, result)
        if self.batching and executable is not None:
            self._check_batching(inputs, executable, result)
        if self.tuning and executable is not None:
            self._check_tuning(inputs, executable, result)
        if self.fleet and executable is not None:
            self._check_fleet(inputs, executable, result)
        if self.memplan and executable is not None:
            self._check_memplan(graph, inputs, executable, result)
        if self.obs:
            self._check_obs(graph, inputs, executable, result)
        self._check_baselines(graph, inputs, reference, result)
        del executable
        return result

    # -- optimized pipeline ------------------------------------------------

    def _check_pipeline(self, graph: Graph, inputs, reference,
                        result: CaseResult):
        result.executors_checked.append(DISC_EXECUTOR)
        options = CompileOptions(verify_each_pass=self.check_invariants,
                                 lint_level=self.lint_level)
        try:
            executable = compile_graph(graph, options)
        except Exception as exc:  # noqa: BLE001
            result.failures.append(Failure(
                executor=DISC_EXECUTOR, kind="exception",
                detail=f"compile: {type(exc).__name__}: {exc}"))
            return None
        if self.check_invariants:
            for failure in self._invariant_failures(executable):
                result.failures.append(failure)
        if executable.report.lint is not None:
            for diag in executable.report.lint.failures(self.lint_level):
                result.failures.append(Failure(
                    executor=DISC_EXECUTOR, kind="lint",
                    detail=f"pipeline artifacts: {diag}"))
        try:
            engine = ExecutionEngine(executable, self.device)
            outputs, _stats = engine.run(inputs)
        except Exception as exc:  # noqa: BLE001
            result.failures.append(Failure(
                executor=DISC_EXECUTOR, kind="exception",
                detail=f"run: {type(exc).__name__}: {exc}"))
            return executable
        self._compare(DISC_EXECUTOR, graph, reference, outputs, result)
        return executable

    def _invariant_failures(self, executable) -> list[Failure]:
        failures: list[Failure] = []
        try:
            verify(executable.graph)
        except Exception as exc:  # noqa: BLE001
            failures.append(Failure(
                executor=DISC_EXECUTOR, kind="invariant",
                detail=f"post-pipeline verify: {exc}"))
        try:
            ordered = executable.plan.ordered_groups()
            planned = {m for g in ordered for m in g.members}
            computed = {n for n in executable.graph.nodes
                        if n.op not in ("parameter", "constant")}
            missing = computed - planned
            if missing:
                failures.append(Failure(
                    executor=DISC_EXECUTOR, kind="invariant",
                    detail=f"fusion plan misses nodes: "
                           f"{sorted(n.short() for n in missing)}"))
        except Exception as exc:  # noqa: BLE001
            failures.append(Failure(
                executor=DISC_EXECUTOR, kind="invariant",
                detail=f"fusion plan not acyclic: {exc}"))
        if executable.buffer_plan is not None:
            try:
                executable.buffer_plan.verify_no_overlap_sharing()
            except Exception as exc:  # noqa: BLE001
                failures.append(Failure(
                    executor=DISC_EXECUTOR, kind="invariant",
                    detail=f"buffer plan: {exc}"))
        return failures

    # -- serving runtime ---------------------------------------------------

    def _check_serving(self, inputs, executable,
                       result: CaseResult) -> None:
        """Replay the case through the serving runtime with faults.

        The fault schedule varies deterministically with the input seed
        (every third case quarantines permanently, every other one eats
        a transient retry first), so the campaign exercises the fast,
        fallback and quarantined paths.  The contract is strict: every
        response is OK and bit-identical to a direct engine run.
        """
        from ..serving import (ServingEngine, ServingOptions,
                               SignatureCompileCost, VirtualScheduler)
        from .faults import CompileFaultInjector

        result.executors_checked.append(SERVING_EXECUTOR)
        seed = result.input_seed
        try:
            expected, _ = ExecutionEngine(executable, self.device).run(
                inputs)
            fault = CompileFaultInjector(
                transient_attempts=1 if seed % 2 == 0 else 0,
                permanent=seed % 3 == 2)
            scheduler = VirtualScheduler(seed=seed)
            serving = ServingEngine(
                self.device, scheduler,
                ServingOptions(
                    compile_workers=1,
                    compile_backoff_us=1_000.0,
                    compile_cost=SignatureCompileCost(
                        fixed_us=5_000.0, per_kernel_us=100.0)),
                compile_fault=fault)
            serving.register_model("case", executable)
            tickets: list = []
            # A cold-start burst (fallback + in-flight coalescing), then
            # a late request once compiles settled (fast or quarantined).
            scheduler.call_at(0.0, lambda: tickets.extend(
                serving.submit("case", inputs) for _ in range(2)))
            scheduler.call_at(1e8, lambda: tickets.append(
                serving.submit("case", inputs)))
            scheduler.run_until_idle()
        except Exception as exc:  # noqa: BLE001
            result.failures.append(Failure(
                executor=SERVING_EXECUTOR, kind="exception",
                detail=f"{type(exc).__name__}: {exc}"))
            return
        for ticket in tickets:
            response = ticket.response
            if response is None or not response.ok:
                status = "unresolved" if response is None \
                    else response.status.value
                result.failures.append(Failure(
                    executor=SERVING_EXECUTOR, kind="exception",
                    detail=f"request {ticket.request.id} ended "
                           f"{status}, expected ok"))
                continue
            for index, (ref, got) in enumerate(zip(expected,
                                                   response.outputs)):
                ref = np.asarray(ref)
                got = np.asarray(got)
                if (ref.shape != got.shape or ref.dtype != got.dtype
                        or ref.tobytes() != got.tobytes()):
                    result.failures.append(Failure(
                        executor=SERVING_EXECUTOR, kind="mismatch",
                        detail=f"path {response.path!r} not "
                               f"bit-identical to direct engine run",
                        output_index=index))

    # -- multi-replica fleet -----------------------------------------------

    def _check_fleet(self, inputs, executable,
                     result: CaseResult) -> None:
        """Drive a replica fleet through the case with per-replica faults.

        Routing policy and replica count vary with the seed; replica
        ``r0`` carries a seeded compile-fault schedule (and, every
        fourth seed, a tuner-fault schedule on top of budgeted tuning)
        while the other replicas stay clean, and ``r0`` is drained
        mid-stream.  The invariants: every request resolves OK and
        bit-identical to a direct engine run, none is lost or
        double-served across the scale-down, and quarantine never
        leaks off the faulted replica.
        """
        from ..serving import (FleetEngine, FleetOptions, ReplicaState,
                               ServingOptions, SignatureCompileCost,
                               VirtualScheduler)
        from ..tuning import TuningOptions
        from .faults import CompileFaultInjector, TunerFaultInjector

        result.executors_checked.append(FLEET_EXECUTOR)
        seed = result.input_seed
        policy = ("affinity", "round_robin",
                  "least_outstanding")[seed % 3]
        replicas = 2 + seed % 2
        tune = seed % 4 == 3
        faults: dict = {}

        def compile_fault_factory(uid):
            if uid != 0:
                return None
            return faults.setdefault(uid, CompileFaultInjector(
                transient_attempts=1 if seed % 2 == 0 else 0,
                permanent=seed % 3 == 2))

        def tuning_fault_factory(uid):
            return TunerFaultInjector() if uid == 0 else None

        try:
            expected, _ = ExecutionEngine(executable, self.device).run(
                inputs)
            scheduler = VirtualScheduler(seed=seed)
            fleet = FleetEngine(
                self.device, scheduler,
                FleetOptions(
                    replicas=replicas, policy=policy,
                    serving=ServingOptions(
                        compile_workers=1,
                        compile_backoff_us=1_000.0,
                        compile_cost=SignatureCompileCost(
                            fixed_us=5_000.0, per_kernel_us=100.0),
                        tuning=(TuningOptions(budget_us=2_000.0)
                                if tune else None))),
                compile_fault_factory=compile_fault_factory,
                tuning_fault_factory=(tuning_fault_factory if tune
                                      else None))
            fleet.register_model("case", executable)
            tickets: list = []
            # A cold burst across the fleet, a scale-down mid-stream,
            # then a late wave that must survive the retired replica.
            scheduler.call_at(0.0, lambda: tickets.extend(
                fleet.submit("case", inputs) for _ in range(3)))
            scheduler.call_at(5e7, lambda: fleet.drain("r0"))
            scheduler.call_at(1e8, lambda: tickets.extend(
                fleet.submit("case", inputs) for _ in range(3)))
            scheduler.run_until_idle()
        except Exception as exc:  # noqa: BLE001
            result.failures.append(Failure(
                executor=FLEET_EXECUTOR, kind="exception",
                detail=f"{type(exc).__name__}: {exc}"))
            return
        counters = fleet.stats()["requests"]
        if counters["submitted"] != 6 or counters["ok"] != 6:
            result.failures.append(Failure(
                executor=FLEET_EXECUTOR, kind="invariant",
                detail=f"{counters['submitted']} submitted / "
                       f"{counters['ok']} ok across scale-down, "
                       "expected 6/6 (lost or double-served)"))
        drained = fleet.replica("r0")
        if drained.state is not ReplicaState.RETIRED \
                or drained.outstanding() != 0:
            result.failures.append(Failure(
                executor=FLEET_EXECUTOR, kind="invariant",
                detail=f"drained replica ended {drained.state.value} "
                       f"with {drained.outstanding()} outstanding"))
        for replica in fleet.replicas() + fleet.retired:
            if replica.name == "r0":
                continue
            leaked = (replica.engine._quarantined
                      | replica.engine._tuning_quarantined)
            if leaked:
                result.failures.append(Failure(
                    executor=FLEET_EXECUTOR, kind="invariant",
                    detail=f"quarantine leaked off the faulted replica "
                           f"onto {replica.name}: {sorted(leaked)[:1]}"))
        for ticket in tickets:
            response = ticket.response
            if response is None or not response.ok:
                status = "unresolved" if response is None \
                    else response.status.value
                result.failures.append(Failure(
                    executor=FLEET_EXECUTOR, kind="exception",
                    detail=f"fleet request {ticket.seq} ended "
                           f"{status}, expected ok"))
                continue
            for index, (ref, got) in enumerate(zip(expected,
                                                   response.outputs)):
                ref = np.asarray(ref)
                got = np.asarray(got)
                if (ref.shape != got.shape or ref.dtype != got.dtype
                        or ref.tobytes() != got.tobytes()):
                    result.failures.append(Failure(
                        executor=FLEET_EXECUTOR, kind="mismatch",
                        detail=f"replica {ticket.replica!r} path "
                               f"{response.path!r} not bit-identical "
                               "to direct engine run",
                        output_index=index))

    # -- symbolic memory plan ------------------------------------------------

    def _check_memplan(self, graph: Graph, inputs, executable,
                       result: CaseResult) -> None:
        """Audit the symbolic (class-wide) memory plan on this case.

        Five contracts: (1) *exactness* — the class plan's frozen slot
        expressions price this binding exactly like the concrete plan
        (``peak_at(dims) == evaluate(dims)["peak_bytes"]``) and the
        class peak interval contains the result; (2) *soundness* — the
        ground-truth oracle (:func:`~repro.runtime.symplan.
        measure_peak_bytes`) never observes more live bytes than the
        plan charges, and its replayed outputs are bit-identical to a
        direct engine run; (3) the plan's own aliasing proof
        (``verify_sound``) is clean; (4) *cross-check* — the
        independent L602 analyzer reaches the same verdict (the two
        implement one judgement separately; disagreement means one is
        wrong); (5) *reorder differential* — recompiling under the
        peak-aware reorder pass yields bit-identical outputs with a
        sound plan whose estimated peak never worsened.
        """
        from ..lint.interval_checks import check_memory_symbolic
        from ..numerics.resolve import bind_inputs
        from ..runtime.symplan import measure_peak_bytes

        result.executors_checked.append(MEMPLAN_EXECUTOR)
        symbolic = getattr(executable, "symbolic_plan", None)
        if symbolic is None:
            result.failures.append(Failure(
                executor=MEMPLAN_EXECUTOR, kind="invariant",
                detail="pipeline produced no symbolic plan "
                       "(CompileOptions.symbolic_memory defaults on)"))
            return
        try:
            program = executable.host_program
            dims = bind_inputs(program.params, inputs)
            program.resolution.run(dims)
            expected, _ = ExecutionEngine(executable, self.device).run(
                inputs)
            peak = symbolic.peak_at(dims)
            charged = symbolic.evaluate(dims)["peak_bytes"]
            measured = measure_peak_bytes(executable, inputs)
        except Exception as exc:  # noqa: BLE001
            result.failures.append(Failure(
                executor=MEMPLAN_EXECUTOR, kind="exception",
                detail=f"{type(exc).__name__}: {exc}"))
            return
        if peak != charged:
            result.failures.append(Failure(
                executor=MEMPLAN_EXECUTOR, kind="invariant",
                detail=f"class plan prices this binding at {peak} bytes "
                       f"but the concrete plan charges {charged} — the "
                       f"frozen slot expressions drifted from the slot "
                       f"assignment"))
        interval = symbolic.peak_fact.interval
        if interval.lo is not None and peak < interval.lo:
            result.failures.append(Failure(
                executor=MEMPLAN_EXECUTOR, kind="invariant",
                detail=f"in-class peak {peak} below the class interval "
                       f"lower bound {interval.lo}"))
        if interval.hi is not None and peak > interval.hi:
            result.failures.append(Failure(
                executor=MEMPLAN_EXECUTOR, kind="invariant",
                detail=f"in-class peak {peak} exceeds the *proven* class "
                       f"upper bound {interval.hi} — the interval "
                       f"abstraction is unsound"))
        if measured["measured_peak_bytes"] > peak:
            result.failures.append(Failure(
                executor=MEMPLAN_EXECUTOR, kind="invariant",
                detail=f"ground truth observed "
                       f"{measured['measured_peak_bytes']} live bytes "
                       f"but the class plan charges only {peak} — the "
                       f"reuse plan under-provisions this binding"))
        for index, (ref, got) in enumerate(zip(expected,
                                               measured["outputs"])):
            ref = np.asarray(ref)
            got = np.asarray(got)
            if (ref.shape != got.shape or ref.dtype != got.dtype
                    or ref.tobytes() != got.tobytes()):
                result.failures.append(Failure(
                    executor=MEMPLAN_EXECUTOR, kind="mismatch",
                    detail="memory-oracle replay not bit-identical to a "
                           "direct engine run",
                    output_index=index))
        own = symbolic.verify_sound()
        analyzer = check_memory_symbolic(executable.buffer_plan,
                                         symbolic.imap).by_code("L602")
        for violation in own:
            result.failures.append(Failure(
                executor=MEMPLAN_EXECUTOR, kind="invariant",
                detail=f"aliasing proof failed: {violation}"))
        for diag in analyzer:
            result.failures.append(Failure(
                executor=MEMPLAN_EXECUTOR, kind="invariant",
                detail=f"L602 analyzer: {diag}"))
        if bool(own) != bool(analyzer):
            result.failures.append(Failure(
                executor=MEMPLAN_EXECUTOR, kind="invariant",
                detail=f"planner proof and L602 disagree "
                       f"({len(own)} vs {len(analyzer)} findings) — one "
                       f"of the two independent judgements is wrong"))
        self._check_memplan_reorder(graph, inputs, expected, result)

    def _check_memplan_reorder(self, graph: Graph, inputs, expected,
                               result: CaseResult) -> None:
        """Reorder differential: the peak-aware schedule changes cost
        estimates only, never numerics or plan soundness."""
        try:
            reordered = compile_graph(graph, CompileOptions(
                verify_each_pass=self.check_invariants,
                reorder_for_memory=True))
            outputs, _ = ExecutionEngine(reordered, self.device).run(
                inputs)
        except Exception as exc:  # noqa: BLE001
            result.failures.append(Failure(
                executor=MEMPLAN_EXECUTOR, kind="exception",
                detail=f"reorder recompile: {type(exc).__name__}: {exc}"))
            return
        for index, (ref, got) in enumerate(zip(expected, outputs)):
            ref = np.asarray(ref)
            got = np.asarray(got)
            if (ref.shape != got.shape or ref.dtype != got.dtype
                    or ref.tobytes() != got.tobytes()):
                result.failures.append(Failure(
                    executor=MEMPLAN_EXECUTOR, kind="mismatch",
                    detail="peak-aware reorder changed numerics — the "
                           "pass must only move schedule cost",
                    output_index=index))
        plan = getattr(reordered, "symbolic_plan", None)
        if plan is not None:
            for violation in plan.verify_sound():
                result.failures.append(Failure(
                    executor=MEMPLAN_EXECUTOR, kind="invariant",
                    detail=f"reordered plan aliasing proof failed: "
                           f"{violation}"))

    # -- dynamic batching --------------------------------------------------

    def _check_batching(self, inputs, executable,
                        result: CaseResult) -> None:
        """Replay the case through the batching engine with faults.

        Three waves on the virtual clock: a cold burst (the batch
        explodes to solo fallbacks while the batched plan compiles in
        the background), a warm burst (served by one batched launch —
        unless a permanent fault quarantined the batched key, which must
        pin the bucket to solo service), and a late lone request (a
        single-member flush takes the ordinary solo path).  The contract
        is strict: every response is OK and bit-identical to a direct
        engine run — and because each member carries *distinct* float
        payloads of the same signature, any cross-member contamination
        inside a batch shows up here as a bit mismatch (identical
        members would hide it).
        """
        from ..serving import (BatchingOptions, BatchingServingEngine,
                               ServingOptions, SignatureCompileCost,
                               VirtualScheduler)
        from .faults import CompileFaultInjector

        result.executors_checked.append(BATCHING_EXECUTOR)
        seed = result.input_seed
        permanent = seed % 3 == 2

        def variant(index: int) -> dict:
            # Same signature (co-buckets with the others), different
            # float payloads; integer tensors (gather indices, masks)
            # stay untouched so they remain valid.
            if index == 0:
                return inputs
            shifted = {}
            for name, value in inputs.items():
                array = np.asarray(value)
                if np.issubdtype(array.dtype, np.floating):
                    array = (array + array.dtype.type(0.125) * index)
                shifted[name] = array
            return shifted

        try:
            reference = ExecutionEngine(executable, self.device)
            members = [variant(i) for i in range(7)]
            expected_by_id = {id(m): reference.run(m)[0] for m in members}
            fault = CompileFaultInjector(
                transient_attempts=1 if seed % 2 == 0 else 0,
                permanent=permanent)
            scheduler = VirtualScheduler(seed=seed)
            serving = BatchingServingEngine(
                self.device, scheduler,
                ServingOptions(
                    compile_workers=1,
                    compile_backoff_us=1_000.0,
                    compile_cost=SignatureCompileCost(
                        fixed_us=5_000.0, per_kernel_us=100.0)),
                batching=BatchingOptions(max_batch_size=4,
                                         max_queue_delay_us=2_000.0),
                compile_fault=fault)
            serving.register_model("case", executable)
            tickets: list = []
            scheduler.call_at(0.0, lambda: tickets.extend(
                serving.submit("case", m) for m in members[0:3]))
            scheduler.call_at(1e8, lambda: tickets.extend(
                serving.submit("case", m) for m in members[3:6]))
            scheduler.call_at(2e8, lambda: tickets.append(
                serving.submit("case", members[6])))
            scheduler.run_until_idle()
        except Exception as exc:  # noqa: BLE001
            result.failures.append(Failure(
                executor=BATCHING_EXECUTOR, kind="exception",
                detail=f"{type(exc).__name__}: {exc}"))
            return
        for ticket in tickets:
            response = ticket.response
            if response is None or not response.ok:
                status = "unresolved" if response is None \
                    else response.status.value
                result.failures.append(Failure(
                    executor=BATCHING_EXECUTOR, kind="exception",
                    detail=f"request {ticket.request.id} ended "
                           f"{status}, expected ok"))
                continue
            expected = expected_by_id[id(ticket.request.inputs)]
            for index, (ref, got) in enumerate(zip(expected,
                                                   response.outputs)):
                ref = np.asarray(ref)
                got = np.asarray(got)
                if (ref.shape != got.shape or ref.dtype != got.dtype
                        or ref.tobytes() != got.tobytes()):
                    result.failures.append(Failure(
                        executor=BATCHING_EXECUTOR, kind="mismatch",
                        detail=f"path {response.path!r} not "
                               f"bit-identical to direct engine run",
                        output_index=index))
        batched = serving.counters["batched_served"]
        if permanent and batched:
            result.failures.append(Failure(
                executor=BATCHING_EXECUTOR, kind="invariant",
                detail=f"{batched} batched response(s) despite a "
                       f"permanent compile fault — quarantine must pin "
                       f"the bucket to solo service"))
        if not permanent and not batched:
            result.failures.append(Failure(
                executor=BATCHING_EXECUTOR, kind="invariant",
                detail="warm burst never took the batched path"))

    # -- schedule autotuning -----------------------------------------------

    def _check_tuning(self, inputs, executable,
                      result: CaseResult) -> None:
        """Run the schedule autotuner against its three contracts.

        (1) *Correctness*: a tuned plan's outputs are bit-identical to
        the heuristic plan's — schedules move simulated cost, never
        numerics — and its simulated device time is never higher.
        (2) *Determinism*: an independent tuner with the same signature
        and budget reaches the same winners for the same spend, and
        spend never exceeds the budget (seeds alternate a generous and
        a starvation budget to cover the exhaustion path).
        (3) *Isolation*: on every third seed, a serving run with an
        injected tuner fault must quarantine the search only — the
        compile completes, the installed plan is untuned, and every
        response is OK and bit-identical.
        """
        from ..tuning import ScheduleTuner, TuningOptions

        result.executors_checked.append(TUNING_EXECUTOR)
        seed = result.input_seed
        budget = 250_000.0 if seed % 2 == 0 else 2_000.0
        options = TuningOptions(budget_us=budget)
        try:
            engine = ExecutionEngine(executable, self.device)
            heur_out, heur_stats = engine.run(inputs)
            signature = engine.host_program.signature(inputs)
            tuned = ScheduleTuner(self.device, options).tune(
                executable, signature)
            engine.prepare(inputs, signature, selector=tuned.selector(),
                           overwrite=True)
            tuned_out, tuned_stats = engine.run(inputs)
            again = ScheduleTuner(self.device, options).tune(
                executable, signature)
        except Exception as exc:  # noqa: BLE001
            result.failures.append(Failure(
                executor=TUNING_EXECUTOR, kind="exception",
                detail=f"{type(exc).__name__}: {exc}"))
            return
        for index, (ref, got) in enumerate(zip(heur_out, tuned_out)):
            ref = np.asarray(ref)
            got = np.asarray(got)
            if (ref.shape != got.shape or ref.dtype != got.dtype
                    or ref.tobytes() != got.tobytes()):
                result.failures.append(Failure(
                    executor=TUNING_EXECUTOR, kind="mismatch",
                    detail="tuned plan not bit-identical to heuristic "
                           "plan", output_index=index))
        if tuned_stats.device_time_us > heur_stats.device_time_us \
                * (1 + 1e-12):
            result.failures.append(Failure(
                executor=TUNING_EXECUTOR, kind="invariant",
                detail=f"tuned plan slower than heuristic "
                       f"({tuned_stats.device_time_us:.3f}us > "
                       f"{heur_stats.device_time_us:.3f}us)"))
        if tuned.spent_us > tuned.budget_us:
            result.failures.append(Failure(
                executor=TUNING_EXECUTOR, kind="invariant",
                detail=f"search spent {tuned.spent_us:.0f}us over its "
                       f"{tuned.budget_us:.0f}us budget"))
        if tuned.pick_names() != again.pick_names() \
                or tuned.spent_us != again.spent_us:
            result.failures.append(Failure(
                executor=TUNING_EXECUTOR, kind="invariant",
                detail="tuning not deterministic: same signature and "
                       "budget produced different winners or spend"))
        if seed % 3 == 2:
            self._check_tuning_fault(inputs, executable, heur_out,
                                     result, options)

    def _check_tuning_fault(self, inputs, executable, expected,
                            result: CaseResult, options) -> None:
        """Tuner fault under serving: quarantine search, serve on."""
        from ..serving import (ServingEngine, ServingOptions,
                               SignatureCompileCost, VirtualScheduler)
        from .faults import TunerFaultInjector

        seed = result.input_seed
        try:
            scheduler = VirtualScheduler(seed=seed)
            serving = ServingEngine(
                self.device, scheduler,
                ServingOptions(
                    compile_workers=1,
                    compile_backoff_us=1_000.0,
                    compile_cost=SignatureCompileCost(
                        fixed_us=5_000.0, per_kernel_us=100.0),
                    tuning=options),
                tuning_fault=TunerFaultInjector(fault_signatures=99))
            serving.register_model("case", executable)
            tickets: list = []
            scheduler.call_at(0.0, lambda: tickets.extend(
                serving.submit("case", inputs) for _ in range(2)))
            scheduler.call_at(1e8, lambda: tickets.append(
                serving.submit("case", inputs)))
            scheduler.run_until_idle()
        except Exception as exc:  # noqa: BLE001
            result.failures.append(Failure(
                executor=TUNING_EXECUTOR, kind="exception",
                detail=f"serving leg: {type(exc).__name__}: {exc}"))
            return
        for ticket in tickets:
            response = ticket.response
            if response is None or not response.ok:
                status = "unresolved" if response is None \
                    else response.status.value
                result.failures.append(Failure(
                    executor=TUNING_EXECUTOR, kind="exception",
                    detail=f"request {ticket.request.id} ended "
                           f"{status} under a tuner fault, expected "
                           f"ok"))
                continue
            for index, (ref, got) in enumerate(zip(expected,
                                                   response.outputs)):
                ref = np.asarray(ref)
                got = np.asarray(got)
                if (ref.shape != got.shape or ref.dtype != got.dtype
                        or ref.tobytes() != got.tobytes()):
                    result.failures.append(Failure(
                        executor=TUNING_EXECUTOR, kind="mismatch",
                        detail=f"path {response.path!r} not "
                               f"bit-identical under a tuner fault",
                        output_index=index))
        if serving.counters["tuning_faults"] < 1:
            result.failures.append(Failure(
                executor=TUNING_EXECUTOR, kind="invariant",
                detail="injected tuner fault never fired"))
        signature = tickets[-1].request.signature if tickets else None
        plan = serving.model("case").engine.peek_plan(signature) \
            if signature is not None else None
        if plan is None or plan.tuned:
            result.failures.append(Failure(
                executor=TUNING_EXECUTOR, kind="invariant",
                detail="tuner fault must install an untuned heuristic "
                       "plan"))

    # -- tracing oracle ----------------------------------------------------

    def _check_obs(self, graph: Graph, inputs, executable,
                   result: CaseResult) -> None:
        """Re-run compile + record + replay under a CapturingTracer.

        Three contracts: (1) outputs are bit-identical to an untraced
        engine run; (2) the simulated ``RunStats`` are equal field for
        field on both the record and the replay call; (3) the recorded
        trace satisfies the structural invariants in
        :mod:`repro.obs.invariants`.
        """
        from ..obs import CapturingTracer, trace_failures

        result.executors_checked.append(OBS_EXECUTOR)
        try:
            if executable is None:
                # The untraced compile failed; the traced one must too.
                tracer = CapturingTracer()
                try:
                    compile_graph(graph, CompileOptions(
                        verify_each_pass=self.check_invariants,
                        tracer=tracer))
                except Exception:  # noqa: BLE001 - expected parity
                    return
                result.failures.append(Failure(
                    executor=OBS_EXECUTOR, kind="trace",
                    detail="compile succeeded under tracing but failed "
                           "untraced"))
                return
            baseline = ExecutionEngine(executable, self.device)
            plain = [baseline.run(inputs), baseline.run(inputs)]

            tracer = CapturingTracer()
            traced_exe = compile_graph(graph, CompileOptions(
                verify_each_pass=self.check_invariants, tracer=tracer))
            engine = ExecutionEngine(traced_exe, self.device,
                                     tracer=tracer)
            traced = [engine.run(inputs), engine.run(inputs)]
        except Exception as exc:  # noqa: BLE001
            result.failures.append(Failure(
                executor=OBS_EXECUTOR, kind="exception",
                detail=f"{type(exc).__name__}: {exc}"))
            return

        for call, ((ref_out, ref_stats), (got_out, got_stats)) in \
                enumerate(zip(plain, traced)):
            for index, (ref, got) in enumerate(zip(ref_out, got_out)):
                ref = np.asarray(ref)
                got = np.asarray(got)
                if (ref.shape != got.shape or ref.dtype != got.dtype
                        or ref.tobytes() != got.tobytes()):
                    result.failures.append(Failure(
                        executor=OBS_EXECUTOR, kind="mismatch",
                        detail=f"call {call}: traced output not "
                               f"bit-identical to untraced run",
                        output_index=index))
            if ref_stats != got_stats:
                result.failures.append(Failure(
                    executor=OBS_EXECUTOR, kind="mismatch",
                    detail=f"call {call}: traced RunStats differ from "
                           f"untraced ({got_stats} != {ref_stats})"))
        for detail in trace_failures(tracer):
            result.failures.append(Failure(
                executor=OBS_EXECUTOR, kind="trace", detail=detail))

    # -- baselines ---------------------------------------------------------

    def _check_baselines(self, graph: Graph, inputs, reference,
                         result: CaseResult) -> None:
        for name in self.baselines:
            result.executors_checked.append(name)
            try:
                executor = make_baseline(name, graph, self.device)
                outputs, _stats = executor.run(inputs)
            except Exception as exc:  # noqa: BLE001
                result.failures.append(Failure(
                    executor=name, kind="exception",
                    detail=f"{type(exc).__name__}: {exc}"))
                continue
            self._compare(name, graph, reference, outputs, result)

    # -- comparison --------------------------------------------------------

    @staticmethod
    def _compare(executor: str, graph: Graph, reference, outputs,
                 result: CaseResult) -> None:
        if len(outputs) != len(reference):
            result.failures.append(Failure(
                executor=executor, kind="mismatch",
                detail=f"{len(outputs)} outputs != "
                       f"reference {len(reference)}"))
            return
        for index, (ref, got) in enumerate(zip(reference, outputs)):
            detail = compare_arrays(np.asarray(ref), np.asarray(got),
                                    graph.outputs[index].dtype.name)
            if detail is not None:
                result.failures.append(Failure(
                    executor=executor, kind="mismatch",
                    detail=detail, output_index=index))
