"""Delta-debugging graph minimization.

Given a failing graph and a predicate ``still_fails(graph) -> bool``, the
minimizer greedily applies shrinking transformations, keeping a candidate
only when it verifies *and* still fails:

- **reroot** — make a single interior node the only output (discards the
  whole downstream cone);
- **cut** — replace an interior node by a fresh parameter of the same
  type (discards the whole upstream cone);
- **bypass** — forward a node's operand in place of the node when shapes
  and dtypes agree (removes one op);
- **drop-output** — remove one of several outputs;
- **drop-param** — remove an unused parameter.

Transformations are retried to a fixpoint, largest cuts first, so repros
shrink to a handful of nodes; ``tests/fuzz`` asserts an injected fault
minimizes to <= 25% of the original graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..ir.graph import Graph
from ..ir.node import Node
from ..ir.verifier import verify

__all__ = ["MinimizeResult", "minimize"]


@dataclass
class MinimizeResult:
    """Outcome of one minimization run."""

    graph: Graph
    original_nodes: int
    minimized_nodes: int
    steps: int

    @property
    def ratio(self) -> float:
        return self.minimized_nodes / max(1, self.original_nodes)


def _drop_unused_params(graph: Graph) -> int:
    """Remove parameters nothing reads; returns how many went away."""
    used = {id(op) for node in graph.nodes for op in node.inputs}
    out_ids = {id(node) for node in graph.outputs}
    keep, dropped = [], 0
    for param in graph.params:
        if id(param) in used or id(param) in out_ids:
            keep.append(param)
        else:
            dropped += 1
    if dropped:
        keep_ids = {id(p) for p in keep}
        graph.params = keep
        graph.nodes = [n for n in graph.nodes
                       if n.op != "parameter" or id(n) in keep_ids]
    return dropped


def _cleanup(graph: Graph) -> None:
    graph.prune()
    _drop_unused_params(graph)
    graph.normalize_order()


def _candidates(graph: Graph):
    """Yield (description, transform) pairs, biggest expected cut first.

    Each transform mutates the graph clone it is given and returns True
    when it applied.
    """
    nodes = list(graph.nodes)
    position = {node.id: index for index, node in enumerate(nodes)}

    # Interior nodes ordered by how much of the graph they could discard.
    def _reroot(node_id: int):
        def apply(g: Graph) -> bool:
            target = next((n for n in g.nodes if n.id == node_id), None)
            if target is None or target.op == "parameter":
                return False
            if [target] == g.outputs:
                return False
            g.set_outputs([target])
            return True
        return apply

    def _cut(node_id: int):
        def apply(g: Graph) -> bool:
            target = next((n for n in g.nodes if n.id == node_id), None)
            if target is None or target.op in ("parameter", "constant"):
                return False
            replacement = g.parameter(f"cut{node_id}", target.shape,
                                      target.dtype)
            g.replace_all_uses(target, replacement)
            return True
        return apply

    def _bypass(node_id: int, operand_index: int):
        def apply(g: Graph) -> bool:
            target = next((n for n in g.nodes if n.id == node_id), None)
            if target is None or operand_index >= len(target.inputs):
                return False
            operand = target.inputs[operand_index]
            if operand.shape != target.shape \
                    or operand.dtype is not target.dtype:
                return False
            g.replace_all_uses(target, operand)
            return True
        return apply

    def _drop_output(output_index: int):
        def apply(g: Graph) -> bool:
            if len(g.outputs) <= 1 or output_index >= len(g.outputs):
                return False
            g.set_outputs(o for i, o in enumerate(g.outputs)
                          if i != output_index)
            return True
        return apply

    for index in range(len(graph.outputs)):
        yield f"drop-output:{index}", _drop_output(index)
    # Earlier nodes first: rerooting near the inputs discards the most.
    for node in nodes:
        if node.op != "parameter":
            yield f"reroot:{node.id}", _reroot(node.id)
    # Later nodes first: cutting near the outputs discards the most.
    for node in reversed(nodes):
        if node.op not in ("parameter", "constant"):
            yield f"cut:{node.id}", _cut(node.id)
    for node in sorted(nodes, key=lambda n: -position[n.id]):
        for operand_index in range(len(node.inputs)):
            yield f"bypass:{node.id}/{operand_index}", \
                _bypass(node.id, operand_index)


def minimize(graph: Graph, still_fails: Callable[[Graph], bool],
             max_steps: int = 2000) -> MinimizeResult:
    """Shrink ``graph`` while ``still_fails`` holds.

    ``still_fails`` must hold for ``graph`` itself (raises ``ValueError``
    otherwise — a predicate that never fired would "minimize" to garbage).
    The input graph is never mutated.
    """
    if not still_fails(graph):
        raise ValueError("predicate does not fail on the original graph")
    current = graph.clone()
    _cleanup(current)
    if not still_fails(current):
        current = graph.clone()  # cleanup itself lost the failure
    original = len(graph.nodes)
    steps = 0
    improved = True
    while improved and steps < max_steps:
        improved = False
        for _desc, transform in _candidates(current):
            steps += 1
            if steps >= max_steps:
                break
            candidate = current.clone()
            try:
                if not transform(candidate):
                    continue
                _cleanup(candidate)
                verify(candidate)
            except Exception:  # noqa: BLE001 - invalid shrink, skip
                continue
            if len(candidate.nodes) >= len(current.nodes):
                continue
            if still_fails(candidate):
                current = candidate
                improved = True
                break
    return MinimizeResult(graph=current, original_nodes=original,
                          minimized_nodes=len(current.nodes), steps=steps)
