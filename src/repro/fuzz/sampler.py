"""Adversarial shape sampling: bind symbolic dims to edge values.

A graph's *free* symbols are the ones appearing in parameter shapes — the
runtime binds them from the input arrays.  Not all of them are independent:
a merged-reshape dim (``[a, b, c] -> [m, c]``) can leak into a later weight
parameter's shape, yet its value is determined by ``a * b``.  The sampler
therefore assigns only the *primary* symbols and derives the rest with
:func:`repro.numerics.resolve.resolve_all_dims`, so every returned binding
set is internally consistent by construction.

Primary symbols get the values where dynamic-shape compilers historically
break:

- ``1`` — broadcast collapse: a dim that suddenly equals a broadcast dim;
- ``2`` / small primes — defeats vectorised schedules and pow2 buckets;
- equal-vs-unequal — two symbols that happen to coincide at run time must
  not be treated as provably equal at compile time (and vice versa);
- large values — schedule-selector regime changes (row_per_warp vs
  row_per_block vs two_pass).
"""

from __future__ import annotations

import random
from typing import Callable

from ..ir.graph import Graph
from ..ir.shapes import SymDim
from ..numerics.resolve import resolve_all_dims

__all__ = ["EDGE_VALUES", "free_symbols", "sample_bindings",
           "binding_suite"]

#: the adversarial pool: 1, 2, primes, pow2s, odd-large.
EDGE_VALUES = (1, 2, 3, 5, 7, 13, 17, 31, 64, 97, 128)


def free_symbols(graph: Graph) -> list[str]:
    """Symbol names bound by the inputs (in first-appearance order)."""
    seen: list[str] = []
    for param in graph.params:
        for dim in param.shape:
            if isinstance(dim, SymDim) and dim.name not in seen:
                seen.append(dim.name)
    return seen


def _assign(graph: Graph,
            choose: Callable[[str], int]) -> dict[str, int]:
    """Bind primary symbols via ``choose``; derive the dependent ones.

    Walks the free symbols in first-appearance order; after each primary
    assignment the graph's derivable symbols (reshape merges, concat sums)
    are solved, so a later free symbol that turns out to be derived keeps
    its consistent value instead of an arbitrary one.
    """
    bindings: dict[str, int] = {}
    for name in free_symbols(graph):
        if name in bindings:
            continue  # derived from an earlier assignment
        bindings[name] = choose(name)
        resolve_all_dims(graph.nodes, bindings)
    return bindings


def sample_bindings(graph: Graph, rng: random.Random,
                    values: tuple = EDGE_VALUES) -> dict[str, int]:
    """One adversarial assignment of the graph's free symbols."""
    strategy = rng.choice(("independent", "all_equal", "all_ones",
                           "ones_mixed", "large"))
    if strategy == "all_equal":
        v = rng.choice(values)
        return _assign(graph, lambda _name: v)
    if strategy == "all_ones":
        return _assign(graph, lambda _name: 1)
    if strategy == "ones_mixed":
        return _assign(graph, lambda _name: 1 if rng.random() < 0.5
                       else rng.choice(values))
    if strategy == "large":
        return _assign(graph, lambda _name: rng.choice(values[-3:]))
    return _assign(graph, lambda _name: rng.choice(values))


def binding_suite(graph: Graph, limit: int = 4,
                  seed: int = 0) -> list[dict[str, int]]:
    """A deterministic spread of edge bindings for one graph.

    Always includes the all-ones collapse and an all-equal prime; the rest
    are seeded samples.  Duplicate assignments are dropped.
    """
    rng = random.Random(seed)
    suite: list[dict[str, int]] = [
        _assign(graph, lambda _name: 1),
        _assign(graph, lambda _name: 7),
    ]
    while len(suite) < max(limit, 2):
        suite.append(sample_bindings(graph, rng))
    unique: list[dict[str, int]] = []
    for bindings in suite[:limit]:
        if bindings not in unique:
            unique.append(bindings)
    return unique
