"""ALBERT-style encoder: factorised embeddings + cross-layer sharing.

Structurally a BERT, with the two ALBERT signatures that matter to a
compiler: the embedding is factorised (vocab -> small E -> hidden, an extra
matmul every call) and one transformer layer's weights are *reused* for all
``layers`` iterations — the same constant nodes appear in every block, so
CSE/fusion see genuinely shared operands.
"""

from __future__ import annotations

import numpy as np

from ..ir import f32, i64
from ..ir.builder import GraphBuilder
from .layers import (Weights, embedding, linear_layer, positional_embedding,
                     transformer_layer)
from .model import Model

__all__ = ["build_albert"]


def build_albert(layers: int = 6, hidden: int = 256, heads: int = 4,
                 embed_dim: int = 64, vocab: int = 8192, max_len: int = 512,
                 num_classes: int = 2, seed: int = 1,
                 name: str = "albert") -> Model:
    inner = hidden * 4
    b = GraphBuilder(name)
    w = Weights(b, np.random.default_rng(seed))
    batch = b.sym("batch", hint=4)
    seqlen = b.sym("seqlen", hint=64)

    ids = b.parameter("input_ids", (batch, seqlen), i64)
    mask = b.parameter("attention_mask", (batch, seqlen), f32)

    token_table = w.dense(vocab, embed_dim)
    pos_table = w.dense(max_len, hidden)

    x = embedding(b, token_table, ids)          # [b, s, E]
    x = linear_layer(b, w, x, embed_dim, hidden)  # factorised projection
    x = b.add(x, positional_embedding(b, pos_table, seqlen, x))
    x = b.layer_norm(x, w.ones(hidden), w.zeros(hidden))

    bias = b.mul(b.sub(mask, b.scalar(1.0, f32)), b.scalar(1e9, f32))
    bias = b.reshape(bias, (batch, 1, 1, seqlen))

    # Cross-layer parameter sharing: every block draws its constants from a
    # freshly re-seeded RNG, so all blocks hold byte-identical weights and
    # CSE folds them into a single shared set (ALBERT's weight tying).
    for _ in range(layers):
        layer_w = Weights(b, np.random.default_rng(seed + 1))
        x = transformer_layer(b, layer_w, x, hidden, heads, inner, batch,
                              seqlen, mask=bias)

    pooled = b.reduce_mean(x, axes=1)
    logits = linear_layer(b, w, pooled, hidden, num_classes)
    b.outputs(logits)

    def make_inputs(rng: np.random.Generator, batch: int,
                    seqlen: int) -> dict:
        return {
            "input_ids": rng.integers(0, vocab, size=(batch, seqlen),
                                      dtype=np.int64),
            "attention_mask": np.ones((batch, seqlen), dtype=np.float32),
        }

    return Model(
        name=name,
        graph=b.graph,
        axes={"batch": (1, 16), "seqlen": (8, 256)},
        make_inputs=make_inputs,
        description=(f"ALBERT-style encoder: {layers} shared layers, "
                     f"hidden {hidden}, factorised embedding {embed_dim}"),
    )
