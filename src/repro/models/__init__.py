"""The model zoo: eight dynamic-shape architectures built on the IR.

``MODEL_BUILDERS`` maps a model name to its builder; :func:`build_model`
instantiates one by name with optional size overrides, and
:func:`zoo` builds the whole suite (the set the end-to-end experiments
sweep).
"""

from .model import Model
from .bert import build_bert
from .albert import build_albert
from .gpt2 import build_gpt2
from .t5 import build_t5
from .s2t import build_s2t
from .crnn import build_crnn
from .fastspeech2 import build_fastspeech2
from .dien import build_dien

__all__ = [
    "Model", "MODEL_BUILDERS", "build_model", "zoo",
    "build_bert", "build_albert", "build_gpt2", "build_t5", "build_s2t",
    "build_crnn", "build_fastspeech2", "build_dien",
]

MODEL_BUILDERS = {
    "bert": build_bert,
    "albert": build_albert,
    "gpt2": build_gpt2,
    "t5": build_t5,
    "s2t": build_s2t,
    "crnn": build_crnn,
    "fastspeech2": build_fastspeech2,
    "dien": build_dien,
}


def build_model(name: str, **overrides) -> Model:
    """Instantiate a zoo model by name with optional size overrides."""
    try:
        builder = MODEL_BUILDERS[name]
    except KeyError:
        raise KeyError(f"unknown model {name!r}; "
                       f"available: {sorted(MODEL_BUILDERS)}") from None
    return builder(**overrides)


def zoo(overrides: dict | None = None) -> list:
    """Build every zoo model.

    ``overrides`` optionally maps a model name to builder kwargs, e.g.
    ``zoo({"bert": {"layers": 2}})``.
    """
    overrides = overrides or {}
    return [builder(**overrides.get(name, {}))
            for name, builder in MODEL_BUILDERS.items()]
