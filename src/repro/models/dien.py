"""DIEN-style click-through-rate model over dynamic behaviour histories.

Recommendation serving scores a candidate item against a user's behaviour
history, whose length varies per user — the data-management workload the
paper's introduction motivates.  The graph embeds the history and the
candidate, attends over the history with the candidate as the query,
pools, and scores with an MLP tower.

Substitution note: DIEN's GRU-based interest-evolution layer needs a
sequential loop; it is replaced by the (standard, DIN-style) attention
pooling over the history, which preserves the dynamic-length behaviour.
"""

from __future__ import annotations

import numpy as np

from ..ir import f32, i64
from ..ir.builder import GraphBuilder
from .layers import Weights, embedding, linear_layer, mlp
from .model import Model

__all__ = ["build_dien"]


def build_dien(items: int = 16384, embed_dim: int = 64, seed: int = 7,
               name: str = "dien") -> Model:
    b = GraphBuilder(name)
    w = Weights(b, np.random.default_rng(seed))
    batch = b.sym("batch", hint=32)
    hist = b.sym("hist", hint=50)

    history = b.parameter("history_ids", (batch, hist), i64)
    candidate = b.parameter("candidate_ids", (batch,), i64)

    table = w.dense(items, embed_dim)
    hist_emb = embedding(b, table, history)        # [b, hist, E]
    cand_emb = embedding(b, table, candidate)      # [b, E]

    # Attention: candidate queries the history.
    query = b.reshape(cand_emb, (batch, embed_dim, 1))
    scores = b.dot(hist_emb, query)                # [b, hist, 1]
    scores = b.reshape(scores, (batch, 1, hist))
    weights = b.softmax(scores, axis=-1)           # over the history
    interest = b.dot(weights, hist_emb)            # [b, 1, E]
    interest = b.reshape(interest, (batch, embed_dim))

    features = b.concat([cand_emb, interest,
                         b.mul(cand_emb, interest)], axis=1)
    score = mlp(b, w, features, [3 * embed_dim, 128, 64, 1])
    prob = b.sigmoid(score)
    b.outputs(prob)

    def make_inputs(rng: np.random.Generator, batch: int,
                    hist: int) -> dict:
        return {
            "history_ids": rng.integers(0, items, size=(batch, hist),
                                        dtype=np.int64),
            "candidate_ids": rng.integers(0, items, size=(batch,),
                                          dtype=np.int64),
        }

    return Model(
        name=name,
        graph=b.graph,
        axes={"batch": (1, 128), "hist": (5, 200)},
        make_inputs=make_inputs,
        description=(f"DIEN-style CTR model: attention pooling over "
                     f"dynamic history, embed dim {embed_dim}"),
    )
