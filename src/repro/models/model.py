"""The model bundle: a graph plus how to feed it.

A :class:`Model` packages an IR graph (weights frozen as constants,
activations as parameters with symbolic dims) together with its dynamic-axis
ranges and an input generator, so workloads and benchmarks can drive any
model uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

import numpy as np

from ..ir.graph import Graph

__all__ = ["Model"]


@dataclass
class Model:
    """One zoo architecture, built once over symbolic dims."""

    name: str
    graph: Graph
    #: dynamic axis name -> (min, max) plausible range; workload generators
    #: sample these.
    axes: dict = field(default_factory=dict)
    #: (rng, {axis: value}) -> {param name: array}
    make_inputs: Callable = None
    description: str = ""

    def sample_inputs(self, rng: np.random.Generator,
                      axis_values: Mapping[str, int] | None = None) -> dict:
        """Inputs for one call; unspecified axes get mid-range values."""
        values = dict(axis_values or {})
        for axis, (lo, hi) in self.axes.items():
            values.setdefault(axis, (lo + hi) // 2)
        return self.make_inputs(rng, **values)

    def __repr__(self) -> str:
        axes = ", ".join(f"{k}∈[{lo},{hi}]"
                         for k, (lo, hi) in self.axes.items())
        return (f"Model({self.name!r}, nodes={len(self.graph)}, "
                f"axes: {axes})")
