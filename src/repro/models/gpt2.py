"""GPT-2-style decoder: causal self-attention over a dynamic prompt.

The dynamic-shape stressor here is autoregressive *prefill*: prompt lengths
vary per request, and the causal mask is built inside the graph from two
``iota`` ops compared against each other — shape-dependent data the
compiler must generate for arbitrary lengths.
"""

from __future__ import annotations

import numpy as np

from ..ir import f32, i64
from ..ir.builder import GraphBuilder
from .layers import (Weights, embedding, linear_layer, positional_embedding,
                     transformer_layer)
from .model import Model

__all__ = ["build_gpt2"]


def build_gpt2(layers: int = 4, hidden: int = 256, heads: int = 4,
               vocab: int = 8192, max_len: int = 1024, seed: int = 2,
               name: str = "gpt2") -> Model:
    inner = hidden * 4
    b = GraphBuilder(name)
    w = Weights(b, np.random.default_rng(seed))
    batch = b.sym("batch", hint=4)
    seqlen = b.sym("seqlen", hint=64)

    ids = b.parameter("input_ids", (batch, seqlen), i64)

    token_table = w.dense(vocab, hidden)
    pos_table = w.dense(max_len, hidden)

    x = embedding(b, token_table, ids)
    x = b.add(x, positional_embedding(b, pos_table, seqlen, x))

    # Causal bias [s, s]: 0 at or below the diagonal, -1e9 above it.
    row = b.iota((seqlen, seqlen), axis=0, dtype=i64)
    col = b.iota((seqlen, seqlen), axis=1, dtype=i64)
    allowed = b.ge(row, col)
    zeros = b.broadcast_to(b.scalar(0.0, f32), (seqlen, seqlen))
    neg = b.broadcast_to(b.scalar(-1e9, f32), (seqlen, seqlen))
    causal = b.select(allowed, zeros, neg)
    causal = b.reshape(causal, (1, 1, seqlen, seqlen))

    for _ in range(layers):
        x = transformer_layer(b, w, x, hidden, heads, inner, batch, seqlen,
                              mask=causal)

    x = b.layer_norm(x, w.ones(hidden), w.zeros(hidden))
    logits = linear_layer(b, w, x, hidden, vocab, bias=False)
    b.outputs(logits)

    def make_inputs(rng: np.random.Generator, batch: int,
                    seqlen: int) -> dict:
        return {
            "input_ids": rng.integers(0, vocab, size=(batch, seqlen),
                                      dtype=np.int64),
        }

    return Model(
        name=name,
        graph=b.graph,
        axes={"batch": (1, 8), "seqlen": (8, 256)},
        make_inputs=make_inputs,
        description=(f"GPT-2-style decoder prefill: {layers} layers, "
                     f"hidden {hidden}, causal masking via iota"),
    )
