"""BERT-style encoder (the paper's flagship dynamic-shape workload).

Token ids and an attention mask arrive with dynamic batch size and sequence
length.  The graph is the standard encoder stack: token + position
embeddings, ``layers`` pre-norm transformer blocks, mean pooling, and a
classification head.

Size defaults are scaled down from BERT-base (vocabulary especially) to
keep the numpy substrate fast; the op mix and dynamism are unchanged.
"""

from __future__ import annotations

import numpy as np

from ..ir import f32, i64
from ..ir.builder import GraphBuilder
from .layers import (Weights, embedding, linear_layer, positional_embedding,
                     transformer_layer)
from .model import Model

__all__ = ["build_bert"]


def build_bert(layers: int = 4, hidden: int = 256, heads: int = 4,
               inner: int | None = None, vocab: int = 8192,
               max_len: int = 512, num_classes: int = 2,
               seed: int = 0, name: str = "bert") -> Model:
    """Build a BERT-style classifier over symbolic (batch, seqlen)."""
    inner = inner if inner is not None else hidden * 4
    b = GraphBuilder(name)
    w = Weights(b, np.random.default_rng(seed))
    batch = b.sym("batch", hint=4)
    seqlen = b.sym("seqlen", hint=64)

    ids = b.parameter("input_ids", (batch, seqlen), i64)
    mask = b.parameter("attention_mask", (batch, seqlen), f32)

    token_table = w.dense(vocab, hidden)
    pos_table = w.dense(max_len, hidden)

    x = embedding(b, token_table, ids)
    x = b.add(x, positional_embedding(b, pos_table, seqlen, x))
    x = b.layer_norm(x, w.ones(hidden), w.zeros(hidden))

    # Additive attention bias: 0 where attended, -1e9 where masked.
    bias = b.mul(b.sub(mask, b.scalar(1.0, f32)), b.scalar(1e9, f32))
    bias = b.reshape(bias, (batch, 1, 1, seqlen))

    for _ in range(layers):
        x = transformer_layer(b, w, x, hidden, heads, inner, batch, seqlen,
                              mask=bias)

    pooled = b.reduce_mean(x, axes=1)              # [batch, hidden]
    logits = linear_layer(b, w, pooled, hidden, num_classes)
    b.outputs(logits)

    def make_inputs(rng: np.random.Generator, batch: int,
                    seqlen: int) -> dict:
        return {
            "input_ids": rng.integers(0, vocab, size=(batch, seqlen),
                                      dtype=np.int64),
            "attention_mask": np.ones((batch, seqlen), dtype=np.float32),
        }

    return Model(
        name=name,
        graph=b.graph,
        axes={"batch": (1, 16), "seqlen": (8, 256)},
        make_inputs=make_inputs,
        description=(f"BERT-style encoder: {layers} layers, hidden "
                     f"{hidden}, {heads} heads"),
    )
