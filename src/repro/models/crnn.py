"""CRNN-style OCR recogniser: convolutional stem over dynamic-width images.

Text-line images share a fixed height but vary in width with the text
length, so the spatial width axis is symbolic.  The convolution stem
downsamples 4x in both dimensions, the feature map is re-laid-out into a
frame sequence, and a per-frame classifier produces CTC-style character
probabilities.

Substitution note: the original CRNN's bidirectional LSTM cannot be
expressed in a loop-free tensor IR; it is replaced by a per-frame MLP over
a 3-frame context window (built with two extra convolutions), which keeps
the same dynamic-width behaviour and a similar op mix.
"""

from __future__ import annotations

import numpy as np

from ..ir import f32
from ..ir.builder import GraphBuilder
from .layers import Weights, conv_block, linear_layer, mlp
from .model import Model

__all__ = ["build_crnn"]


def build_crnn(height: int = 32, channels: int = 48, charset: int = 96,
               seed: int = 5, name: str = "crnn") -> Model:
    b = GraphBuilder(name)
    w = Weights(b, np.random.default_rng(seed))
    batch = b.sym("batch", hint=8)
    width = b.sym("width", hint=128)

    image = b.parameter("image", (batch, height, width, 1), f32)

    x = conv_block(b, w, image, 1, channels // 2, strides=(2, 2))
    x = conv_block(b, w, x, channels // 2, channels, strides=(2, 2))
    # context mixing standing in for the recurrent layers:
    x = conv_block(b, w, x, channels, channels, kernel=3)

    reduced_h = height // 4
    frame_w = x.shape[2]          # the conv-derived symbolic width/4
    frames = b.transpose(x, (0, 2, 1, 3))  # [b, w/4, h/4, c]
    frames = b.reshape(frames, (batch, frame_w, reduced_h * channels))

    hidden = 192
    seq = b.relu(linear_layer(b, w, frames, reduced_h * channels, hidden))
    logits = mlp(b, w, seq, [hidden, hidden, charset])
    probs = b.softmax(logits, axis=-1)
    b.outputs(probs)

    def make_inputs(rng: np.random.Generator, batch: int,
                    width: int) -> dict:
        width = max(8, (width // 4) * 4)  # stem downsamples 4x cleanly
        return {
            "image": rng.normal(
                size=(batch, height, width, 1)).astype(np.float32),
        }

    return Model(
        name=name,
        graph=b.graph,
        axes={"batch": (1, 16), "width": (32, 512)},
        make_inputs=make_inputs,
        description=(f"CRNN-style OCR: conv stem over dynamic width, "
                     f"per-frame classifier over {charset} characters"),
    )
