"""Reusable model-building blocks.

These helpers build IR subgraphs for the layers the zoo's architectures
share: embeddings, multi-head self/cross attention, feed-forward blocks,
convolutional stems.  Weights are embedded as graph constants (frozen
inference models), initialised from a caller-provided RNG so models are
deterministic per seed.

Everything is built against *symbolic* batch/sequence dims — each model is
constructed exactly once and serves every shape.
"""

from __future__ import annotations

import numpy as np

from ..ir import f32, i64
from ..ir.builder import GraphBuilder
from ..ir.node import Node

__all__ = ["Weights", "embedding", "positional_embedding", "linear_layer",
           "multi_head_attention", "feed_forward", "transformer_layer",
           "conv_block", "mlp"]


class Weights:
    """Deterministic weight factory for one model."""

    def __init__(self, builder: GraphBuilder, rng: np.random.Generator,
                 scale: float = 0.02) -> None:
        self.builder = builder
        self.rng = rng
        self.scale = scale

    def dense(self, *shape: int, scale: float | None = None) -> Node:
        scale = self.scale if scale is None else scale
        data = self.rng.normal(0.0, scale, size=shape).astype(np.float32)
        return self.builder.constant(data)

    def zeros(self, *shape: int) -> Node:
        return self.builder.constant(np.zeros(shape, dtype=np.float32))

    def ones(self, *shape: int) -> Node:
        return self.builder.constant(np.ones(shape, dtype=np.float32))


def embedding(b: GraphBuilder, table: Node, ids: Node) -> Node:
    """Token embedding lookup: ids [..] -> vectors [.., hidden]."""
    return b.gather(table, ids, axis=0)


def positional_embedding(b: GraphBuilder, table: Node, seq_dim,
                         target: Node) -> Node:
    """Rows 0..seqlen-1 of ``table``, broadcast onto ``target``'s shape."""
    positions = b.iota((seq_dim,), axis=0, dtype=i64)
    rows = b.gather(table, positions, axis=0)
    return b.broadcast_to(rows, target.shape)


def linear_layer(b: GraphBuilder, w: Weights, x: Node, in_dim: int,
                 out_dim: int, bias: bool = True) -> Node:
    """Dense layer; higher-rank inputs are flattened to 2-D around the
    matmul, the way real frameworks lower ``nn.Linear`` (cuBLAS GEMMs are
    2-D).  The flatten/unflatten reshapes are exactly the symbolic-shape
    boundaries the paper's product-equality constraints let fusion cross.
    """
    weight = w.dense(in_dim, out_dim)
    leading = x.shape[:-1]
    if len(leading) > 1:
        flat = b.reshape(x, (b.graph.symtab.fresh(), in_dim))
        y = b.dot(flat, weight)
        if bias:
            y = b.add_bias(y, w.zeros(out_dim))
        return b.reshape(y, leading + (out_dim,))
    y = b.dot(x, weight)
    if bias:
        y = b.add_bias(y, w.zeros(out_dim))
    return y


def multi_head_attention(b: GraphBuilder, w: Weights, query: Node,
                         memory: Node, hidden: int, heads: int,
                         batch_dim, q_len, kv_len,
                         mask: Node | None = None) -> Node:
    """Multi-head attention: query [b, q, H] attends to memory [b, k, H].

    ``mask`` (optional) is an additive bias of shape [b, heads, q, k] (or
    broadcastable to it) applied to the attention scores before softmax.
    """
    head_dim = hidden // heads
    if head_dim * heads != hidden:
        raise ValueError(f"hidden {hidden} not divisible by heads {heads}")

    def split_heads(x: Node, length) -> Node:
        x = b.reshape(x, (batch_dim, length, heads, head_dim))
        return b.transpose(x, (0, 2, 1, 3))  # [b, h, len, d]

    q = split_heads(linear_layer(b, w, query, hidden, hidden), q_len)
    k = split_heads(linear_layer(b, w, memory, hidden, hidden), kv_len)
    v = split_heads(linear_layer(b, w, memory, hidden, hidden), kv_len)

    k_t = b.transpose(k, (0, 1, 3, 2))  # [b, h, d, k]
    scores = b.dot(q, k_t)              # [b, h, q, k]
    scores = b.mul(scores, b.scalar(1.0 / np.sqrt(head_dim), f32))
    if mask is not None:
        scores = b.add(scores, b.broadcast_to(mask, scores.shape))
    probs = b.softmax(scores, axis=-1)
    context = b.dot(probs, v)           # [b, h, q, d]
    context = b.transpose(context, (0, 2, 1, 3))
    context = b.reshape(context, (batch_dim, q_len, hidden))
    return linear_layer(b, w, context, hidden, hidden)


def feed_forward(b: GraphBuilder, w: Weights, x: Node, hidden: int,
                 inner: int, activation: str = "gelu") -> Node:
    h = linear_layer(b, w, x, hidden, inner)
    if activation == "gelu":
        h = b.gelu(h)
    elif activation == "relu":
        h = b.relu(h)
    else:
        raise ValueError(f"unknown activation {activation!r}")
    return linear_layer(b, w, h, inner, hidden)


def transformer_layer(b: GraphBuilder, w: Weights, x: Node, hidden: int,
                      heads: int, inner: int, batch_dim, seq_len,
                      mask: Node | None = None,
                      memory: Node | None = None,
                      memory_len=None) -> Node:
    """Pre-norm transformer layer; adds cross-attention when ``memory``."""
    attn = multi_head_attention(b, w, x, x, hidden, heads, batch_dim,
                                seq_len, seq_len, mask)
    x = b.layer_norm(b.add(x, attn), w.ones(hidden), w.zeros(hidden))
    if memory is not None:
        cross = multi_head_attention(b, w, x, memory, hidden, heads,
                                     batch_dim, seq_len, memory_len)
        x = b.layer_norm(b.add(x, cross), w.ones(hidden), w.zeros(hidden))
    ffn = feed_forward(b, w, x, hidden, inner)
    return b.layer_norm(b.add(x, ffn), w.ones(hidden), w.zeros(hidden))


def conv_block(b: GraphBuilder, w: Weights, x: Node, in_ch: int,
               out_ch: int, kernel: int = 3,
               strides: tuple = (1, 1)) -> Node:
    """conv2d (NHWC) + bias + relu."""
    kernel_w = w.dense(kernel, kernel, in_ch, out_ch, scale=0.1)
    y = b.conv2d(x, kernel_w, strides=strides, padding="same")
    y = b.add_bias(y, w.zeros(out_ch))
    return b.relu(y)


def mlp(b: GraphBuilder, w: Weights, x: Node, dims: list,
        activation: str = "relu") -> Node:
    """A stack of linear layers with activations between them (none after
    the final layer)."""
    pairs = list(zip(dims[:-1], dims[1:]))
    for i, (in_dim, out_dim) in enumerate(pairs):
        x = linear_layer(b, w, x, in_dim, out_dim)
        if i < len(pairs) - 1:
            if activation == "relu":
                x = b.relu(x)
            elif activation == "sigmoid":
                x = b.sigmoid(x)
            else:
                raise ValueError(f"unknown activation {activation!r}")
    return x
