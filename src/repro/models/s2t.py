"""Speech-to-Text transformer: long, highly variable frame counts.

ASR inputs are filterbank features ``[batch, frames, 80]`` whose frame
count spans an order of magnitude between utterances — the widest dynamic
range in the zoo, which is what defeats padding engines (a power-of-two
bucket on frames wastes up to half the compute).  A strided projection
stem downsamples 4x (standing in for the usual conv subsampler), then a
transformer encoder and a CTC-style vocabulary head run per frame.
"""

from __future__ import annotations

import numpy as np

from ..ir import f32
from ..ir.builder import GraphBuilder
from .layers import Weights, linear_layer, positional_embedding, \
    transformer_layer
from .model import Model

__all__ = ["build_s2t"]


def build_s2t(layers: int = 4, hidden: int = 256, heads: int = 4,
              feat_dim: int = 80, vocab: int = 1024, max_len: int = 1024,
              seed: int = 4, name: str = "s2t") -> Model:
    inner = hidden * 4
    b = GraphBuilder(name)
    w = Weights(b, np.random.default_rng(seed))
    batch = b.sym("batch", hint=4)
    frames = b.sym("frames", hint=256)   # raw frame count, multiple of 4
    sub_len = b.sym("sub_len", hint=64)  # frames / 4 after subsampling

    feats = b.parameter("features", (batch, frames, feat_dim), f32)

    # 4x temporal subsampling: stack 4 adjacent frames and project.
    stacked = b.reshape(feats, (batch, sub_len, 4 * feat_dim))
    x = b.relu(linear_layer(b, w, stacked, 4 * feat_dim, hidden))
    pos_table = w.dense(max_len, hidden)
    x = b.add(x, positional_embedding(b, pos_table, sub_len, x))
    x = b.layer_norm(x, w.ones(hidden), w.zeros(hidden))

    for _ in range(layers):
        x = transformer_layer(b, w, x, hidden, heads, inner, batch, sub_len)

    logits = linear_layer(b, w, x, hidden, vocab)   # CTC head per frame
    log_probs = b.softmax(logits, axis=-1)
    b.outputs(log_probs)

    def make_inputs(rng: np.random.Generator, batch: int,
                    frames: int) -> dict:
        frames = max(4, (frames // 4) * 4)  # the stem needs a multiple of 4
        return {
            "features": rng.normal(
                size=(batch, frames, feat_dim)).astype(np.float32),
        }

    return Model(
        name=name,
        graph=b.graph,
        axes={"batch": (1, 8), "frames": (64, 1024)},
        make_inputs=make_inputs,
        description=(f"Speech-to-Text encoder: {layers} layers, 4x "
                     f"subsampling stem, frames vary 64-1024"),
    )
