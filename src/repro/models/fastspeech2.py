"""FastSpeech2-style TTS: phoneme encoder, length regulator, mel decoder.

Text-to-speech has two *coupled* dynamic axes: the phoneme count and the
(longer) mel frame count produced by the length regulator.  The regulator
itself expands each phoneme by its predicted duration — data-dependent
shapes that every static compiler chokes on.

Substitution note: real FastSpeech2 computes the frame→phoneme alignment
from the duration predictor's output at run time.  That alignment is fed
here as an explicit index input (``alignment``), which preserves exactly
the compiler-visible behaviour — a gather whose output length is a fresh
dynamic dim — while keeping the graph loop-free.
"""

from __future__ import annotations

import numpy as np

from ..ir import f32, i64
from ..ir.builder import GraphBuilder
from .layers import (Weights, embedding, linear_layer, mlp,
                     positional_embedding, transformer_layer)
from .model import Model

__all__ = ["build_fastspeech2"]


def build_fastspeech2(layers: int = 2, hidden: int = 256, heads: int = 4,
                      phonemes: int = 128, mel_bins: int = 80,
                      max_len: int = 2048, seed: int = 6,
                      name: str = "fastspeech2") -> Model:
    inner = hidden * 4
    b = GraphBuilder(name)
    w = Weights(b, np.random.default_rng(seed))
    batch = b.sym("batch", hint=2)
    phon_len = b.sym("phon_len", hint=48)
    frames = b.sym("frames", hint=320)

    ids = b.parameter("phoneme_ids", (batch, phon_len), i64)
    alignment = b.parameter("alignment", (frames,), i64)

    table = w.dense(phonemes, hidden)
    pos_table = w.dense(max_len, hidden)

    x = embedding(b, table, ids)
    x = b.add(x, positional_embedding(b, pos_table, phon_len, x))
    for _ in range(layers):
        x = transformer_layer(b, w, x, hidden, heads, inner, batch,
                              phon_len)

    # Duration predictor (its output is a model output, used upstream to
    # build the alignment for the *next* request in a real serving stack).
    durations = b.relu(mlp(b, w, x, [hidden, hidden // 2, 1]))

    # Length regulator: frame f copies phoneme alignment[f].
    expanded = b.gather(x, alignment, axis=1)   # [b, frames, hidden]
    expanded = b.add(expanded,
                     positional_embedding(b, pos_table, frames, expanded))

    y = expanded
    for _ in range(layers):
        y = transformer_layer(b, w, y, hidden, heads, inner, batch, frames)
    mel = linear_layer(b, w, y, hidden, mel_bins)
    b.outputs(mel, durations)

    def make_inputs(rng: np.random.Generator, batch: int, phon_len: int,
                    frames: int) -> dict:
        return {
            "phoneme_ids": rng.integers(
                0, phonemes, size=(batch, phon_len), dtype=np.int64),
            "alignment": np.sort(rng.integers(
                0, phon_len, size=(frames,))).astype(np.int64),
        }

    return Model(
        name=name,
        graph=b.graph,
        axes={"batch": (1, 4), "phon_len": (16, 128),
              "frames": (64, 1024)},
        make_inputs=make_inputs,
        description=(f"FastSpeech2-style TTS: {layers}+{layers} layers, "
                     f"gather-based length regulator, {mel_bins} mel bins"),
    )
