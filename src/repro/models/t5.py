"""T5-style encoder–decoder with *two* independent dynamic sequence axes.

Translation/summarisation serves pairs (source length, target length) that
vary independently — the paper's hardest bucketing case, because a padding
engine must cover the cross product of both axes.  The decoder runs
cross-attention over the encoder memory, so symbols from the two axes meet
inside single kernels.
"""

from __future__ import annotations

import numpy as np

from ..ir import f32, i64
from ..ir.builder import GraphBuilder
from .layers import (Weights, embedding, linear_layer, positional_embedding,
                     transformer_layer)
from .model import Model

__all__ = ["build_t5"]


def build_t5(layers: int = 3, hidden: int = 256, heads: int = 4,
             vocab: int = 8192, max_len: int = 512, seed: int = 3,
             name: str = "t5") -> Model:
    inner = hidden * 4
    b = GraphBuilder(name)
    w = Weights(b, np.random.default_rng(seed))
    batch = b.sym("batch", hint=4)
    src_len = b.sym("src_len", hint=64)
    tgt_len = b.sym("tgt_len", hint=32)

    src_ids = b.parameter("src_ids", (batch, src_len), i64)
    tgt_ids = b.parameter("tgt_ids", (batch, tgt_len), i64)

    token_table = w.dense(vocab, hidden)
    pos_table = w.dense(max_len, hidden)

    # Encoder over the source.
    enc = embedding(b, token_table, src_ids)
    enc = b.add(enc, positional_embedding(b, pos_table, src_len, enc))
    for _ in range(layers):
        enc = transformer_layer(b, w, enc, hidden, heads, inner, batch,
                                src_len)

    # Decoder over the target, causally masked, cross-attending to enc.
    dec = embedding(b, token_table, tgt_ids)
    dec = b.add(dec, positional_embedding(b, pos_table, tgt_len, dec))
    row = b.iota((tgt_len, tgt_len), axis=0, dtype=i64)
    col = b.iota((tgt_len, tgt_len), axis=1, dtype=i64)
    zeros = b.broadcast_to(b.scalar(0.0, f32), (tgt_len, tgt_len))
    neg = b.broadcast_to(b.scalar(-1e9, f32), (tgt_len, tgt_len))
    causal = b.reshape(b.select(b.ge(row, col), zeros, neg),
                       (1, 1, tgt_len, tgt_len))
    for _ in range(layers):
        dec = transformer_layer(b, w, dec, hidden, heads, inner, batch,
                                tgt_len, mask=causal, memory=enc,
                                memory_len=src_len)

    logits = linear_layer(b, w, dec, hidden, vocab, bias=False)
    b.outputs(logits)

    def make_inputs(rng: np.random.Generator, batch: int, src_len: int,
                    tgt_len: int) -> dict:
        return {
            "src_ids": rng.integers(0, vocab, size=(batch, src_len),
                                    dtype=np.int64),
            "tgt_ids": rng.integers(0, vocab, size=(batch, tgt_len),
                                    dtype=np.int64),
        }

    return Model(
        name=name,
        graph=b.graph,
        axes={"batch": (1, 8), "src_len": (8, 128), "tgt_len": (4, 64)},
        make_inputs=make_inputs,
        description=(f"T5-style encoder-decoder: {layers}+{layers} layers, "
                     f"two independent dynamic sequence axes"),
    )
