"""Tracing frontend: capture Python tensor programs as IR graphs."""

from .tracer import TracedTensor, TraceError, constant, trace

__all__ = ["TracedTensor", "TraceError", "constant", "trace"]
