"""Tracing frontend: capture plain Python tensor code as an IR graph.

BladeDISC attaches to frameworks by tracing (TorchBlade captures PyTorch
programs and hands the graph to the compiler).  This module provides the
equivalent entry point for this reproduction: write ordinary numeric Python
against :class:`TracedTensor` — operators, numpy-style methods — and
:func:`trace` records it, once, into a :class:`~repro.ir.graph.Graph` with
symbolic shapes.

Example::

    from repro.frontend import trace
    from repro.ir import f32

    def model(x, w):
        h = (x @ w).relu()
        return h.softmax(axis=-1)

    graph = trace(model, [("x", ("batch", 128), f32),
                          ("w", (128, 64), f32)])

Dims given as strings become named symbolic dims; the traced graph then
compiles and serves every shape like any hand-built graph.
"""

from __future__ import annotations

import contextvars
from typing import Callable, Sequence

import numpy as np

from ..ir import dtypes as dt
from ..ir.builder import GraphBuilder
from ..ir.graph import Graph
from ..ir.node import Node

__all__ = ["TracedTensor", "TraceError", "trace", "constant"]


class TraceError(RuntimeError):
    """Raised for untraceable constructs."""


_ACTIVE_BUILDER: contextvars.ContextVar = contextvars.ContextVar(
    "repro_active_tracer", default=None)


def _builder() -> GraphBuilder:
    builder = _ACTIVE_BUILDER.get()
    if builder is None:
        raise TraceError(
            "no active trace; TracedTensor operations are only valid "
            "inside a function passed to repro.frontend.trace()")
    return builder


class TracedTensor:
    """A symbolic tensor recording the ops applied to it."""

    __slots__ = ("node",)

    def __init__(self, node: Node) -> None:
        self.node = node

    # -- metadata ---------------------------------------------------------

    @property
    def shape(self) -> tuple:
        return self.node.shape

    @property
    def dtype(self):
        return self.node.dtype

    @property
    def ndim(self) -> int:
        return len(self.node.shape)

    def __repr__(self) -> str:
        return f"TracedTensor({self.node!r})"

    # -- coercion -----------------------------------------------------------

    @staticmethod
    def _wrap(value) -> "TracedTensor":
        if isinstance(value, TracedTensor):
            return value
        b = _builder()
        if isinstance(value, (int, float, bool, np.number)):
            return TracedTensor(b.scalar(float(value)))
        if isinstance(value, np.ndarray):
            return TracedTensor(b.constant(value))
        raise TraceError(f"cannot trace value of type {type(value)!r}")

    def _binary(self, op: str, other, reflected: bool = False):
        other = self._wrap(other)
        b = _builder()
        left, right = (other, self) if reflected else (self, other)
        return TracedTensor(getattr(b, op)(left.node, right.node))

    # -- arithmetic operators -------------------------------------------------

    def __add__(self, other): return self._binary("add", other)
    def __radd__(self, other): return self._binary("add", other, True)
    def __sub__(self, other): return self._binary("sub", other)
    def __rsub__(self, other): return self._binary("sub", other, True)
    def __mul__(self, other): return self._binary("mul", other)
    def __rmul__(self, other): return self._binary("mul", other, True)
    def __truediv__(self, other): return self._binary("div", other)
    def __rtruediv__(self, other): return self._binary("div", other, True)
    def __pow__(self, other): return self._binary("pow", other)
    def __matmul__(self, other): return self._binary("dot", other)
    def __neg__(self): return TracedTensor(_builder().neg(self.node))
    def __abs__(self): return TracedTensor(_builder().abs(self.node))

    # -- comparisons ----------------------------------------------------------

    def __lt__(self, other): return self._binary("lt", other)
    def __le__(self, other): return self._binary("le", other)
    def __gt__(self, other): return self._binary("gt", other)
    def __ge__(self, other): return self._binary("ge", other)

    def equals(self, other):
        """Elementwise equality (``==`` is kept as identity so tensors
        stay usable in dicts/sets during tracing)."""
        return self._binary("eq", other)

    # -- elementwise methods ------------------------------------------------------

    def exp(self): return TracedTensor(_builder().exp(self.node))
    def log(self): return TracedTensor(_builder().log(self.node))
    def sqrt(self): return TracedTensor(_builder().sqrt(self.node))
    def rsqrt(self): return TracedTensor(_builder().rsqrt(self.node))
    def tanh(self): return TracedTensor(_builder().tanh(self.node))
    def sigmoid(self): return TracedTensor(_builder().sigmoid(self.node))
    def relu(self): return TracedTensor(_builder().relu(self.node))
    def gelu(self): return TracedTensor(_builder().gelu(self.node))

    def astype(self, dtype: dt.DType):
        return TracedTensor(_builder().cast(self.node, dtype))

    def where(self, on_true, on_false):
        """self (a boolean tensor) selects between the two branches."""
        on_true = self._wrap(on_true)
        on_false = self._wrap(on_false)
        return TracedTensor(_builder().select(
            self.node, on_true.node, on_false.node))

    # -- shape methods ---------------------------------------------------------------

    def reshape(self, *new_shape):
        if len(new_shape) == 1 and isinstance(new_shape[0],
                                              (tuple, list)):
            new_shape = tuple(new_shape[0])
        b = _builder()
        resolved = tuple(b.sym(d) if isinstance(d, str) else d
                         for d in new_shape)
        return TracedTensor(b.reshape(self.node, resolved))

    def transpose(self, *perm):
        if len(perm) == 1 and isinstance(perm[0], (tuple, list)):
            perm = tuple(perm[0])
        if not perm:
            perm = tuple(reversed(range(self.ndim)))
        return TracedTensor(_builder().transpose(self.node, perm))

    @property
    def T(self):
        return self.transpose()

    def broadcast_to(self, shape):
        return TracedTensor(_builder().broadcast_to(self.node,
                                                    tuple(shape)))

    # -- reductions -------------------------------------------------------------------

    def _reduce(self, kind: str, axis, keepdims: bool):
        if axis is None:
            axis = tuple(range(self.ndim))
        return TracedTensor(_builder().reduce(self.node, kind, axis,
                                              keepdims))

    def sum(self, axis=None, keepdims=False):
        return self._reduce("sum", axis, keepdims)

    def max(self, axis=None, keepdims=False):
        return self._reduce("max", axis, keepdims)

    def min(self, axis=None, keepdims=False):
        return self._reduce("min", axis, keepdims)

    def mean(self, axis=None, keepdims=False):
        return self._reduce("mean", axis, keepdims)

    # -- composites -------------------------------------------------------------------------

    def softmax(self, axis: int = -1):
        return TracedTensor(_builder().softmax(self.node, axis))

    def layer_norm(self, scale, bias, eps: float = 1e-5):
        scale = self._wrap(scale)
        bias = self._wrap(bias)
        return TracedTensor(_builder().layer_norm(
            self.node, scale.node, bias.node, eps))


def constant(value, dtype: dt.DType | None = None) -> TracedTensor:
    """Embed a constant array into the graph being traced."""
    return TracedTensor(_builder().constant(np.asarray(value), dtype))


def trace(fn: Callable, input_specs: Sequence[tuple],
          name: str | None = None) -> Graph:
    """Run ``fn`` once on traced tensors and return the captured graph.

    ``input_specs`` is a list of ``(name, shape, dtype)`` triples; string
    dims in ``shape`` become named symbolic dims (repeated names share the
    symbol, expressing cross-input shape constraints).
    """
    builder = GraphBuilder(name or getattr(fn, "__name__", "traced"))
    token = _ACTIVE_BUILDER.set(builder)
    try:
        args = []
        for spec in input_specs:
            if len(spec) != 3:
                raise TraceError(
                    f"input spec must be (name, shape, dtype); got {spec}")
            arg_name, shape, dtype = spec
            resolved = tuple(builder.sym(d) if isinstance(d, str) else d
                             for d in shape)
            args.append(TracedTensor(
                builder.parameter(arg_name, resolved, dtype)))
        result = fn(*args)
        outputs = result if isinstance(result, (tuple, list)) else (
            result,)
        nodes = []
        for out in outputs:
            if not isinstance(out, TracedTensor):
                raise TraceError(
                    f"traced function must return TracedTensor(s); got "
                    f"{type(out)!r}")
            nodes.append(out.node)
        builder.outputs(*nodes)
    finally:
        _ACTIVE_BUILDER.reset(token)
    return builder.graph
