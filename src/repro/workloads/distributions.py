"""Dynamic-axis value distributions.

Production inference traffic is not uniform over shapes: sequence lengths
cluster short with a heavy tail (the paper's motivation for why padding
hurts and recompilation never converges).  These samplers produce per-axis
integer values in a model's declared range under several distributions:

- ``uniform`` — every length equally likely (stress case for caches);
- ``zipf`` — short requests dominate, long tail (realistic serving);
- ``bimodal`` — two clusters (e.g. chat vs document traffic);
- ``fixed`` — a single value (the static-shape control).
"""

from __future__ import annotations

import numpy as np

__all__ = ["sample_axes", "sample_axis", "DISTRIBUTIONS"]

DISTRIBUTIONS = ("uniform", "zipf", "bimodal", "fixed")


def sample_axis(rng: np.random.Generator, lo: int, hi: int, n: int,
                distribution: str = "zipf") -> np.ndarray:
    """Sample ``n`` integer axis values in [lo, hi]."""
    if lo > hi:
        raise ValueError(f"empty axis range [{lo}, {hi}]")
    if distribution == "fixed":
        return np.full(n, (lo + hi) // 2, dtype=np.int64)
    if distribution == "uniform":
        return rng.integers(lo, hi + 1, size=n).astype(np.int64)
    if distribution == "zipf":
        # Power-law over the offset from lo: mass concentrates at short
        # lengths, tail reaches hi.
        span = hi - lo + 1
        ranks = np.arange(1, span + 1, dtype=np.float64)
        weights = ranks ** -1.1
        weights /= weights.sum()
        offsets = rng.choice(span, size=n, p=weights)
        return (lo + offsets).astype(np.int64)
    if distribution == "bimodal":
        short = lo + (hi - lo) // 8
        long = lo + (hi - lo) * 3 // 4
        centers = rng.choice([short, long], size=n, p=[0.7, 0.3])
        jitter = rng.integers(-max(1, (hi - lo) // 16),
                              max(2, (hi - lo) // 16), size=n)
        return np.clip(centers + jitter, lo, hi).astype(np.int64)
    raise ValueError(f"unknown distribution {distribution!r}; "
                     f"available: {DISTRIBUTIONS}")


def sample_axes(rng: np.random.Generator, axes: dict, n: int,
                distribution: str = "zipf",
                axis_distributions: dict | None = None,
                axis_ranges: dict | None = None) -> dict:
    """Sample every axis of ``axes`` (a ``{name: (lo, hi)}`` map) at once.

    Real traffic mixes shapes *per axis* — batch sizes zipf-heavy while
    sequence lengths cluster bimodally — so ``axis_distributions`` and
    ``axis_ranges`` override the shared ``distribution`` and the declared
    range for chosen axes.  Axes are sampled in ``axes`` iteration order,
    one draw stream, so a model's seeded traces stay reproducible.
    """
    axis_distributions = axis_distributions or {}
    axis_ranges = axis_ranges or {}
    out: dict[str, np.ndarray] = {}
    for axis, declared in axes.items():
        lo, hi = axis_ranges.get(axis, declared)
        out[axis] = sample_axis(rng, lo, hi, n,
                                axis_distributions.get(axis, distribution))
    return out
