"""Serving traces: sequences of dynamically-shaped requests for one model.

A :class:`Trace` holds the sampled axis values for each query plus a lazy
materialiser for the actual input arrays, so the same trace can be replayed
against every executor (identical shapes *and* identical data — the
numeric cross-checks rely on this).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..models.model import Model
from .distributions import sample_axis

__all__ = ["Trace", "make_trace"]


@dataclass
class Trace:
    """A replayable request sequence for one model."""

    model: Model
    axis_values: list  # one {axis: int} dict per query
    seed: int = 0
    _inputs: list = field(default_factory=list, repr=False)

    def __len__(self) -> int:
        return len(self.axis_values)

    def inputs(self) -> list:
        """Materialise (and cache) the input dict of every query."""
        if not self._inputs:
            rng = np.random.default_rng(self.seed)
            self._inputs = [self.model.make_inputs(rng, **values)
                            for values in self.axis_values]
        return self._inputs

    def __iter__(self):
        return iter(self.inputs())

    def distinct_signatures(self) -> int:
        """Number of distinct shape signatures in the trace."""
        seen = set()
        for values in self.axis_values:
            seen.add(tuple(sorted(values.items())))
        return len(seen)


def make_trace(model: Model, num_queries: int, distribution: str = "zipf",
               seed: int = 0, fixed_axes: dict | None = None,
               axis_distributions: dict | None = None,
               axis_ranges: dict | None = None) -> Trace:
    """Sample a trace over the model's dynamic axes.

    ``fixed_axes`` pins chosen axes to constants (e.g. ``{"batch": 1}``
    for latency-oriented serving).  ``axis_distributions`` /
    ``axis_ranges`` override the shared distribution and the declared
    range per axis (e.g. zipf batch sizes over a serving-realistic
    ``(1, 8)`` against bimodal sequence lengths) — traces that don't use
    them sample exactly as before, seed for seed.
    """
    rng = np.random.default_rng(seed)
    fixed_axes = fixed_axes or {}
    axis_distributions = axis_distributions or {}
    axis_ranges = axis_ranges or {}
    per_axis: dict[str, np.ndarray] = {}
    for axis, declared in model.axes.items():
        if axis in fixed_axes:
            per_axis[axis] = np.full(num_queries, fixed_axes[axis],
                                     dtype=np.int64)
        else:
            lo, hi = axis_ranges.get(axis, declared)
            per_axis[axis] = sample_axis(
                rng, lo, hi, num_queries,
                axis_distributions.get(axis, distribution))
    axis_values = [
        {axis: int(values[i]) for axis, values in per_axis.items()}
        for i in range(num_queries)
    ]
    return Trace(model=model, axis_values=axis_values, seed=seed + 1)
