"""Dynamic-shape workload generation."""

from .distributions import DISTRIBUTIONS, sample_axes, sample_axis
from .traces import Trace, make_trace

__all__ = ["DISTRIBUTIONS", "sample_axes", "sample_axis", "Trace",
           "make_trace"]
