"""Dynamic-shape workload generation."""

from .distributions import DISTRIBUTIONS, sample_axis
from .traces import Trace, make_trace

__all__ = ["DISTRIBUTIONS", "sample_axis", "Trace", "make_trace"]
