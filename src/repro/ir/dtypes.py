"""Element data types for the tensor IR.

The IR supports the small set of dtypes that the paper's model zoo needs:
floating point for activations and weights, integers for token ids and
indices, and booleans for masks and comparison results.

Each :class:`DType` carries its byte width (used by the device cost model to
account memory traffic) and the numpy dtype that backs its execution
semantics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "DType",
    "f16",
    "f32",
    "f64",
    "i32",
    "i64",
    "boolean",
    "ALL_DTYPES",
    "from_numpy",
    "promote",
]


@dataclass(frozen=True)
class DType:
    """An element type: a name, a byte width, and numpy execution dtype."""

    name: str
    size: int
    np_dtype: np.dtype
    is_float: bool = False
    is_int: bool = False
    is_bool: bool = False

    def __repr__(self) -> str:
        return self.name

    def to_numpy(self) -> np.dtype:
        return self.np_dtype


f16 = DType("f16", 2, np.dtype(np.float16), is_float=True)
f32 = DType("f32", 4, np.dtype(np.float32), is_float=True)
f64 = DType("f64", 8, np.dtype(np.float64), is_float=True)
i32 = DType("i32", 4, np.dtype(np.int32), is_int=True)
i64 = DType("i64", 8, np.dtype(np.int64), is_int=True)
boolean = DType("bool", 1, np.dtype(np.bool_), is_bool=True)

ALL_DTYPES = (f16, f32, f64, i32, i64, boolean)

_BY_NUMPY = {dt.np_dtype: dt for dt in ALL_DTYPES}

_PROMOTION_ORDER = {dt.name: rank for rank, dt in enumerate(
    (boolean, i32, i64, f16, f32, f64))}


def from_numpy(np_dtype: np.dtype) -> DType:
    """Map a numpy dtype to the IR dtype that represents it.

    Raises ``KeyError`` for dtypes the IR does not model (e.g. complex).
    """
    key = np.dtype(np_dtype)
    if key not in _BY_NUMPY:
        raise KeyError(f"unsupported numpy dtype: {np_dtype!r}")
    return _BY_NUMPY[key]


def promote(a: DType, b: DType) -> DType:
    """Binary-op result dtype: the higher of the two in promotion order.

    This intentionally mirrors a simplified version of numpy promotion that
    is sufficient for the op mix in the model zoo (we never mix float widths
    within a model).
    """
    if a is b:
        return a
    ranked = max((a, b), key=lambda dt: _PROMOTION_ORDER[dt.name])
    return ranked
