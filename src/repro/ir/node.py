"""IR nodes.

A :class:`Node` is a single-output SSA operation: op kind, operand nodes,
attributes, and an inferred (possibly symbolic) shape/dtype.  Single-output
keeps the IR simple — the op set never needs tuples — and lets a node double
as the value it produces, like classic sea-of-nodes IRs.
"""

from __future__ import annotations

from typing import Any, Iterable

from .dtypes import DType
from .ops import OpCategory, op_info
from .shapes import Dim, format_shape

__all__ = ["Node"]


class Node:
    """One operation in a graph.

    Nodes are created through :class:`~repro.ir.graph.Graph` (usually via
    the builder), which assigns ids and runs shape inference; they should
    not be constructed directly by user code.
    """

    __slots__ = ("id", "op", "inputs", "attrs", "shape", "dtype", "name",
                 "__weakref__")

    def __init__(self, node_id: int, op: str, inputs: list["Node"],
                 attrs: dict[str, Any], shape: tuple, dtype: DType,
                 name: str | None = None) -> None:
        self.id = node_id
        self.op = op
        self.inputs = inputs
        self.attrs = attrs
        self.shape: tuple[Dim, ...] = shape
        self.dtype = dtype
        self.name = name or f"%{node_id}"

    # -- classification helpers (delegate to the registry) ---------------

    @property
    def category(self) -> OpCategory:
        return op_info(self.op).category

    @property
    def is_elementwise(self) -> bool:
        return self.category is OpCategory.ELEMENTWISE

    @property
    def is_reduction(self) -> bool:
        return self.category is OpCategory.REDUCTION

    @property
    def is_source(self) -> bool:
        return self.category is OpCategory.SOURCE

    @property
    def rank(self) -> int:
        return len(self.shape)

    def attr(self, key: str, default: Any = None) -> Any:
        return self.attrs.get(key, default)

    def __repr__(self) -> str:
        ins = ", ".join(n.name for n in self.inputs)
        return (f"{self.name}: {self.dtype}{format_shape(self.shape)} = "
                f"{self.op}({ins})")

    def short(self) -> str:
        return f"{self.name}:{self.op}"

    def __hash__(self) -> int:
        return hash(self.id)

    def __eq__(self, other: object) -> bool:
        return self is other

    def operands(self) -> Iterable["Node"]:
        return iter(self.inputs)
