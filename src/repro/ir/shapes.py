"""Shapes with symbolic dimensions.

This module is the foundation of the paper's *cross-level symbolic shape
representation*: a tensor dimension is either a concrete ``int`` or a
:class:`SymDim` — a named symbol drawn from a per-graph :class:`SymbolTable`.

The IR layer only defines the representation and basic algebra (equality,
broadcasting, element counts).  The richer analysis — constraint collection,
union-find over symbols, product-equality groups — lives in
``repro.core.symbolic`` and operates over these same objects, which is what
makes the representation "cross-level": the graph, the fusion planner and the
generated kernels all speak about the same symbols.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence, Union

__all__ = [
    "SymDim",
    "Dim",
    "Shape",
    "SymbolTable",
    "is_static",
    "dims_definitely_equal",
    "dims_may_differ",
    "num_elements",
    "substitute",
    "format_shape",
]


@dataclass(frozen=True)
class SymDim:
    """A symbolic dimension: a graph-unique name plus an optional hint.

    ``hint`` is the paper's "likely value": a representative magnitude used
    only for heuristics (e.g. picking a default schedule variant ordering),
    never for correctness decisions.
    """

    name: str
    hint: int | None = field(default=None, compare=False)

    def __repr__(self) -> str:
        return self.name


#: A single dimension: concrete or symbolic.
Dim = Union[int, SymDim]

#: A tensor shape: a tuple of dims.  Rank is always concrete.
Shape = tuple


class SymbolTable:
    """Allocates and interns the symbolic dims of one graph.

    The table hands out fresh symbols (``s0``, ``s1``, ...) and remembers
    every symbol it produced, so analyses can enumerate the full symbol
    universe of a graph.
    """

    def __init__(self) -> None:
        self._counter = itertools.count()
        self._symbols: dict[str, SymDim] = {}

    def fresh(self, hint: int | None = None) -> SymDim:
        """Create a new, never-before-seen symbolic dim."""
        name = f"s{next(self._counter)}"
        sym = SymDim(name, hint)
        self._symbols[name] = sym
        return sym

    def named(self, name: str, hint: int | None = None) -> SymDim:
        """Return the symbol called ``name``, creating it if needed.

        Useful for model builders that want human-readable axis names such
        as ``batch`` or ``seqlen``.
        """
        if name not in self._symbols:
            self._symbols[name] = SymDim(name, hint)
        return self._symbols[name]

    def lookup(self, name: str) -> SymDim:
        return self._symbols[name]

    def __contains__(self, name: str) -> bool:
        return name in self._symbols

    def symbols(self) -> list[SymDim]:
        return list(self._symbols.values())

    def __len__(self) -> int:
        return len(self._symbols)


def is_static(shape: Sequence[Dim]) -> bool:
    """True when every dim of ``shape`` is a concrete integer."""
    return all(isinstance(d, int) for d in shape)


def dims_definitely_equal(a: Dim, b: Dim) -> bool:
    """Structural equality: same int, or the very same symbol.

    This is the *conservative* equality the IR can decide on its own.  The
    symbolic analysis refines it with constraint-derived equalities.
    """
    return a == b


def dims_may_differ(a: Dim, b: Dim) -> bool:
    """True when the two dims could hold different values at runtime.

    Two distinct concrete ints definitely differ; anything involving a
    symbol may or may not, so it "may differ" unless structurally equal.
    """
    return not dims_definitely_equal(a, b)


def num_elements(shape: Sequence[Dim]) -> Dim | tuple:
    """Element count of ``shape``.

    Returns an ``int`` when the shape is static.  When symbolic, returns a
    canonical product term ``(coefficient, sorted tuple of symbol names)``
    so callers can compare element counts symbolically (two shapes have
    provably-equal element counts iff their product terms match — this is
    what reshape's product-equality constraint uses).
    """
    coeff = 1
    syms: list[str] = []
    for d in shape:
        if isinstance(d, int):
            coeff *= d
        else:
            syms.append(d.name)
    if not syms:
        return coeff
    return (coeff, tuple(sorted(syms)))


def substitute(shape: Sequence[Dim], bindings: Mapping[str, int]) -> tuple:
    """Replace symbols with concrete values from ``bindings``.

    Symbols missing from ``bindings`` are left in place, so partial
    substitution is allowed (the runtime uses full substitution; analyses
    may use partial).
    """
    out = []
    for d in shape:
        if isinstance(d, SymDim) and d.name in bindings:
            out.append(int(bindings[d.name]))
        else:
            out.append(d)
    return tuple(out)


def format_shape(shape: Iterable[Dim]) -> str:
    """Human-readable rendering, e.g. ``[batch, seqlen, 768]``."""
    return "[" + ", ".join(str(d) for d in shape) + "]"
