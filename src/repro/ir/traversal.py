"""Graph traversal utilities shared by passes and the fusion planner."""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable, Sequence

from .graph import Graph
from .node import Node

__all__ = [
    "topological_order",
    "reverse_topological_order",
    "reachable_from",
    "ancestors",
    "descendants",
    "induced_subgraph_inputs",
    "induced_subgraph_outputs",
    "has_path_through_external",
]


def topological_order(graph: Graph) -> list[Node]:
    """A topological order of the graph (the node list itself, validated).

    The graph keeps nodes in creation order which is topological by
    construction; this function exists so callers do not depend on that
    detail, and it re-sorts defensively if an in-place pass disturbed it.
    """
    position = {n: i for i, n in enumerate(graph.nodes)}
    for node in graph.nodes:
        if any(position[i] > position[node] for i in node.inputs):
            return _kahn(graph)
    return list(graph.nodes)


def _kahn(graph: Graph) -> list[Node]:
    indegree = {n: len(n.inputs) for n in graph.nodes}
    users = graph.users()
    ready = deque(n for n in graph.nodes if indegree[n] == 0)
    order: list[Node] = []
    while ready:
        node = ready.popleft()
        order.append(node)
        for user in users[node]:
            indegree[user] -= 1
            if indegree[user] == 0:
                ready.append(user)
    if len(order) != len(graph.nodes):
        raise RuntimeError("graph contains a cycle")
    return order


def reverse_topological_order(graph: Graph) -> list[Node]:
    return list(reversed(topological_order(graph)))


def reachable_from(roots: Iterable[Node],
                   next_fn: Callable[[Node], Iterable[Node]]) -> set:
    """Generic reachability closure."""
    seen: set[Node] = set()
    stack = list(roots)
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        stack.extend(next_fn(node))
    return seen


def ancestors(node: Node, include_self: bool = False) -> set:
    """All transitive operands of ``node``."""
    result = reachable_from(node.inputs, lambda n: n.inputs)
    if include_self:
        result.add(node)
    return result


def descendants(node: Node, users: dict[Node, list[Node]],
                include_self: bool = False) -> set:
    """All transitive users of ``node`` (given a precomputed users map)."""
    result = reachable_from(users.get(node, ()), lambda n: users.get(n, ()))
    if include_self:
        result.add(node)
    return result


def induced_subgraph_inputs(members: Sequence[Node]) -> list[Node]:
    """External values a node set consumes, in first-use order."""
    member_set = set(members)
    seen: set[Node] = set()
    result: list[Node] = []
    for node in members:
        for operand in node.inputs:
            if operand not in member_set and operand not in seen:
                seen.add(operand)
                result.append(operand)
    return result


def induced_subgraph_outputs(members: Sequence[Node],
                             users: dict[Node, list[Node]],
                             graph_outputs: Iterable[Node] = ()) -> list:
    """Members whose value escapes the set (used outside, or graph output)."""
    member_set = set(members)
    graph_out = set(graph_outputs)
    result = []
    for node in members:
        escapes = node in graph_out or any(
            u not in member_set for u in users.get(node, ()))
        if escapes:
            result.append(node)
    return result


def has_path_through_external(src_group: set, dst_group: set,
                              users: dict[Node, list[Node]]) -> bool:
    """Is there a path from ``src_group`` to ``dst_group`` that leaves the
    union?  Merging two groups with such a path would create a cycle in the
    fused graph, so the fusion planner must reject the merge.
    """
    union = src_group | dst_group
    frontier = [u for node in src_group for u in users.get(node, ())
                if u not in union]
    seen: set[Node] = set()
    while frontier:
        node = frontier.pop()
        if node in seen:
            continue
        seen.add(node)
        if node in dst_group:
            return True
        for user in users.get(node, ()):
            if user in dst_group:
                return True
            if user not in union:
                frontier.append(user)
    return False
