"""The IR graph: an SSA DAG of nodes with a symbol table.

A :class:`Graph` owns its nodes (kept in creation order, which is always a
valid topological order because operands must exist before their users), its
parameters, its designated outputs, and the :class:`SymbolTable` from which
every symbolic dim in the graph is drawn.

Mutation model: passes either (a) build a fresh graph via rewriting, or (b)
use the in-place helpers ``replace_all_uses`` + ``prune`` for local rewrites.
Both keep the topological invariant.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

import numpy as np

from .dtypes import DType
from .node import Node
from .ops import InferContext, InferenceError, op_info
from .shapes import SymbolTable

__all__ = ["Graph"]


class Graph:
    """A dataflow graph over tensors with symbolic shapes."""

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        self.symtab = SymbolTable()
        self.nodes: list[Node] = []
        self.params: list[Node] = []
        self.outputs: list[Node] = []
        self._next_id = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def add(self, op: str, inputs: list[Node] | tuple = (),
            attrs: dict[str, Any] | None = None,
            name: str | None = None) -> Node:
        """Create a node, running shape/dtype inference.

        Raises :class:`InferenceError` when operands are incompatible, so an
        ill-typed graph can never be constructed.
        """
        inputs = list(inputs)
        attrs = dict(attrs or {})
        info = op_info(op)
        if info.arity is not None and len(inputs) != info.arity:
            raise InferenceError(
                f"{op}: expected {info.arity} operands, got {len(inputs)}")
        for operand in inputs:
            if not isinstance(operand, Node):
                raise InferenceError(
                    f"{op}: operand {operand!r} is not a Node")
        ctx = InferContext(
            shapes=[n.shape for n in inputs],
            in_dtypes=[n.dtype for n in inputs],
            attrs=attrs,
            symtab=self.symtab,
        )
        shape, dtype = info.infer(ctx)
        node = Node(self._next_id, op, inputs, attrs, shape, dtype, name)
        self._next_id += 1
        self.nodes.append(node)
        if op == "parameter":
            self.params.append(node)
        return node

    def parameter(self, name: str, shape, dtype: DType) -> Node:
        """Declare a graph input."""
        return self.add("parameter", (), {
            "shape": tuple(shape), "dtype": dtype, "param_name": name,
        }, name=name)

    def constant(self, value: np.ndarray, name: str | None = None) -> Node:
        return self.add("constant", (), {"value": np.asarray(value)},
                        name=name)

    def set_outputs(self, outputs: Iterable[Node]) -> None:
        self.outputs = list(outputs)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def users(self) -> dict[Node, list[Node]]:
        """Map node -> nodes that consume it (in topological order)."""
        table: dict[Node, list[Node]] = {n: [] for n in self.nodes}
        for node in self.nodes:
            for operand in node.inputs:
                table[operand].append(node)
        return table

    def find(self, predicate: Callable[[Node], bool]) -> list[Node]:
        return [n for n in self.nodes if predicate(n)]

    def by_op(self, op: str) -> list[Node]:
        return [n for n in self.nodes if n.op == op]

    def param_named(self, name: str) -> Node:
        for p in self.params:
            if p.attrs.get("param_name") == name:
                return p
        raise KeyError(f"no parameter named {name!r} in graph {self.name}")

    def param_names(self) -> list[str]:
        return [p.attrs["param_name"] for p in self.params]

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self):
        return iter(self.nodes)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def replace_all_uses(self, old: Node, new: Node) -> int:
        """Redirect every use of ``old`` (including outputs) to ``new``.

        Returns the number of use sites rewritten.  ``old`` itself stays in
        the node list until :meth:`prune` removes it if dead.
        """
        if old is new:
            return 0
        count = 0
        for node in self.nodes:
            for i, operand in enumerate(node.inputs):
                if operand is old:
                    node.inputs[i] = new
                    count += 1
        for i, out in enumerate(self.outputs):
            if out is old:
                self.outputs[i] = new
                count += 1
        return count

    def prune(self) -> int:
        """Remove nodes not reachable from the outputs. Returns #removed.

        Parameters are never removed (the external calling convention is
        part of the graph's contract even if an input became unused).
        """
        live: set[int] = set()
        stack = list(self.outputs) + list(self.params)
        while stack:
            node = stack.pop()
            if node.id in live:
                continue
            live.add(node.id)
            stack.extend(node.inputs)
        removed = len(self.nodes) - len(live)
        self.nodes = [n for n in self.nodes if n.id in live]
        return removed

    def normalize_order(self) -> None:
        """Re-sort ``nodes`` into a topological order (Kahn's algorithm).

        In-place rewriting passes append replacement nodes at the end of
        the list and then redirect uses, which can break creation-order
        topology; they call this once at the end to restore the invariant.
        """
        from collections import deque
        indegree = {n: len(n.inputs) for n in self.nodes}
        users = self.users()
        ready = deque(n for n in self.nodes if indegree[n] == 0)
        order: list[Node] = []
        while ready:
            node = ready.popleft()
            order.append(node)
            for user in users[node]:
                indegree[user] -= 1
                if indegree[user] == 0:
                    ready.append(user)
        if len(order) != len(self.nodes):
            raise RuntimeError(f"graph {self.name!r} contains a cycle")
        self.nodes = order

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------

    def clone(self) -> "Graph":
        """Deep-copy the graph structure (attrs are shallow-copied)."""
        out = Graph(self.name)
        out.symtab = self.symtab  # symbols are immutable; share the table
        out._next_id = self._next_id
        mapping: dict[Node, Node] = {}
        for node in self.nodes:
            copy = Node(node.id, node.op,
                        [mapping[i] for i in node.inputs],
                        dict(node.attrs), node.shape, node.dtype, node.name)
            mapping[node] = copy
            out.nodes.append(copy)
        out.params = [mapping[p] for p in self.params]
        out.outputs = [mapping[o] for o in self.outputs]
        return out

    def __repr__(self) -> str:
        return (f"Graph({self.name!r}, nodes={len(self.nodes)}, "
                f"params={len(self.params)}, outputs={len(self.outputs)})")
