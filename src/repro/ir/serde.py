"""Graph (de)serialisation to JSON.

A compiled service wants to ship models as artifacts; this module encodes
an IR graph — nodes, attributes (including embedded weight arrays and
symbolic dims), parameters and outputs — into a self-contained JSON
document and reconstructs an identical graph from it.

Round-trip guarantees (enforced by tests): the reloaded graph verifies,
prints identically modulo whitespace, and evaluates to bit-identical
outputs on the same inputs.
"""

from __future__ import annotations

import base64
import json
import re
from pathlib import Path

import numpy as np

from . import dtypes as dt
from .graph import Graph
from .node import Node
from .shapes import SymDim

__all__ = ["graph_to_dict", "graph_from_dict", "save_graph", "load_graph"]

_FORMAT_VERSION = 1


# ---------------------------------------------------------------------------
# value encoding
# ---------------------------------------------------------------------------

def _encode_value(value):
    if isinstance(value, np.ndarray):
        return {"__ndarray__": True,
                "dtype": str(value.dtype),
                "shape": list(value.shape),
                "data": base64.b64encode(
                    np.ascontiguousarray(value).tobytes()).decode("ascii")}
    if isinstance(value, dt.DType):
        return {"__dtype__": value.name}
    if isinstance(value, SymDim):
        return {"__sym__": value.name, "hint": value.hint}
    if isinstance(value, (tuple, list)):
        return {"__tuple__": [_encode_value(v) for v in value]}
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot serialise attr value of type {type(value)!r}")


def _decode_value(value, symtab):
    if isinstance(value, dict):
        if value.get("__ndarray__"):
            raw = base64.b64decode(value["data"])
            array = np.frombuffer(raw, dtype=np.dtype(value["dtype"]))
            return array.reshape(value["shape"]).copy()
        if "__dtype__" in value:
            by_name = {d.name: d for d in dt.ALL_DTYPES}
            return by_name[value["__dtype__"]]
        if "__sym__" in value:
            return symtab.named(value["__sym__"], value.get("hint"))
        if "__tuple__" in value:
            return tuple(_decode_value(v, symtab)
                         for v in value["__tuple__"])
        raise TypeError(f"unknown encoded dict {sorted(value)}")
    return value


# ---------------------------------------------------------------------------
# graph encoding
# ---------------------------------------------------------------------------

def graph_to_dict(graph: Graph) -> dict:
    """Encode ``graph`` as a JSON-ready dict."""
    nodes = []
    for node in graph.nodes:
        nodes.append({
            "id": node.id,
            "op": node.op,
            "name": node.name,
            "inputs": [operand.id for operand in node.inputs],
            "attrs": {k: _encode_value(v) for k, v in node.attrs.items()
                      if not k.startswith("_concrete")},
            "shape": _encode_value(tuple(node.shape)),
            "dtype": node.dtype.name,
        })
    return {
        "format_version": _FORMAT_VERSION,
        "name": graph.name,
        "symbols": [{"name": s.name, "hint": s.hint}
                    for s in graph.symtab.symbols()],
        "nodes": nodes,
        "outputs": [node.id for node in graph.outputs],
    }


def graph_from_dict(payload: dict) -> Graph:
    """Rebuild a graph from :func:`graph_to_dict` output.

    Node shapes/dtypes are restored verbatim (ops that mint fresh symbols
    during inference would otherwise not round-trip); the verifier's
    re-inference check still runs in tests.
    """
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported graph format version {version!r}")
    graph = Graph(payload["name"])
    for symbol in payload["symbols"]:
        graph.symtab.named(symbol["name"], symbol.get("hint"))
    # Future fresh symbols must not collide with serialised s<N> names.
    max_auto = -1
    for symbol in payload["symbols"]:
        match = re.fullmatch(r"s(\d+)", symbol["name"])
        if match:
            max_auto = max(max_auto, int(match.group(1)))
    for _ in range(max_auto + 1):
        next(graph.symtab._counter)

    by_name = {d.name: d for d in dt.ALL_DTYPES}
    by_id: dict[int, Node] = {}
    for entry in payload["nodes"]:
        attrs = {k: _decode_value(v, graph.symtab)
                 for k, v in entry["attrs"].items()}
        shape = _decode_value(entry["shape"], graph.symtab)
        node = Node(entry["id"], entry["op"],
                    [by_id[i] for i in entry["inputs"]],
                    attrs, shape, by_name[entry["dtype"]],
                    entry.get("name"))
        by_id[node.id] = node
        graph.nodes.append(node)
        if node.op == "parameter":
            graph.params.append(node)
    graph.outputs = [by_id[i] for i in payload["outputs"]]
    graph._next_id = 1 + max((n.id for n in graph.nodes), default=-1)
    return graph


def save_graph(graph: Graph, path) -> Path:
    """Serialise ``graph`` to a JSON file; returns the path."""
    path = Path(path)
    with open(path, "w") as f:
        json.dump(graph_to_dict(graph), f)
    return path


def load_graph(path) -> Graph:
    """Load a graph saved by :func:`save_graph`."""
    with open(path) as f:
        return graph_from_dict(json.load(f))
