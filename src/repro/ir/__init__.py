"""Tensor-level IR: the substrate the BladeDISC reproduction compiles.

Public surface:

- dtypes: :data:`f16` :data:`f32` :data:`f64` :data:`i32` :data:`i64`
  :data:`boolean`
- shapes: :class:`SymDim`, :class:`SymbolTable`, shape helpers
- graph: :class:`Node`, :class:`Graph`, :class:`GraphBuilder`
- tooling: :func:`verify`, :func:`print_graph`, traversal helpers
"""

from .dtypes import (ALL_DTYPES, DType, boolean, f16, f32, f64, from_numpy,
                     i32, i64, promote)
from .shapes import (Dim, Shape, SymDim, SymbolTable, dims_definitely_equal,
                     format_shape, is_static, num_elements, substitute)
from .ops import (OPS, InferenceError, OpCategory, OpInfo, is_elementwise,
                  is_reduction, op_info)
from .node import Node
from .graph import Graph
from .builder import GraphBuilder
from .verifier import VerificationError, verify
from .printer import format_node, print_graph
from .serde import graph_from_dict, graph_to_dict, load_graph, save_graph
from .traversal import (ancestors, descendants, induced_subgraph_inputs,
                        induced_subgraph_outputs, reverse_topological_order,
                        topological_order)

__all__ = [
    "ALL_DTYPES", "DType", "boolean", "f16", "f32", "f64", "from_numpy",
    "i32", "i64", "promote",
    "Dim", "Shape", "SymDim", "SymbolTable", "dims_definitely_equal",
    "format_shape", "is_static", "num_elements", "substitute",
    "OPS", "InferenceError", "OpCategory", "OpInfo", "is_elementwise",
    "is_reduction", "op_info",
    "Node", "Graph", "GraphBuilder",
    "VerificationError", "verify",
    "format_node", "print_graph",
    "graph_from_dict", "graph_to_dict", "load_graph", "save_graph",
    "ancestors", "descendants", "induced_subgraph_inputs",
    "induced_subgraph_outputs", "reverse_topological_order",
    "topological_order",
]
