"""Graphviz DOT export for graphs and fusion plans.

``to_dot(graph)`` renders the dataflow; ``plan_to_dot(plan)`` additionally
clusters nodes by fusion group and colours by fusion kind, which is the
fastest way to see what the planner did to a model.  Output is plain DOT
text — feed it to ``dot -Tsvg`` or any Graphviz viewer.
"""

from __future__ import annotations

from .graph import Graph
from .node import Node
from .shapes import format_shape

__all__ = ["to_dot", "plan_to_dot"]

_KIND_COLORS = {
    "kLoop": "#a6cee3",
    "kInput": "#b2df8a",
    "kStitch": "#fb9a99",
    "kLibrary": "#fdbf6f",
    "kSingleton": "#cab2d6",
    "kMetadata": "#eeeeee",
    "kHost": "#ffff99",
}


def _escape(text: str) -> str:
    return text.replace('"', r'\"')


def _node_label(node: Node) -> str:
    return _escape(f"{node.name}\n{node.op} "
                   f"{format_shape(node.shape)}")


def _node_lines(nodes, indent: str, fill: str | None = None) -> list:
    lines = []
    for node in nodes:
        style = f', style=filled, fillcolor="{fill}"' if fill else ""
        shape = "box" if node.op in ("parameter", "constant") else "oval"
        lines.append(f'{indent}n{node.id} [label="{_node_label(node)}", '
                     f'shape={shape}{style}];')
    return lines


def _edge_lines(graph: Graph) -> list:
    lines = []
    for node in graph.nodes:
        for operand in node.inputs:
            lines.append(f"  n{operand.id} -> n{node.id};")
    for i, out in enumerate(graph.outputs):
        lines.append(f'  out{i} [label="output {i}", shape=doublecircle];')
        lines.append(f"  n{out.id} -> out{i};")
    return lines


def to_dot(graph: Graph) -> str:
    """The graph as DOT text."""
    lines = [f'digraph "{_escape(graph.name)}" {{',
             "  rankdir=TB;"]
    lines.extend(_node_lines(graph.nodes, "  "))
    lines.extend(_edge_lines(graph))
    lines.append("}")
    return "\n".join(lines)


def plan_to_dot(plan) -> str:
    """A fusion plan as DOT text with one cluster per multi-op group."""
    graph = plan.graph
    lines = [f'digraph "{_escape(graph.name)}_fused" {{',
             "  rankdir=TB;", "  compound=true;"]
    clustered: set = set()
    for group in plan.groups:
        color = _KIND_COLORS.get(group.kind.value, "#ffffff")
        if group.size > 1:
            lines.append(f"  subgraph cluster_{group.group_id} {{")
            lines.append(f'    label="{group.kind.value}'
                         f'#{group.group_id}";')
            lines.append(f'    style=filled; color="{color}";')
            lines.extend(_node_lines(group.members, "    "))
            lines.append("  }")
            clustered.update(group.members)
        else:
            lines.extend(_node_lines(group.members, "  ", fill=color))
            clustered.update(group.members)
    remaining = [n for n in graph.nodes if n not in clustered]
    lines.extend(_node_lines(remaining, "  "))
    lines.extend(_edge_lines(graph))
    lines.append("}")
    return "\n".join(lines)
