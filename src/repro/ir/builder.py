"""Fluent graph construction API.

:class:`GraphBuilder` wraps a :class:`~repro.ir.graph.Graph` with one method
per op plus convenience helpers that insert the explicit broadcasts the IR
requires.  Model builders in ``repro.models`` are written against this API.

Example::

    b = GraphBuilder("toy")
    batch = b.sym("batch", hint=8)
    x = b.parameter("x", (batch, 128), f32)
    w = b.parameter("w", (128, 64), f32)
    y = b.relu(b.add_bias(b.dot(x, w), b.parameter("c", (64,), f32)))
    b.outputs(y)
    graph = b.graph
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from . import dtypes as dt
from .dtypes import DType
from .graph import Graph
from .node import Node
from .shapes import Dim, SymDim

__all__ = ["GraphBuilder"]


class GraphBuilder:
    """Builds a graph one op at a time with automatic shape inference."""

    def __init__(self, name: str = "graph", graph: Graph | None = None):
        self.graph = graph if graph is not None else Graph(name)

    # -- symbols and sources ---------------------------------------------

    def sym(self, name: str, hint: int | None = None) -> SymDim:
        """A named symbolic dimension (interned per graph)."""
        return self.graph.symtab.named(name, hint)

    def parameter(self, name: str, shape: Sequence[Dim],
                  dtype: DType = dt.f32) -> Node:
        return self.graph.parameter(name, shape, dtype)

    def constant(self, value, dtype: DType | None = None,
                 name: str | None = None) -> Node:
        arr = np.asarray(value)
        if dtype is not None:
            arr = arr.astype(dtype.to_numpy())
        return self.graph.constant(arr, name=name)

    def scalar(self, value: float, dtype: DType = dt.f32) -> Node:
        return self.constant(np.asarray(value, dtype=dtype.to_numpy()))

    def iota(self, shape: Sequence[Dim], axis: int = 0,
             dtype: DType = dt.i64) -> Node:
        return self.graph.add("iota", (), {
            "shape": tuple(shape), "axis": axis, "dtype": dtype})

    def outputs(self, *nodes: Node) -> None:
        self.graph.set_outputs(nodes)

    # -- elementwise -------------------------------------------------------

    def _unary(self, op: str, x: Node) -> Node:
        return self.graph.add(op, (x,))

    def neg(self, x): return self._unary("neg", x)
    def abs(self, x): return self._unary("abs", x)
    def exp(self, x): return self._unary("exp", x)
    def log(self, x): return self._unary("log", x)
    def sqrt(self, x): return self._unary("sqrt", x)
    def rsqrt(self, x): return self._unary("rsqrt", x)
    def tanh(self, x): return self._unary("tanh", x)
    def erf(self, x): return self._unary("erf", x)
    def sigmoid(self, x): return self._unary("sigmoid", x)
    def relu(self, x): return self._unary("relu", x)
    def floor(self, x): return self._unary("floor", x)
    def sign(self, x): return self._unary("sign", x)

    def cast(self, x: Node, dtype: DType) -> Node:
        return self.graph.add("cast", (x,), {"dtype": dtype})

    def _binary(self, op: str, a: Node, b: Node) -> Node:
        a, b = self._coerce_pair(a, b)
        return self.graph.add(op, (a, b))

    def add(self, a, b): return self._binary("add", a, b)
    def sub(self, a, b): return self._binary("sub", a, b)
    def mul(self, a, b): return self._binary("mul", a, b)
    def div(self, a, b): return self._binary("div", a, b)
    def pow(self, a, b): return self._binary("pow", a, b)
    def maximum(self, a, b): return self._binary("maximum", a, b)
    def minimum(self, a, b): return self._binary("minimum", a, b)

    def eq(self, a, b): return self._binary("eq", a, b)
    def ne(self, a, b): return self._binary("ne", a, b)
    def lt(self, a, b): return self._binary("lt", a, b)
    def le(self, a, b): return self._binary("le", a, b)
    def gt(self, a, b): return self._binary("gt", a, b)
    def ge(self, a, b): return self._binary("ge", a, b)

    def select(self, pred: Node, a: Node, b: Node) -> Node:
        pred = self.broadcast_to(pred, a.shape)
        b = self.broadcast_to(b, a.shape)
        return self.graph.add("select", (pred, a, b))

    # -- shape manipulation ------------------------------------------------

    def broadcast_in_dim(self, x: Node, out_shape: Sequence[Dim],
                         broadcast_dims: Sequence[int]) -> Node:
        return self.graph.add("broadcast_in_dim", (x,), {
            "out_shape": tuple(out_shape),
            "broadcast_dims": tuple(broadcast_dims)})

    def broadcast_to(self, x: Node, out_shape: Sequence[Dim]) -> Node:
        """Numpy-style right-aligned broadcast, as an explicit op.

        No-op when the shape already matches structurally.
        """
        out_shape = tuple(out_shape)
        if x.shape == out_shape:
            return x
        offset = len(out_shape) - len(x.shape)
        if offset < 0:
            raise ValueError(
                f"cannot broadcast {x.shape} to lower rank {out_shape}")
        bdims = tuple(range(offset, len(out_shape)))
        for in_dim, pos in zip(x.shape, bdims):
            target = out_shape[pos]
            if in_dim != 1 and in_dim != target:
                raise ValueError(
                    f"cannot broadcast dim {in_dim} to {target} "
                    f"({x.shape} -> {out_shape})")
        return self.broadcast_in_dim(x, out_shape, bdims)

    def _coerce_pair(self, a: Node, b: Node) -> tuple:
        """Insert broadcasts so both operands share a structural shape."""
        if a.shape == b.shape:
            return a, b
        if len(a.shape) <= len(b.shape) and self._broadcastable(a, b.shape):
            return self.broadcast_to(a, b.shape), b
        if self._broadcastable(b, a.shape):
            return a, self.broadcast_to(b, a.shape)
        raise ValueError(
            f"operands not broadcast-compatible: {a.shape} vs {b.shape}")

    @staticmethod
    def _broadcastable(x: Node, target: tuple) -> bool:
        offset = len(target) - len(x.shape)
        if offset < 0:
            return False
        return all(d == 1 or d == target[i + offset]
                   for i, d in enumerate(x.shape))

    def reshape(self, x: Node, new_shape: Sequence[Dim]) -> Node:
        new_shape = tuple(new_shape)
        if x.shape == new_shape:
            return x
        return self.graph.add("reshape", (x,), {"new_shape": new_shape})

    def transpose(self, x: Node, perm: Sequence[int]) -> Node:
        return self.graph.add("transpose", (x,), {"perm": tuple(perm)})

    def slice(self, x: Node, starts, limits, strides=None) -> Node:
        return self.graph.add("slice", (x,), {
            "starts": tuple(starts), "limits": tuple(limits),
            "strides": tuple(strides) if strides else None})

    def pad(self, x: Node, pads: Sequence, value: float = 0) -> Node:
        return self.graph.add("pad", (x,), {
            "pads": tuple(tuple(p) for p in pads), "value": value})

    def concat(self, parts: Sequence[Node], axis: int) -> Node:
        return self.graph.add("concat", tuple(parts), {"axis": axis})

    def gather(self, operand: Node, indices: Node, axis: int = 0) -> Node:
        return self.graph.add("gather", (operand, indices), {"axis": axis})

    # -- reductions ----------------------------------------------------------

    def reduce(self, x: Node, kind: str, axes: Sequence[int] | int,
               keepdims: bool = False) -> Node:
        if isinstance(axes, int):
            axes = (axes,)
        axes = tuple(a % len(x.shape) for a in axes)
        return self.graph.add("reduce", (x,), {
            "kind": kind, "axes": axes, "keepdims": keepdims})

    def reduce_sum(self, x, axes, keepdims=False):
        return self.reduce(x, "sum", axes, keepdims)

    def reduce_max(self, x, axes, keepdims=False):
        return self.reduce(x, "max", axes, keepdims)

    def reduce_mean(self, x, axes, keepdims=False):
        return self.reduce(x, "mean", axes, keepdims)

    def argmax(self, x, axis=-1, keepdims=False):
        return self.reduce(x, "argmax", axis, keepdims)

    def argmin(self, x, axis=-1, keepdims=False):
        return self.reduce(x, "argmin", axis, keepdims)

    # -- heavy compute -------------------------------------------------------

    def dot(self, a: Node, b: Node) -> Node:
        return self.graph.add("dot", (a, b))

    def matmul(self, a: Node, b: Node) -> Node:
        return self.dot(a, b)

    def conv2d(self, x: Node, w: Node, strides=(1, 1),
               padding: str = "same") -> Node:
        return self.graph.add("conv2d", (x, w), {
            "strides": tuple(strides), "padding": padding})

    # -- shape ops -----------------------------------------------------------

    def shape_of(self, x: Node) -> Node:
        return self.graph.add("shape_of", (x,))

    def dim_size(self, x: Node, axis: int) -> Node:
        return self.graph.add("dim_size", (x,), {"axis": axis})

    # -- composites ------------------------------------------------------------

    def softmax(self, x: Node, axis: int = -1) -> Node:
        return self.graph.add("softmax", (x,), {"axis": axis})

    def layer_norm(self, x: Node, scale: Node, bias: Node,
                   eps: float = 1e-5) -> Node:
        return self.graph.add("layer_norm", (x, scale, bias), {"eps": eps})

    def gelu(self, x: Node) -> Node:
        return self.graph.add("gelu", (x,))

    # -- convenience -----------------------------------------------------------

    def add_bias(self, x: Node, bias: Node) -> Node:
        """x + bias with bias broadcast over the leading dims."""
        return self.add(x, self.broadcast_to(bias, x.shape))

    def linear(self, x: Node, weight: Node, bias: Node | None = None) -> Node:
        y = self.dot(x, weight)
        if bias is not None:
            y = self.add_bias(y, bias)
        return y
