"""Textual rendering of graphs, for debugging and golden tests."""

from __future__ import annotations

import numpy as np

from .graph import Graph
from .node import Node
from .shapes import format_shape

__all__ = ["print_graph", "format_node"]


def _format_attr(value) -> str:
    if isinstance(value, np.ndarray):
        if value.size <= 4:
            return np.array2string(value, separator=",").replace("\n", "")
        return f"dense<{value.dtype}{list(value.shape)}>"
    return repr(value)


def format_node(node: Node) -> str:
    ins = ", ".join(n.name for n in node.inputs)
    attrs = ", ".join(f"{k}={_format_attr(v)}"
                      for k, v in sorted(node.attrs.items())
                      if k not in ("shape", "dtype"))
    attr_str = f" {{{attrs}}}" if attrs else ""
    return (f"  {node.name} = {node.op}({ins}){attr_str} : "
            f"{node.dtype}{format_shape(node.shape)}")


def print_graph(graph: Graph) -> str:
    """Render the whole graph as readable text."""
    params = ", ".join(
        f"{p.name}: {p.dtype}{format_shape(p.shape)}" for p in graph.params)
    lines = [f"func {graph.name}({params}) {{"]
    for node in graph.nodes:
        if node.op == "parameter":
            continue
        lines.append(format_node(node))
    outs = ", ".join(o.name for o in graph.outputs)
    lines.append(f"  return {outs}")
    lines.append("}")
    return "\n".join(lines)
