"""Operator registry and per-op symbolic shape/dtype inference.

The op set is modelled on DHLO (the dynamic-shape HLO dialect BladeDISC
compiles): explicit broadcasts, primitive elementwise ops, rooted reductions,
``dot``/``conv2d`` for the compute-heavy ops, data movement (reshape,
transpose, slice, concat, gather) and a small set of *composite* ops
(``softmax``, ``layer_norm``, ``gelu``) that model builders use for
convenience and that the lowering pass decomposes into primitives before
fusion.

Every op has an :class:`OpInfo` record with:

- ``category`` — drives fusion legality (what may join a ``kLoop`` /
  ``kInput`` / ``kStitch`` group) and the device cost model (memory- vs
  compute-bound accounting);
- ``infer`` — symbolic shape/dtype inference.  Inference works directly on
  :class:`~repro.ir.shapes.Dim` values, so a graph built once with symbolic
  dims types correctly for *every* runtime shape; this is the compile-time
  half of the paper's "shape information propagation".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Sequence

import numpy as np

from . import dtypes as dt
from .dtypes import DType
from .shapes import Dim, SymDim, SymbolTable, num_elements

__all__ = [
    "OpCategory",
    "OpInfo",
    "OPS",
    "op_info",
    "is_elementwise",
    "is_reduction",
    "InferenceError",
    "InferContext",
]


class InferenceError(ValueError):
    """Raised when operand shapes/dtypes are incompatible with an op."""


class OpCategory(Enum):
    """Coarse operator classes used by fusion and the cost model."""

    SOURCE = "source"            # parameter, constant, iota
    ELEMENTWISE = "elementwise"  # 1:1 maps, incl. binary/compare/select
    BROADCAST = "broadcast"      # broadcast_in_dim
    RESHAPE = "reshape"          # metadata-only data movement
    TRANSPOSE = "transpose"      # physical data movement
    DATA_MOVEMENT = "data_movement"  # slice, concat, gather
    REDUCTION = "reduction"      # reduce
    DOT = "dot"                  # matmul
    CONV = "conv"                # conv2d
    SHAPE = "shape"              # shape_of, dim_size (host-placed)
    COMPOSITE = "composite"      # softmax, layer_norm, gelu (pre-lowering)


@dataclass
class InferContext:
    """Everything an inference function may need."""

    shapes: Sequence[tuple]
    in_dtypes: Sequence[DType]
    attrs: dict
    symtab: SymbolTable


InferFn = Callable[[InferContext], tuple]


@dataclass(frozen=True)
class OpInfo:
    """Static metadata for one op kind."""

    name: str
    category: OpCategory
    arity: int | None  # None = variadic
    infer: InferFn
    commutative: bool = False
    #: flop cost per output element for elementwise ops (cost model input).
    flops_per_element: float = 1.0


OPS: dict[str, OpInfo] = {}


def _register(name: str, category: OpCategory, arity: int | None,
              infer: InferFn, commutative: bool = False,
              flops_per_element: float = 1.0) -> None:
    if name in OPS:
        raise ValueError(f"duplicate op registration: {name}")
    OPS[name] = OpInfo(name, category, arity, infer, commutative,
                       flops_per_element)


def op_info(name: str) -> OpInfo:
    try:
        return OPS[name]
    except KeyError:
        raise InferenceError(f"unknown op kind: {name!r}") from None


def is_elementwise(name: str) -> bool:
    return op_info(name).category is OpCategory.ELEMENTWISE


def is_reduction(name: str) -> bool:
    return op_info(name).category is OpCategory.REDUCTION


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

def _require(cond: bool, msg: str) -> None:
    if not cond:
        raise InferenceError(msg)


def _same_shape(a: Sequence[Dim], b: Sequence[Dim]) -> bool:
    return len(a) == len(b) and all(x == y for x, y in zip(a, b))


def _check_binary(ctx: InferContext, op: str) -> tuple:
    a, b = ctx.shapes
    _require(
        _same_shape(a, b),
        f"{op}: operand shapes must match structurally (insert an explicit "
        f"broadcast_in_dim); got {a} vs {b}",
    )
    return tuple(a)


# ---------------------------------------------------------------------------
# sources
# ---------------------------------------------------------------------------

def _infer_parameter(ctx: InferContext) -> tuple:
    shape = tuple(ctx.attrs["shape"])
    return shape, ctx.attrs["dtype"]


def _infer_constant(ctx: InferContext) -> tuple:
    value = ctx.attrs["value"]
    _require(isinstance(value, np.ndarray),
             "constant: attrs['value'] must be a numpy array")
    return tuple(int(d) for d in value.shape), dt.from_numpy(value.dtype)


def _infer_iota(ctx: InferContext) -> tuple:
    shape = tuple(ctx.attrs["shape"])
    axis = ctx.attrs["axis"]
    _require(0 <= axis < len(shape), f"iota: axis {axis} out of range")
    return shape, ctx.attrs.get("dtype", dt.i64)


_register("parameter", OpCategory.SOURCE, 0, _infer_parameter)
_register("constant", OpCategory.SOURCE, 0, _infer_constant)
_register("iota", OpCategory.SOURCE, 0, _infer_iota)


# ---------------------------------------------------------------------------
# elementwise
# ---------------------------------------------------------------------------

def _infer_unary_ew(ctx: InferContext) -> tuple:
    return tuple(ctx.shapes[0]), ctx.in_dtypes[0]


def _infer_cast(ctx: InferContext) -> tuple:
    return tuple(ctx.shapes[0]), ctx.attrs["dtype"]


def _infer_binary_ew(op: str) -> InferFn:
    def infer(ctx: InferContext) -> tuple:
        shape = _check_binary(ctx, op)
        return shape, dt.promote(ctx.in_dtypes[0], ctx.in_dtypes[1])
    return infer


def _infer_compare(op: str) -> InferFn:
    def infer(ctx: InferContext) -> tuple:
        shape = _check_binary(ctx, op)
        return shape, dt.boolean
    return infer


def _infer_select(ctx: InferContext) -> tuple:
    pred, a, b = ctx.shapes
    _require(_same_shape(a, b), f"select: branch shapes differ: {a} vs {b}")
    _require(_same_shape(pred, a),
             f"select: predicate shape {pred} must match branches {a}")
    _require(ctx.in_dtypes[0].is_bool, "select: predicate must be bool")
    return tuple(a), dt.promote(ctx.in_dtypes[1], ctx.in_dtypes[2])


_UNARY_EW = {
    "neg": 1.0, "abs": 1.0, "exp": 4.0, "log": 4.0, "sqrt": 4.0,
    "rsqrt": 4.0, "tanh": 8.0, "erf": 8.0, "sigmoid": 6.0, "relu": 1.0,
    "floor": 1.0, "sign": 1.0,
}
for _name, _flops in _UNARY_EW.items():
    _register(_name, OpCategory.ELEMENTWISE, 1, _infer_unary_ew,
              flops_per_element=_flops)
_register("cast", OpCategory.ELEMENTWISE, 1, _infer_cast)

_BINARY_EW = {
    "add": (True, 1.0), "sub": (False, 1.0), "mul": (True, 1.0),
    "div": (False, 4.0), "pow": (False, 8.0),
    "maximum": (True, 1.0), "minimum": (True, 1.0),
}
for _name, (_comm, _flops) in _BINARY_EW.items():
    _register(_name, OpCategory.ELEMENTWISE, 2, _infer_binary_ew(_name),
              commutative=_comm, flops_per_element=_flops)

for _name in ("eq", "ne", "lt", "le", "gt", "ge"):
    _register(_name, OpCategory.ELEMENTWISE, 2, _infer_compare(_name),
              commutative=_name in ("eq", "ne"))

_register("select", OpCategory.ELEMENTWISE, 3, _infer_select)


# ---------------------------------------------------------------------------
# broadcast / reshape / transpose
# ---------------------------------------------------------------------------

def _infer_broadcast_in_dim(ctx: InferContext) -> tuple:
    (in_shape,) = ctx.shapes
    out_shape = tuple(ctx.attrs["out_shape"])
    bdims = tuple(ctx.attrs["broadcast_dims"])
    _require(len(bdims) == len(in_shape),
             "broadcast_in_dim: broadcast_dims must map every input dim")
    _require(all(0 <= d < len(out_shape) for d in bdims),
             "broadcast_in_dim: broadcast_dims out of range")
    _require(list(bdims) == sorted(bdims),
             "broadcast_in_dim: broadcast_dims must be increasing")
    for in_dim, out_pos in zip(in_shape, bdims):
        out_dim = out_shape[out_pos]
        ok = in_dim == 1 or in_dim == out_dim
        _require(ok, (
            f"broadcast_in_dim: input dim {in_dim} maps to output dim "
            f"{out_dim}; must be 1 or structurally equal"))
    return out_shape, ctx.in_dtypes[0]


def _infer_reshape(ctx: InferContext) -> tuple:
    (in_shape,) = ctx.shapes
    new_shape = tuple(ctx.attrs["new_shape"])
    in_count = num_elements(in_shape)
    out_count = num_elements(new_shape)
    if isinstance(in_count, int) and isinstance(out_count, int):
        _require(in_count == out_count, (
            f"reshape: element count mismatch: {in_shape} ({in_count}) -> "
            f"{new_shape} ({out_count})"))
    # Symbolic counts: provable equality is checked when the canonical
    # product terms match; otherwise we accept the reshape and record a
    # product-equality constraint during shape analysis (the paper's
    # approach — the constraint is an *assertion* the runtime validates).
    return new_shape, ctx.in_dtypes[0]


def _infer_transpose(ctx: InferContext) -> tuple:
    (in_shape,) = ctx.shapes
    perm = tuple(ctx.attrs["perm"])
    _require(sorted(perm) == list(range(len(in_shape))),
             f"transpose: perm {perm} is not a permutation of rank "
             f"{len(in_shape)}")
    return tuple(in_shape[p] for p in perm), ctx.in_dtypes[0]


_register("broadcast_in_dim", OpCategory.BROADCAST, 1,
          _infer_broadcast_in_dim)
_register("reshape", OpCategory.RESHAPE, 1, _infer_reshape)
_register("transpose", OpCategory.TRANSPOSE, 1, _infer_transpose)


# ---------------------------------------------------------------------------
# data movement
# ---------------------------------------------------------------------------

def _infer_slice(ctx: InferContext) -> tuple:
    (in_shape,) = ctx.shapes
    starts = tuple(ctx.attrs["starts"])
    limits = tuple(ctx.attrs["limits"])
    strides = tuple(ctx.attrs.get("strides") or (1,) * len(in_shape))
    rank = len(in_shape)
    _require(len(starts) == len(limits) == len(strides) == rank,
             "slice: starts/limits/strides must cover every dim")
    out = []
    for d, (lo, hi, st) in zip(in_shape, zip(starts, limits, strides)):
        _require(st >= 1, "slice: strides must be >= 1")
        if isinstance(d, int):
            _require(0 <= lo <= hi <= d,
                     f"slice: bounds [{lo}:{hi}] out of range for dim {d}")
            out.append((hi - lo + st - 1) // st)
        else:
            # Symbolic dims may only be sliced trivially (full dim), which
            # keeps the symbol; anything else would need a dynamic_slice.
            _require(lo == 0 and st == 1 and hi == d, (
                "slice: a symbolic dim may only be sliced as the full "
                f"dimension, got [{lo}:{hi}:{st}] on {d}"))
            out.append(d)
    return tuple(out), ctx.in_dtypes[0]


def _infer_concat(ctx: InferContext) -> tuple:
    _require(len(ctx.shapes) >= 1, "concat: needs at least one operand")
    axis = ctx.attrs["axis"]
    first = ctx.shapes[0]
    rank = len(first)
    _require(0 <= axis < rank, f"concat: axis {axis} out of range")
    out_axis: Dim = 0
    symbolic_axis: list[Dim] = []
    for shape in ctx.shapes:
        _require(len(shape) == rank, "concat: rank mismatch")
        for i in range(rank):
            if i == axis:
                continue
            _require(shape[i] == first[i], (
                f"concat: non-axis dims must match structurally: "
                f"{shape} vs {first}"))
        d = shape[axis]
        if isinstance(d, int) and isinstance(out_axis, int):
            out_axis += d
        else:
            symbolic_axis.append(d)
    if symbolic_axis:
        # The concatenated extent involves symbols; introduce a fresh symbol
        # (the shape analysis records it as a sum of the parts).
        out_axis = ctx.symtab.fresh()
    out = list(first)
    out[axis] = out_axis
    dtype = ctx.in_dtypes[0]
    for other in ctx.in_dtypes[1:]:
        _require(other is dtype, "concat: dtype mismatch")
    return tuple(out), dtype


def _infer_pad(ctx: InferContext) -> tuple:
    (in_shape,) = ctx.shapes
    pads = tuple(tuple(p) for p in ctx.attrs["pads"])
    _require(len(pads) == len(in_shape),
             "pad: pads must cover every dim")
    out = []
    for d, (lo, hi) in zip(in_shape, pads):
        _require(lo >= 0 and hi >= 0, "pad: negative padding unsupported")
        if lo == 0 and hi == 0:
            out.append(d)
        elif isinstance(d, int):
            out.append(d + lo + hi)
        else:
            # padded symbolic extent: a fresh symbol (resolved at run
            # time as in + lo + hi by resolve_all_dims)
            out.append(ctx.symtab.fresh())
    return tuple(out), ctx.in_dtypes[0]


def _infer_gather(ctx: InferContext) -> tuple:
    operand, indices = ctx.shapes
    axis = ctx.attrs.get("axis", 0)
    _require(0 <= axis < len(operand), f"gather: axis {axis} out of range")
    _require(ctx.in_dtypes[1].is_int, "gather: indices must be integer")
    out = tuple(operand[:axis]) + tuple(indices) + tuple(operand[axis + 1:])
    return out, ctx.in_dtypes[0]


_register("pad", OpCategory.DATA_MOVEMENT, 1, _infer_pad)
_register("slice", OpCategory.DATA_MOVEMENT, 1, _infer_slice)
_register("concat", OpCategory.DATA_MOVEMENT, None, _infer_concat)
_register("gather", OpCategory.DATA_MOVEMENT, 2, _infer_gather)


# ---------------------------------------------------------------------------
# reduction
# ---------------------------------------------------------------------------

_REDUCE_KINDS = ("sum", "max", "min", "mean", "prod", "argmax", "argmin")


def _infer_reduce(ctx: InferContext) -> tuple:
    (in_shape,) = ctx.shapes
    kind = ctx.attrs["kind"]
    _require(kind in _REDUCE_KINDS, f"reduce: unknown kind {kind!r}")
    axes = tuple(sorted(ctx.attrs["axes"]))
    keepdims = bool(ctx.attrs.get("keepdims", False))
    rank = len(in_shape)
    _require(all(0 <= a < rank for a in axes),
             f"reduce: axes {axes} out of range for rank {rank}")
    _require(len(set(axes)) == len(axes), "reduce: duplicate axes")
    out = []
    for i, d in enumerate(in_shape):
        if i in axes:
            if keepdims:
                out.append(1)
        else:
            out.append(d)
    if kind in ("argmax", "argmin"):
        _require(len(axes) == 1,
                 f"reduce: {kind} reduces exactly one axis")
        return tuple(out), dt.i64
    return tuple(out), ctx.in_dtypes[0]


_register("reduce", OpCategory.REDUCTION, 1, _infer_reduce)


# ---------------------------------------------------------------------------
# dot / conv
# ---------------------------------------------------------------------------

def _infer_dot(ctx: InferContext) -> tuple:
    a, b = ctx.shapes
    _require(len(a) >= 2 and len(b) >= 2,
             f"dot: operands must be rank>=2, got {a} and {b}")
    m, k1 = a[-2], a[-1]
    k2, n = b[-2], b[-1]
    _require(k1 == k2, (
        f"dot: contraction dims must match structurally: {k1} vs {k2} "
        f"(shapes {a} x {b})"))
    batch_a, batch_b = a[:-2], b[:-2]
    # Batch dims broadcast numpy-style (dim 1 stretches).
    rank = max(len(batch_a), len(batch_b))
    pa = (1,) * (rank - len(batch_a)) + tuple(batch_a)
    pb = (1,) * (rank - len(batch_b)) + tuple(batch_b)
    batch = []
    for x, y in zip(pa, pb):
        if x == 1:
            batch.append(y)
        elif y == 1:
            batch.append(x)
        else:
            _require(x == y, f"dot: batch dims incompatible: {x} vs {y}")
            batch.append(x)
    dtype = dt.promote(ctx.in_dtypes[0], ctx.in_dtypes[1])
    return tuple(batch) + (m, n), dtype


def _infer_conv2d(ctx: InferContext) -> tuple:
    x, w = ctx.shapes  # NHWC, HWIO
    _require(len(x) == 4 and len(w) == 4,
             "conv2d: expects NHWC input and HWIO weights")
    n, h, wdt, cin = x
    kh, kw, wcin, cout = w
    _require(cin == wcin,
             f"conv2d: input channels {cin} != weight channels {wcin}")
    _require(isinstance(kh, int) and isinstance(kw, int)
             and isinstance(cout, int),
             "conv2d: weight dims must be static")
    sh, sw = ctx.attrs.get("strides", (1, 1))
    padding = ctx.attrs.get("padding", "same")
    _require(padding in ("same", "valid"), "conv2d: padding same|valid")

    def out_extent(d: Dim, k: int, s: int) -> Dim:
        if padding == "same":
            if isinstance(d, int):
                return -(-d // s)  # ceil div
            return d if s == 1 else ctx.symtab.fresh()
        if isinstance(d, int):
            _require(d >= k, f"conv2d: spatial dim {d} smaller than kernel")
            return (d - k) // s + 1
        return ctx.symtab.fresh()

    oh = out_extent(h, kh, sh)
    ow = out_extent(wdt, kw, sw)
    return (n, oh, ow, cout), dt.promote(ctx.in_dtypes[0], ctx.in_dtypes[1])


_register("dot", OpCategory.DOT, 2, _infer_dot)
_register("conv2d", OpCategory.CONV, 2, _infer_conv2d)


# ---------------------------------------------------------------------------
# shape ops (host-placed)
# ---------------------------------------------------------------------------

def _infer_shape_of(ctx: InferContext) -> tuple:
    (in_shape,) = ctx.shapes
    return (len(in_shape),), dt.i64


def _infer_dim_size(ctx: InferContext) -> tuple:
    (in_shape,) = ctx.shapes
    axis = ctx.attrs["axis"]
    _require(0 <= axis < len(in_shape),
             f"dim_size: axis {axis} out of range")
    return (), dt.i64


_register("shape_of", OpCategory.SHAPE, 1, _infer_shape_of)
_register("dim_size", OpCategory.SHAPE, 1, _infer_dim_size)


# ---------------------------------------------------------------------------
# composites (decomposed by the lowering pass)
# ---------------------------------------------------------------------------

def _infer_softmax(ctx: InferContext) -> tuple:
    (in_shape,) = ctx.shapes
    axis = ctx.attrs.get("axis", -1)
    rank = len(in_shape)
    _require(-rank <= axis < rank, f"softmax: axis {axis} out of range")
    _require(ctx.in_dtypes[0].is_float, "softmax: float input required")
    return tuple(in_shape), ctx.in_dtypes[0]


def _infer_layer_norm(ctx: InferContext) -> tuple:
    x, scale, bias = ctx.shapes
    _require(len(scale) == 1 and len(bias) == 1,
             "layer_norm: scale/bias must be rank-1")
    _require(scale[0] == x[-1] and bias[0] == x[-1],
             "layer_norm: scale/bias extent must match last dim")
    return tuple(x), ctx.in_dtypes[0]


def _infer_gelu(ctx: InferContext) -> tuple:
    _require(ctx.in_dtypes[0].is_float, "gelu: float input required")
    return tuple(ctx.shapes[0]), ctx.in_dtypes[0]


_register("softmax", OpCategory.COMPOSITE, 1, _infer_softmax)
_register("layer_norm", OpCategory.COMPOSITE, 3, _infer_layer_norm)
_register("gelu", OpCategory.COMPOSITE, 1, _infer_gelu, flops_per_element=12.0)
