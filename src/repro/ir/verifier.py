"""Graph well-formedness checks (fail-fast wrapper over ``repro.lint``).

The invariants themselves — topological order, operand/output ownership,
shape-recheck against re-run inference, unique parameter names — live in
:mod:`repro.lint.graph_checks`, which collects *every* violation.  This
module keeps the historical gate semantics on top: :func:`verify` raises
:class:`VerificationError` on the first error-severity finding, which is
what pipeline stage boundaries and ``verify_each_pass`` want.

Warning-severity findings (dead values, unreachable nodes) do **not**
fail ``verify``: they are legitimate mid-pipeline states before DCE runs.
Use ``python -m repro.lint`` or :func:`repro.lint.lint_graph` to see them.
"""

from __future__ import annotations

from .graph import Graph

__all__ = ["VerificationError", "verify"]


class VerificationError(RuntimeError):
    """An IR invariant was violated."""


def verify(graph: Graph) -> None:
    """Raise :class:`VerificationError` on the first broken invariant."""
    # Imported lazily: repro.lint depends on repro.ir at module level.
    from ..lint.diagnostics import DiagnosticSink, Severity
    from ..lint.graph_checks import check_graph

    sink = check_graph(graph, DiagnosticSink())
    for diag in sink:
        if diag.severity >= Severity.ERROR:
            raise VerificationError(str(diag))
