"""Graph well-formedness checks.

The verifier re-checks the invariants the builder establishes, so that
passes that mutate graphs in place can be validated cheaply in tests and at
pipeline stage boundaries:

- node list is a topological order (operands precede users);
- every operand of every node (and every output) is owned by the graph;
- re-running shape inference on each node reproduces its recorded
  shape/dtype (inference is deterministic, so a pass that forgot to update
  a shape is caught here);
- parameters have unique names.
"""

from __future__ import annotations

from .graph import Graph
from .ops import InferContext, op_info

__all__ = ["VerificationError", "verify"]


class VerificationError(RuntimeError):
    """An IR invariant was violated."""


def verify(graph: Graph) -> None:
    """Raise :class:`VerificationError` on the first broken invariant."""
    seen: set[int] = set()
    owned = {id(n) for n in graph.nodes}

    for node in graph.nodes:
        for operand in node.inputs:
            if id(operand) not in owned:
                raise VerificationError(
                    f"{node.short()}: operand {operand.short()} is not "
                    f"owned by graph {graph.name!r}")
            if operand.id not in seen:
                raise VerificationError(
                    f"{node.short()}: operand {operand.short()} appears "
                    f"after its user (topological order broken)")
        seen.add(node.id)

    for out in graph.outputs:
        if id(out) not in owned:
            raise VerificationError(
                f"output {out.short()} is not owned by graph {graph.name!r}")

    names = [p.attrs.get("param_name") for p in graph.params]
    if len(names) != len(set(names)):
        raise VerificationError(f"duplicate parameter names: {names}")

    for node in graph.nodes:
        info = op_info(node.op)
        if info.arity is not None and len(node.inputs) != info.arity:
            raise VerificationError(
                f"{node.short()}: arity {len(node.inputs)} != "
                f"{info.arity}")
        ctx = InferContext(
            shapes=[n.shape for n in node.inputs],
            in_dtypes=[n.dtype for n in node.inputs],
            attrs=node.attrs,
            symtab=graph.symtab,
        )
        if node.op in ("concat", "conv2d", "pad"):
            # These may mint fresh symbols during inference; re-inference
            # would mint different ones, so only check rank/dtype.
            shape, dtype = info.infer(ctx)
            if len(shape) != len(node.shape) or dtype is not node.dtype:
                raise VerificationError(
                    f"{node.short()}: recorded type {node.dtype}"
                    f"{node.shape} inconsistent with inference "
                    f"{dtype}{shape}")
            continue
        shape, dtype = info.infer(ctx)
        if tuple(shape) != tuple(node.shape) or dtype is not node.dtype:
            raise VerificationError(
                f"{node.short()}: recorded type {node.dtype}{node.shape} "
                f"!= inferred {dtype}{shape}")
