"""Resolving symbolic shapes against concrete runtime arrays.

At run time the engine receives concrete numpy arrays for the graph
parameters.  :func:`bind_inputs` unifies each parameter's symbolic shape with
its array to produce the *dim bindings* (symbol name -> int) for the call —
the runtime half of the paper's symbolic shape representation.  Downstream,
:func:`concretize_shape` turns any symbolic shape into ints, and
:func:`concretize_attrs` prepares the ``_concrete_*`` attr entries the numpy
kernels need for ``reshape`` / ``broadcast_in_dim``.
"""

from __future__ import annotations

from typing import Mapping, MutableMapping, Sequence

import numpy as np

from ..ir.node import Node
from ..ir.shapes import Dim, SymDim

__all__ = [
    "BindingError",
    "unify_shape",
    "bind_inputs",
    "bind_signature",
    "concretize_shape",
    "concretize_attrs",
    "solve_reshape_shape",
    "resolve_all_dims",
    "DimResolutionPlan",
    "build_resolution_plan",
]


class BindingError(ValueError):
    """Concrete shapes contradict the graph's symbolic shapes."""


def unify_shape(sym_shape: Sequence[Dim], concrete: Sequence[int],
                bindings: MutableMapping[str, int]) -> None:
    """Match ``concrete`` against ``sym_shape``, extending ``bindings``.

    Raises :class:`BindingError` on rank mismatch, on a concrete dim that
    disagrees with the IR, or on a symbol already bound to a different
    value (e.g. two inputs that must share a batch size but do not).
    """
    if len(sym_shape) != len(concrete):
        raise BindingError(
            f"rank mismatch: expected {len(sym_shape)} dims "
            f"({tuple(sym_shape)}), got shape {tuple(concrete)}")
    for dim, actual in zip(sym_shape, concrete):
        actual = int(actual)
        if isinstance(dim, int):
            if dim != actual:
                raise BindingError(
                    f"static dim mismatch: IR says {dim}, array has "
                    f"{actual} (shape {tuple(concrete)})")
        else:
            bound = bindings.get(dim.name)
            if bound is None:
                bindings[dim.name] = actual
            elif bound != actual:
                raise BindingError(
                    f"symbol {dim.name} bound to {bound} but array "
                    f"requires {actual}")


def bind_inputs(params: Sequence[Node],
                inputs: Mapping[str, np.ndarray]) -> dict[str, int]:
    """Derive dim bindings from the parameter arrays of one call."""
    bindings: dict[str, int] = {}
    for param in params:
        pname = param.attrs["param_name"]
        if pname not in inputs:
            raise BindingError(f"missing input for parameter {pname!r}")
        unify_shape(param.shape, inputs[pname].shape, bindings)
    return bindings


def bind_signature(params: Sequence[Node],
                   signature: Sequence[tuple]) -> dict[str, int]:
    """Derive dim bindings from a ``(name, shape)`` signature — no arrays.

    The serving batcher freezes launch plans for *padded* signatures that
    no concrete request carries, so per-signature binding must work from
    shapes alone.  Extra signature entries are ignored, exactly as
    :func:`bind_inputs` ignores extra inputs.
    """
    shapes = {name: shape for name, shape in signature}
    bindings: dict[str, int] = {}
    for param in params:
        pname = param.attrs["param_name"]
        if pname not in shapes:
            raise BindingError(f"signature misses parameter {pname!r}")
        unify_shape(param.shape, shapes[pname], bindings)
    return bindings


def concretize_shape(shape: Sequence[Dim],
                     bindings: Mapping[str, int]) -> tuple:
    """Substitute all symbols; every symbol must be bound."""
    out = []
    for dim in shape:
        if isinstance(dim, SymDim):
            if dim.name not in bindings:
                raise BindingError(f"unbound symbolic dim {dim.name}")
            out.append(int(bindings[dim.name]))
        else:
            out.append(int(dim))
    return tuple(out)


def solve_reshape_shape(new_shape: Sequence[Dim], total_elements: int,
                        bindings: MutableMapping[str, int]) -> tuple:
    """Resolve a reshape target, solving at most one unbound symbol.

    A reshape like ``[batch, seq, h] -> [bs, h]`` introduces a symbol
    (``bs``) whose value is not carried by any graph input.  Exactly like
    numpy's ``-1`` extent, its value is implied by the operand's element
    count; we solve it here and *bind* it so later uses of the symbol
    resolve consistently.
    """
    known = 1
    unknown: SymDim | None = None
    out: list = []
    for dim in new_shape:
        if isinstance(dim, SymDim) and dim.name not in bindings:
            if unknown is not None:
                raise BindingError(
                    f"reshape target {tuple(new_shape)} has more than one "
                    f"unbound symbol ({unknown.name}, {dim.name})")
            unknown = dim
            out.append(dim)
            continue
        value = bindings[dim.name] if isinstance(dim, SymDim) else int(dim)
        known *= value
        out.append(value)
    if unknown is None:
        resolved = tuple(int(d) for d in out)
        if total_elements != int(np.prod(resolved, initial=1)):
            raise BindingError(
                f"reshape target {resolved} does not cover "
                f"{total_elements} elements")
        return resolved
    if known == 0 or total_elements % known != 0:
        raise BindingError(
            f"cannot solve {unknown.name}: {total_elements} elements do "
            f"not divide by known extent {known}")
    solved = total_elements // known
    bindings[unknown.name] = solved
    return tuple(solved if d is unknown else d for d in out)


class DimResolutionPlan:
    """Compile-time factored form of :func:`resolve_all_dims`.

    The legacy resolver walked *every* node of the graph on *every* call,
    re-discovering which ops mint derived symbols.  The plan does that
    discovery once: :func:`build_resolution_plan` scans the node list and
    compiles one small closure per symbol-minting site (reshape targets,
    concat axes, pad extents, conv2d spatial dims), each closed over
    exactly the serialized dims it reads.  ``run(bindings)`` then executes
    only those closures, in the original node order, so the binding
    sequence — and therefore every solved value — is identical to the
    legacy walk.
    """

    __slots__ = ("steps",)

    def __init__(self, steps: list) -> None:
        self.steps = steps

    def run(self, bindings: MutableMapping[str, int]) -> None:
        """Solve every derivable symbol into ``bindings``."""
        for step in self.steps:
            step(bindings)

    def __len__(self) -> int:
        return len(self.steps)


def _spec(dim) -> object:
    """Serialize one dim for a step closure: symbol name or plain int."""
    return dim.name if isinstance(dim, SymDim) else int(dim)


def _reshape_step(node: Node):
    in_dims = tuple(_spec(d) for d in node.inputs[0].shape)
    new_shape = node.attrs["new_shape"]

    def step(bindings, _in=in_dims, _new=new_shape):
        total = 1
        for d in _in:
            if isinstance(d, str):
                value = bindings.get(d)
                if value is None:
                    return  # input not fully bound yet
                total *= value
            else:
                total *= d
        try:
            solve_reshape_shape(_new, total, bindings)
        except BindingError:
            pass  # more than one unknown; runtime solves lazily
    return step


def _concat_step(node: Node, out_name: str, axis: int):
    parts = tuple(_spec(operand.shape[axis]) for operand in node.inputs)

    def step(bindings, _out=out_name, _parts=parts):
        if _out in bindings:
            return
        total = 0
        for d in _parts:
            if isinstance(d, str):
                value = bindings.get(d)
                if value is None:
                    return  # an operand extent is still unknown
                total += value
            else:
                total += d
        bindings[_out] = total
    return step


def _pad_step(out_name: str, in_spec, lo: int, hi: int):
    def step(bindings, _out=out_name, _in=in_spec, _lo=lo, _hi=hi):
        if _out in bindings:
            return
        if isinstance(_in, str):
            value = bindings.get(_in)
            if value is None:
                return
        else:
            value = _in
        bindings[_out] = value + _lo + _hi
    return step


def _conv_step(node: Node, out_name: str, in_spec, spatial: int,
               stride: int):
    same = node.attrs.get("padding", "same") == "same"
    kernel_dim = node.inputs[1].shape[spatial - 1]

    def step(bindings, _out=out_name, _in=in_spec, _stride=stride,
             _same=same, _k=kernel_dim):
        if _out in bindings:
            return
        if isinstance(_in, str):
            value = bindings.get(_in)
            if value is None:
                return
        else:
            value = _in
        if _same:
            bindings[_out] = -(-value // _stride)
        else:
            bindings[_out] = (value - int(_k)) // _stride + 1
    return step


def build_resolution_plan(nodes: Sequence[Node]) -> DimResolutionPlan:
    """Compile the per-node symbol-solving steps for ``nodes``.

    Only nodes that can actually bind a new symbol get a step; a reshape
    whose target is fully static, or a concat whose output extent is a
    literal, contributes nothing at run time.
    """
    steps: list = []
    for node in nodes:
        if node.op == "reshape":
            if any(isinstance(d, SymDim)
                   for d in node.attrs["new_shape"]):
                steps.append(_reshape_step(node))
        elif node.op == "concat":
            axis = node.attrs["axis"]
            out_dim = node.shape[axis]
            if isinstance(out_dim, SymDim):
                steps.append(_concat_step(node, out_dim.name, axis))
        elif node.op == "pad":
            for axis, (lo, hi) in enumerate(node.attrs["pads"]):
                out_dim = node.shape[axis]
                if isinstance(out_dim, SymDim):
                    steps.append(_pad_step(
                        out_dim.name, _spec(node.inputs[0].shape[axis]),
                        lo, hi))
        elif node.op == "conv2d":
            strides = node.attrs.get("strides", (1, 1))
            for spatial, stride in ((1, strides[0]), (2, strides[1])):
                out_dim = node.shape[spatial]
                if isinstance(out_dim, SymDim):
                    steps.append(_conv_step(
                        node, out_dim.name,
                        _spec(node.inputs[0].shape[spatial]), spatial,
                        stride))
    return DimResolutionPlan(steps)


def resolve_all_dims(nodes: Sequence[Node],
                     bindings: MutableMapping[str, int]) -> None:
    """Statically solve every solvable symbol before execution.

    Some symbols are not carried by any graph input: reshape targets mint
    them (``[b, s, h] -> [bs, h]``), concat sums them, conv2d derives them
    from strides.  Walking the graph in topological order, each such symbol
    is computable from already-bound symbols — no tensor data needed.
    Binding them all up front makes kernel execution order-independent
    (an ``iota`` over a solved symbol may run before the reshape that
    "created" it).

    This is the one-shot form: it builds a :class:`DimResolutionPlan` for
    ``nodes`` and runs it immediately.  Repeated callers (the execution
    engine) build the plan once at compile time instead.
    """
    build_resolution_plan(nodes).run(bindings)


def concretize_attrs(node: Node, bindings: MutableMapping[str, int],
                     operand_shapes: Sequence[tuple] | None = None) -> dict:
    """Attrs with symbolic shape attributes resolved for execution.

    Returns a shallow copy; the node's own attrs are never mutated (they are
    shared across calls with different shapes).  ``operand_shapes`` (the
    concrete runtime shapes of the operands) is required for ``reshape`` so
    an unbound target symbol can be solved from the element count.
    """
    attrs = dict(node.attrs)
    if node.op == "reshape":
        if operand_shapes:
            total = int(np.prod(operand_shapes[0], initial=1))
            attrs["_concrete_new_shape"] = solve_reshape_shape(
                attrs["new_shape"], total, bindings)
        else:
            attrs["_concrete_new_shape"] = concretize_shape(
                attrs["new_shape"], bindings)
    elif node.op == "broadcast_in_dim":
        attrs["_concrete_out_shape"] = concretize_shape(
            attrs["out_shape"], bindings)
    elif node.op == "iota":
        attrs["shape"] = concretize_shape(attrs["shape"], bindings)
    elif node.op == "slice":
        # limits (and in principle starts/strides) may reference symbolic
        # dims for "take the whole axis"; the generated-code path resolves
        # them against runtime dims (codegen.support._slice) and the
        # interpreter must agree.
        for key in ("starts", "limits", "strides"):
            spec = attrs.get(key)
            if spec is not None and any(isinstance(d, SymDim)
                                        for d in spec):
                attrs[key] = concretize_shape(spec, bindings)
    return attrs
