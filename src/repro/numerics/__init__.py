"""Numpy execution semantics and symbolic-shape resolution."""

from .kernels import KERNELS, SemanticsError, apply_op
from .resolve import (BindingError, DimResolutionPlan, bind_inputs,
                      build_resolution_plan, concretize_attrs,
                      concretize_shape, resolve_all_dims,
                      solve_reshape_shape, unify_shape)

__all__ = [
    "KERNELS", "SemanticsError", "apply_op",
    "BindingError", "bind_inputs", "concretize_attrs", "concretize_shape",
    "resolve_all_dims", "solve_reshape_shape", "unify_shape",
    "DimResolutionPlan", "build_resolution_plan",
]
