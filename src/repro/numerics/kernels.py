"""Numpy execution semantics for every IR op.

This is the single source of numerical truth: the reference interpreter
evaluates graphs with these functions, the DISC code generator emits calls
into them from fused kernels, and every baseline executor runs them per op —
so all executors in the system are numerically identical by construction and
any divergence found in tests is a real bug.

Each entry takes the already-evaluated operand arrays plus the node's attrs
and returns one output array.  Dtype handling mirrors shape inference in
``repro.ir.ops`` (results are cast to the node's inferred dtype by the
callers when needed).
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

import numpy as np
from scipy import special as _sp

__all__ = ["KERNELS", "apply_op", "SemanticsError"]


class SemanticsError(RuntimeError):
    """An op was applied to arrays it cannot execute on."""


def _erf(x: np.ndarray) -> np.ndarray:
    return _sp.erf(x).astype(x.dtype, copy=False)


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return _sp.expit(x).astype(x.dtype, copy=False)


def _gelu(x: np.ndarray) -> np.ndarray:
    # exact (erf) formulation, the one BERT uses
    return (x * 0.5 * (1.0 + _sp.erf(x / math.sqrt(2.0)))).astype(
        x.dtype, copy=False)


# ---------------------------------------------------------------------------
# sources
# ---------------------------------------------------------------------------

def _k_parameter(args, attrs):
    raise SemanticsError("parameter has no kernel; bind inputs instead")


def _k_constant(args, attrs):
    return attrs["value"]


def _k_iota(args, attrs):
    shape = tuple(int(d) for d in attrs["shape"])
    axis = attrs["axis"]
    dtype = attrs.get("dtype")
    np_dtype = dtype.to_numpy() if dtype is not None else np.int64
    vec = np.arange(shape[axis], dtype=np_dtype)
    expand = [1] * len(shape)
    expand[axis] = shape[axis]
    return np.broadcast_to(vec.reshape(expand), shape).copy()


# ---------------------------------------------------------------------------
# elementwise
# ---------------------------------------------------------------------------

def _unary(fn: Callable[[np.ndarray], np.ndarray]):
    def kernel(args, attrs):
        return fn(args[0])
    return kernel


def _binary(fn: Callable[[np.ndarray, np.ndarray], np.ndarray]):
    def kernel(args, attrs):
        return fn(args[0], args[1])
    return kernel


def _k_cast(args, attrs):
    return args[0].astype(attrs["dtype"].to_numpy())


def _k_select(args, attrs):
    pred, a, b = args
    return np.where(pred, a, b)


def _k_relu(args, attrs):
    x = args[0]
    return np.maximum(x, np.asarray(0, dtype=x.dtype))


def _safe_div(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    if np.issubdtype(a.dtype, np.integer) and np.issubdtype(
            b.dtype, np.integer):
        return a // b
    return a / b


def _safe_pow(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    with np.errstate(invalid="ignore"):
        return np.power(a, b)


# ---------------------------------------------------------------------------
# broadcast / reshape / transpose / data movement
# ---------------------------------------------------------------------------

def _k_broadcast_in_dim(args, attrs):
    (x,) = args
    out_shape = tuple(int(d) for d in attrs["_concrete_out_shape"])
    bdims = tuple(attrs["broadcast_dims"])
    expand = [1] * len(out_shape)
    for in_pos, out_pos in enumerate(bdims):
        expand[out_pos] = x.shape[in_pos]
    return np.broadcast_to(x.reshape(expand), out_shape)


def _k_reshape(args, attrs):
    (x,) = args
    new_shape = tuple(int(d) for d in attrs["_concrete_new_shape"])
    return np.reshape(x, new_shape)


def _k_transpose(args, attrs):
    return np.transpose(args[0], attrs["perm"])


def _k_slice(args, attrs):
    (x,) = args
    starts = attrs["starts"]
    limits = attrs["limits"]
    strides = attrs.get("strides") or (1,) * x.ndim
    index = tuple(slice(int(lo), None if hi is None else int(hi), int(st))
                  for lo, hi, st in zip(starts, limits, strides))
    return x[index]


def _k_concat(args, attrs):
    return np.concatenate(args, axis=attrs["axis"])


def _k_gather(args, attrs):
    operand, indices = args
    return np.take(operand, indices.astype(np.int64), axis=attrs.get(
        "axis", 0))


# ---------------------------------------------------------------------------
# reduction
# ---------------------------------------------------------------------------

_REDUCERS = {
    "sum": np.sum,
    "max": np.max,
    "min": np.min,
    "mean": np.mean,
    "prod": np.prod,
}


def _k_reduce(args, attrs):
    (x,) = args
    kind = attrs["kind"]
    axes = tuple(attrs["axes"])
    keepdims = bool(attrs.get("keepdims", False))
    if kind in ("argmax", "argmin"):
        fn = np.argmax if kind == "argmax" else np.argmin
        out = fn(x, axis=axes[0], keepdims=keepdims)
        return np.asarray(out, dtype=np.int64)
    out = _REDUCERS[kind](x, axis=axes, keepdims=keepdims)
    return np.asarray(out, dtype=x.dtype)


def _k_pad(args, attrs):
    (x,) = args
    pads = tuple(tuple(p) for p in attrs["pads"])
    value = attrs.get("value", 0)
    return np.pad(x, pads, constant_values=value)


# ---------------------------------------------------------------------------
# dot / conv2d
# ---------------------------------------------------------------------------

def _k_dot(args, attrs):
    a, b = args
    return np.matmul(a, b)


def _k_conv2d(args, attrs):
    """NHWC x HWIO -> NHWC convolution via im2col + matmul."""
    x, w = args
    sh, sw = attrs.get("strides", (1, 1))
    padding = attrs.get("padding", "same")
    n, h, wd, cin = x.shape
    kh, kw, wcin, cout = w.shape
    if cin != wcin:
        raise SemanticsError("conv2d: channel mismatch")
    if padding == "same":
        oh = -(-h // sh)
        ow = -(-wd // sw)
        pad_h = max((oh - 1) * sh + kh - h, 0)
        pad_w = max((ow - 1) * sw + kw - wd, 0)
        x = np.pad(x, ((0, 0), (pad_h // 2, pad_h - pad_h // 2),
                       (pad_w // 2, pad_w - pad_w // 2), (0, 0)))
    else:
        oh = (h - kh) // sh + 1
        ow = (wd - kw) // sw + 1
    # im2col: patches[n, oh, ow, kh*kw*cin]
    strides = x.strides
    patch_shape = (n, oh, ow, kh, kw, cin)
    patch_strides = (strides[0], strides[1] * sh, strides[2] * sw,
                     strides[1], strides[2], strides[3])
    patches = np.lib.stride_tricks.as_strided(
        x, shape=patch_shape, strides=patch_strides, writeable=False)
    cols = patches.reshape(n, oh, ow, kh * kw * cin)
    kernel = w.reshape(kh * kw * cin, cout)
    out = cols @ kernel
    return out.astype(x.dtype, copy=False)


# ---------------------------------------------------------------------------
# shape ops
# ---------------------------------------------------------------------------

def _k_shape_of(args, attrs):
    return np.asarray(args[0].shape, dtype=np.int64)


def _k_dim_size(args, attrs):
    return np.asarray(args[0].shape[attrs["axis"]], dtype=np.int64)


# ---------------------------------------------------------------------------
# composites
# ---------------------------------------------------------------------------

def _k_softmax(args, attrs):
    (x,) = args
    axis = attrs.get("axis", -1)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    e = np.exp(shifted)
    return (e / np.sum(e, axis=axis, keepdims=True)).astype(
        x.dtype, copy=False)


def _k_layer_norm(args, attrs):
    x, scale, bias = args
    eps = attrs.get("eps", 1e-5)
    mean = np.mean(x, axis=-1, keepdims=True)
    var = np.mean((x - mean) ** 2, axis=-1, keepdims=True)
    normed = (x - mean) / np.sqrt(var + eps)
    return (normed * scale + bias).astype(x.dtype, copy=False)


def _k_gelu(args, attrs):
    return _gelu(args[0])


KERNELS: dict[str, Callable] = {
    "parameter": _k_parameter,
    "constant": _k_constant,
    "iota": _k_iota,
    "neg": _unary(np.negative),
    "abs": _unary(np.abs),
    "exp": _unary(np.exp),
    "log": _unary(np.log),
    "sqrt": _unary(np.sqrt),
    "rsqrt": _unary(lambda x: (1.0 / np.sqrt(x)).astype(x.dtype,
                                                        copy=False)),
    "tanh": _unary(np.tanh),
    "erf": _unary(_erf),
    "sigmoid": _unary(_sigmoid),
    "relu": _k_relu,
    "floor": _unary(np.floor),
    "sign": _unary(np.sign),
    "cast": _k_cast,
    "add": _binary(np.add),
    "sub": _binary(np.subtract),
    "mul": _binary(np.multiply),
    "div": _binary(_safe_div),
    "pow": _binary(_safe_pow),
    "maximum": _binary(np.maximum),
    "minimum": _binary(np.minimum),
    "eq": _binary(np.equal),
    "ne": _binary(np.not_equal),
    "lt": _binary(np.less),
    "le": _binary(np.less_equal),
    "gt": _binary(np.greater),
    "ge": _binary(np.greater_equal),
    "select": _k_select,
    "broadcast_in_dim": _k_broadcast_in_dim,
    "reshape": _k_reshape,
    "transpose": _k_transpose,
    "pad": _k_pad,
    "slice": _k_slice,
    "concat": _k_concat,
    "gather": _k_gather,
    "reduce": _k_reduce,
    "dot": _k_dot,
    "conv2d": _k_conv2d,
    "shape_of": _k_shape_of,
    "dim_size": _k_dim_size,
    "softmax": _k_softmax,
    "layer_norm": _k_layer_norm,
    "gelu": _k_gelu,
}


def apply_op(op: str, args: Sequence[np.ndarray], attrs: dict) -> np.ndarray:
    """Execute one op on concrete arrays.

    For shape-bearing ops (``broadcast_in_dim``, ``reshape``) the caller must
    have resolved symbolic dims into the ``_concrete_*`` attr entries — see
    :func:`repro.numerics.resolve.concretize_attrs`.
    """
    try:
        kernel = KERNELS[op]
    except KeyError:
        raise SemanticsError(f"no numpy semantics for op {op!r}") from None
    return kernel(list(args), attrs)
