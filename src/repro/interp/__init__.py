"""Reference interpreter — the numerical ground truth for every executor."""

from .interpreter import Interpreter, evaluate

__all__ = ["Interpreter", "evaluate"]
