"""A straightforward graph interpreter.

Evaluates a graph node-by-node in topological order using the numpy
semantics from :mod:`repro.numerics`.  It performs no optimisation at all,
which is exactly what makes it trustworthy: every compiled executor and
every simulated baseline is tested against it.

Beyond the reference role, the interpreter is also the serving runtime's
*fallback executor* (:mod:`repro.serving`): while a signature's launch
plan is still compiling in the background, requests are answered by
interpreting the compiled executable's optimized graph.  Two extensions
exist for that caller:

- ``run(inputs, bindings=...)`` accepts pre-resolved dim bindings, so the
  optimized graph — whose attributes mention *derived* symbols that only
  :func:`repro.numerics.resolve.resolve_all_dims` can solve — interprets
  exactly like the source graph;
- ``kernel_layout=True`` reproduces the generated kernels' memory-layout
  decisions (a transpose materialises a contiguous array rather than a
  strided view), which keeps layout-sensitive library calls downstream
  (``np.matmul``) *bit-identical* between the fallback path and the
  compiled engine.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..ir.graph import Graph
from ..ir.node import Node
from ..ir.shapes import is_static
from ..numerics import (apply_op, bind_inputs, concretize_attrs,
                        concretize_shape, unify_shape)

__all__ = ["Interpreter", "evaluate"]


class Interpreter:
    """Evaluates graphs on concrete inputs.

    The interpreter validates runtime shapes against the IR's symbolic
    shapes as it goes, so a wrong shape-inference rule surfaces as an error
    here rather than as silently wrong data downstream.

    ``kernel_layout`` makes layout-producing ops (``transpose``) return
    contiguous arrays, matching what :mod:`repro.core.codegen` emits into
    fused kernels; the values are unchanged, but layout-sensitive consumers
    (BLAS ``matmul``) then round identically to the compiled engine.
    """

    def __init__(self, graph: Graph, check_shapes: bool = True,
                 kernel_layout: bool = False) -> None:
        self.graph = graph
        self.check_shapes = check_shapes
        self.kernel_layout = kernel_layout

    def run(self, inputs: Mapping[str, np.ndarray],
            bindings: Mapping[str, int] | None = None) -> list[np.ndarray]:
        """Evaluate the graph; returns output arrays in graph-output order.

        ``bindings`` optionally supplies pre-resolved dim bindings (input
        symbols *and* derived symbols).  Without it, bindings start from
        the inputs' shapes and grow as symbols are first unified — enough
        for source graphs, but optimized graphs whose attrs reference
        derived symbols need the caller to resolve them first.
        """
        if bindings is None:
            bindings = bind_inputs(self.graph.params, inputs)
        else:
            bindings = dict(bindings)
        env: dict[Node, np.ndarray] = {}
        for node in self.graph.nodes:
            if node.op == "parameter":
                value = np.ascontiguousarray(
                    inputs[node.attrs["param_name"]])
            else:
                args = [env[operand] for operand in node.inputs]
                attrs = concretize_attrs(node, bindings,
                                         [a.shape for a in args])
                value = np.asarray(apply_op(node.op, args, attrs))
                if self.kernel_layout and node.op == "transpose":
                    value = np.ascontiguousarray(value)
            expected_np = node.dtype.to_numpy()
            if value.dtype != expected_np:
                value = value.astype(expected_np)
            if self.check_shapes:
                # Extend bindings with symbols first seen at this node
                # (e.g. minted by concat/conv2d inference), then check.
                unify_shape(node.shape, value.shape, bindings)
                if is_static(node.shape):
                    expected = concretize_shape(node.shape, bindings)
                    if tuple(value.shape) != expected:
                        raise RuntimeError(
                            f"{node.short()}: computed shape "
                            f"{value.shape} != inferred {expected}")
            env[node] = value
        return [env[out] for out in self.graph.outputs]


def evaluate(graph: Graph,
             inputs: Mapping[str, np.ndarray]) -> list[np.ndarray]:
    """One-shot convenience wrapper around :class:`Interpreter`."""
    return Interpreter(graph).run(inputs)
