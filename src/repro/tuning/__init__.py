"""Cost-model-guided schedule autotuning with budgeted search.

Per-(model, signature) search over a declarative, hardware-pruned
schedule space, scored with the analytic cost model instead of measured
— cheap enough to run in the serving runtime's background compile pool
under an explicit microsecond budget, with winners frozen into launch
plans so replay pays zero search cost.  See :mod:`repro.tuning.tuner`.
"""

from .space import PRUNE_RULES, SpaceResult, StrategySpace
from .tuner import (KernelTuning, ScheduleTuner, TunedSelector,
                    TuningOptions, TuningResult, WorstCaseSelector,
                    representative_signature)

__all__ = [
    "PRUNE_RULES", "SpaceResult", "StrategySpace",
    "KernelTuning", "ScheduleTuner", "TunedSelector", "TuningOptions",
    "TuningResult", "WorstCaseSelector", "representative_signature",
]
