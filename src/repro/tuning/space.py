"""Declarative schedule strategy space with hardware-aware pruning.

The autotuner does not sample schedules at random: it walks a small
declarative grid — block threads x vector width x column split for
row-space kernels, vector width for flat-loop kernels — and prunes it
against the device's launch-configuration limits *before* any candidate
is scored, so the cost model is only consulted for candidates the
hardware could plausibly run well.

Pruning rules, in the order applied to each tuned candidate:

- ``threads`` — block exceeds ``device.max_threads_per_block``;
- ``vector_bytes`` — a per-lane access wider than
  ``device.max_vector_bytes`` (no such load instruction exists);
- ``smem`` — double-buffered tile staging (``2 * 4 bytes * threads *
  vector_width``) exceeds the per-block shared-memory carve-out;
- ``misaligned`` — the vector width does not divide the innermost
  extent, so the variant's aligned wide accesses are illegal;
- ``split_excess`` — more column segments than columns;
- ``split_unneeded`` — a column split whose combine launch buys
  nothing because the unsplit grid already saturates the device;
- ``overshoot`` — the tile covers its row segment more than 4x over,
  guaranteeing mostly-idle lanes;
- ``occupancy`` — the candidate exposes less than half the parallelism
  the problem supports (capped at device saturation);
- ``dominated`` — some other candidate is at least as efficient, at
  least as parallel, and launches no more kernels.  Generic variants
  win ties: they ship with every kernel and need no specialised
  codegen.

The generic dispatch variants are always candidates and are never
pruned themselves, so whatever the heuristic stub would have picked is
always in the scored set — the search can never return a worse pick
than the dispatch stub's, and an empty tuned grid degrades to exactly
the heuristic choice.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.codegen.schedules import (ELEMENTWISE_SCHEDULES,
                                      EW_VECTOR_WIDTHS,
                                      REDUCTION_SCHEDULES,
                                      ROW_TILE_VECTOR_WIDTHS, Schedule,
                                      elementwise_vec, row_tile)
from ..device.profiles import DeviceProfile

__all__ = ["PRUNE_RULES", "SpaceResult", "StrategySpace"]

#: every rule a candidate can be pruned under, in application order.
PRUNE_RULES = ("threads", "vector_bytes", "smem", "misaligned",
               "split_excess", "split_unneeded", "overshoot",
               "occupancy", "dominated")


@dataclass
class SpaceResult:
    """Survivors of one kernel's strategy-space walk."""

    #: surviving :class:`Schedule` variants, in deterministic order
    #: (generic dispatch variants first, then grid order).
    candidates: tuple
    #: grid points walked, generic variants included.
    enumerated: int
    #: rule name -> candidates pruned under it.
    pruned: dict

    @property
    def pruned_total(self) -> int:
        return sum(self.pruned.values())


@dataclass
class _Candidate:
    schedule: Schedule
    efficiency: float
    parallel: int
    generic: bool


class StrategySpace:
    """The tuned-variant grid for one device, plus its pruning rules.

    ``thread_counts`` / ``vector_widths`` / ``col_splits`` bound the
    grid; widths outside the families the codegen can actually emit
    (:data:`EW_VECTOR_WIDTHS`, :data:`ROW_TILE_VECTOR_WIDTHS`) are
    dropped at construction — they are not grid points at all, so they
    neither count as enumerated nor charge the budget.
    """

    def __init__(self, device: DeviceProfile,
                 thread_counts=(32, 64, 128, 256, 512, 1024),
                 vector_widths=(1, 2, 4, 8),
                 col_splits=(1, 2, 4, 8, 16, 32)) -> None:
        self.device = device
        self.thread_counts = tuple(t for t in thread_counts if t >= 1)
        self.ew_widths = tuple(w for w in vector_widths
                               if w in EW_VECTOR_WIDTHS)
        self.row_widths = tuple(w for w in vector_widths
                                if w in ROW_TILE_VECTOR_WIDTHS)
        self.col_splits = tuple(s for s in col_splits if s >= 1)

    # -- static grid sizes (shape-independent; drive budget estimates) -----

    @property
    def elementwise_grid_size(self) -> int:
        return len(ELEMENTWISE_SCHEDULES) + len(self.ew_widths)

    @property
    def reduction_grid_size(self) -> int:
        return len(REDUCTION_SCHEDULES) + (len(self.thread_counts)
                                           * len(self.row_widths)
                                           * len(self.col_splits))

    # -- per-kernel walks --------------------------------------------------

    def elementwise_candidates(self, total_elements: int,
                               innermost: int) -> SpaceResult:
        """Walk + prune the flat-loop grid for one concrete domain."""
        pruned = dict.fromkeys(PRUNE_RULES, 0)
        cands: list[_Candidate] = []
        enumerated = 0
        for sched in ELEMENTWISE_SCHEDULES:
            enumerated += 1
            if sched.name == "vectorized4" and (innermost % 4 != 0
                                                or total_elements < 4):
                # Illegal for this shape (the dispatch stub never picks
                # it either); an enumerated-but-discarded grid point.
                pruned["misaligned"] += 1
                continue
            eff, par = sched.elementwise_profile(total_elements)
            cands.append(_Candidate(sched, eff, par, True))
        for width in self.ew_widths:
            enumerated += 1
            rule = self._prune_elementwise(width, total_elements,
                                           innermost)
            if rule is not None:
                pruned[rule] += 1
                continue
            sched = elementwise_vec(width)
            eff, par = sched.elementwise_profile(total_elements)
            cands.append(_Candidate(sched, eff, par, False))
        survivors = self._prune_dominated(cands, pruned)
        return SpaceResult(tuple(c.schedule for c in survivors),
                           enumerated, pruned)

    def _prune_elementwise(self, width: int, total: int,
                           innermost: int) -> str | None:
        if 4 * width > self.device.max_vector_bytes:
            return "vector_bytes"
        if width > 1 and (innermost % width != 0 or total < width):
            return "misaligned"
        return None

    def reduction_candidates(self, rows: int, cols: int) -> SpaceResult:
        """Walk + prune the row-tile grid for one concrete domain."""
        pruned = dict.fromkeys(PRUNE_RULES, 0)
        cands: list[_Candidate] = []
        enumerated = 0
        for sched in REDUCTION_SCHEDULES:
            enumerated += 1
            eff, par = sched.reduction_profile(rows, cols)
            cands.append(_Candidate(sched, eff, par, True))
        for threads in self.thread_counts:
            for width in self.row_widths:
                for split in self.col_splits:
                    enumerated += 1
                    rule = self._prune_row_tile(threads, width, split,
                                                rows, cols)
                    if rule is not None:
                        pruned[rule] += 1
                        continue
                    sched = row_tile(threads, width, split)
                    eff, par = sched.reduction_profile(rows, cols)
                    cands.append(_Candidate(sched, eff, par, False))
        # Occupancy floor: a tuned candidate exposing under half the
        # parallelism the problem supports (capped at saturation — more
        # buys nothing) cannot be competitive on a bandwidth-ramped
        # device; drop it before paying a cost-model evaluation.
        floor = 0.5 * min(rows * cols, self.device.saturation_elements)
        kept: list[_Candidate] = []
        for cand in cands:
            if not cand.generic and cand.parallel < floor:
                pruned["occupancy"] += 1
            else:
                kept.append(cand)
        survivors = self._prune_dominated(kept, pruned)
        return SpaceResult(tuple(c.schedule for c in survivors),
                           enumerated, pruned)

    def _prune_row_tile(self, threads: int, width: int, split: int,
                        rows: int, cols: int) -> str | None:
        device = self.device
        if threads > device.max_threads_per_block:
            return "threads"
        if 4 * width > device.max_vector_bytes:
            return "vector_bytes"
        if 2 * 4 * threads * width > device.smem_bytes_per_block:
            return "smem"
        if width > 1 and cols % width != 0:
            return "misaligned"
        if split > 1:
            if split > cols:
                return "split_excess"
            if rows * threads * width >= device.saturation_elements:
                return "split_unneeded"
        segment = -(-cols // split)
        if threads * width > 4 * segment:
            return "overshoot"
        return None

    @staticmethod
    def _prune_dominated(cands: list, pruned: dict) -> list:
        """Pareto-prune tuned candidates over (efficiency, parallelism,
        launches).  Generic variants are never pruned and win exact
        ties; a tuned candidate only dominates another when the two
        profiles actually differ (so identical tuned points cannot
        annihilate each other)."""
        kept: list[_Candidate] = []
        for cand in cands:
            if cand.generic:
                kept.append(cand)
                continue
            profile = (cand.efficiency, cand.parallel,
                       cand.schedule.extra_launches)
            dominated = False
            for other in cands:
                if other is cand:
                    continue
                other_profile = (other.efficiency, other.parallel,
                                 other.schedule.extra_launches)
                if other.efficiency >= cand.efficiency \
                        and other.parallel >= cand.parallel \
                        and other.schedule.extra_launches \
                        <= cand.schedule.extra_launches \
                        and (other.generic or other_profile != profile):
                    dominated = True
                    break
            if dominated:
                pruned["dominated"] += 1
            else:
                kept.append(cand)
        return kept
