"""Cost-model-guided schedule autotuning with a microsecond budget.

A TVM-style autotuner *measures* thousands of candidate schedules per
kernel — minutes to hours per shape, untenable when shapes are not
known until serving time.  This tuner makes the opposite bet, the one
the paper's cost-recipe machinery enables: every kernel already carries
symbolic byte/flop formulas, so a candidate schedule can be *scored*
analytically in microseconds instead of measured in seconds.  The
search is then cheap enough to run in the serving runtime's background
compile pool, under an explicit budget:

- the strategy space (:mod:`repro.tuning.space`) is walked per
  schedulable kernel and pruned against the device's launch limits;
- survivors are scored with :func:`kernel_time_us` at the signature's
  concrete dims — or, for a whole symbolic signature *class*, at
  representative dims derived from the interval engine;
- the winner per kernel is the exact ``(time, extra_launches, name)``
  minimum, so the same signature and budget always tune to the same
  plan;
- every enumeration and scoring step charges a simulated-microsecond
  account (:data:`repro.device.compilecost.TUNING_COSTS`); when the
  next step would overrun the budget the remaining kernels keep their
  heuristic picks — spent time never exceeds the budget.

Because the generic dispatch variants are always candidates, a tuned
plan is never slower than the heuristic plan it replaces, and a search
that finds nothing better degrades to exactly the heuristic choice.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.codegen.schedules import (ELEMENTWISE_SCHEDULES,
                                      HEURISTIC_SELECTOR,
                                      REDUCTION_SCHEDULES, Schedule,
                                      ScheduleSelector)
from ..core.symbolic.intervals import derive_intervals
from ..device.compilecost import tuning_cost_us
from ..device.cost import kernel_time_us, occupancy
from ..device.profiles import DeviceProfile
from ..ir.shapes import SymDim
from ..numerics.resolve import bind_signature, resolve_all_dims
from ..obs.tracer import resolve_tracer
from .space import PRUNE_RULES, StrategySpace

__all__ = ["KernelTuning", "ScheduleTuner", "TunedSelector",
           "TuningOptions", "TuningResult", "WorstCaseSelector",
           "representative_signature"]


@dataclass
class TuningOptions:
    """Search knobs: budget plus the strategy-space grid bounds."""

    #: simulated-microsecond ceiling on one signature's search.
    budget_us: float = 250_000.0
    thread_counts: tuple = (32, 64, 128, 256, 512, 1024)
    vector_widths: tuple = (1, 2, 4, 8)
    col_splits: tuple = (1, 2, 4, 8, 16, 32)
    #: codegen-quality factor candidates are scored under; matches
    #: ``EngineOptions.base_efficiency`` so scores equal charged times.
    base_efficiency: float = 0.95


class TunedSelector(ScheduleSelector):
    """Per-kernel tuned winners, heuristics for everything else.

    A pick only applies when its family fits the kernel's iteration
    domain (a row-space winner cannot serve a flat loop); anything
    without an applicable pick falls back to ``fallback`` — by default
    the generic dispatch-stub heuristics.
    """

    def __init__(self, picks: dict,
                 fallback: ScheduleSelector | None = None) -> None:
        self.picks = dict(picks)
        self.fallback = fallback if fallback is not None \
            else HEURISTIC_SELECTOR

    def elementwise(self, kernel, total_elements: int,
                    innermost: int) -> Schedule:
        pick = self.picks.get(kernel.name)
        if pick is not None and not pick.row_space:
            return pick
        return self.fallback.elementwise(kernel, total_elements,
                                         innermost)

    def reduction(self, kernel, rows: int, cols: int) -> Schedule:
        pick = self.picks.get(kernel.name)
        if pick is not None and pick.row_space:
            return pick
        return self.fallback.reduction(kernel, rows, cols)


class WorstCaseSelector(ScheduleSelector):
    """Adversarial policy: the *legal* generic variant the cost model
    likes least (lowest efficiency x occupancy).  E9 uses it to bound
    how much a schedule decision can possibly matter per shape."""

    def __init__(self, device: DeviceProfile) -> None:
        self.device = device

    def _worst(self, schedules, profile) -> Schedule:
        scored = []
        for sched in schedules:
            eff, par = profile(sched)
            scored.append((eff * occupancy(par, self.device),
                           sched.name, sched))
        return min(scored)[2]

    def elementwise(self, kernel, total_elements: int,
                    innermost: int) -> Schedule:
        legal = [s for s in ELEMENTWISE_SCHEDULES
                 if s.name != "vectorized4"
                 or (innermost % 4 == 0 and total_elements >= 4)]
        return self._worst(
            legal, lambda s: s.elementwise_profile(total_elements))

    def reduction(self, kernel, rows: int, cols: int) -> Schedule:
        return self._worst(
            REDUCTION_SCHEDULES,
            lambda s: s.reduction_profile(rows, cols))


@dataclass
class KernelTuning:
    """What the search did for one kernel."""

    name: str
    #: ``"loop"`` or ``"rows"``.
    domain: str
    #: (total, innermost) or (rows, cols) the search scored at.
    extents: tuple
    winner: str
    winner_time_us: float
    heuristic: str
    heuristic_time_us: float
    enumerated: int = 0
    scored: int = 0
    pruned: dict = field(default_factory=dict)
    #: simulated microseconds this kernel charged the budget.
    cost_us: float = 0.0
    #: True when the budget ran out before (or while) searching this
    #: kernel — its pick is the heuristic one.
    skipped: bool = False

    @property
    def improved(self) -> bool:
        return self.winner_time_us < self.heuristic_time_us


@dataclass
class TuningResult:
    """One signature's search outcome: picks plus full accounting."""

    picks: dict
    kernels: list
    budget_us: float
    spent_us: float
    budget_exhausted: bool
    #: the signature the search scored at (for a symbolic class, the
    #: representative signature the interval engine produced).
    signature: tuple | None = None

    def selector(self) -> TunedSelector:
        """The selection policy freezing these winners into a plan."""
        return TunedSelector(self.picks)

    def pick_names(self) -> dict:
        return {name: sched.name for name, sched in self.picks.items()}

    @property
    def enumerated(self) -> int:
        return sum(k.enumerated for k in self.kernels)

    @property
    def scored(self) -> int:
        return sum(k.scored for k in self.kernels)

    @property
    def pruned(self) -> dict:
        totals = dict.fromkeys(PRUNE_RULES, 0)
        for kernel in self.kernels:
            for rule, count in kernel.pruned.items():
                totals[rule] = totals.get(rule, 0) + count
        return totals

    @property
    def tuned_time_us(self) -> float:
        """Scored device time of the schedulable kernels, tuned picks."""
        return sum(k.winner_time_us for k in self.kernels)

    @property
    def heuristic_time_us(self) -> float:
        """Same kernels under the dispatch-stub heuristics."""
        return sum(k.heuristic_time_us for k in self.kernels)

    def summary(self) -> dict:
        """JSON-able digest for benches, stats endpoints and artifacts."""
        tuned = self.tuned_time_us
        heuristic = self.heuristic_time_us
        return {
            "kernels": len(self.kernels),
            "improved": sum(1 for k in self.kernels if k.improved),
            "skipped": sum(1 for k in self.kernels if k.skipped),
            "enumerated": self.enumerated,
            "scored": self.scored,
            "pruned": {r: c for r, c in self.pruned.items() if c},
            "budget_us": self.budget_us,
            "spent_us": self.spent_us,
            "budget_exhausted": self.budget_exhausted,
            "heuristic_time_us": heuristic,
            "tuned_time_us": tuned,
            "speedup": heuristic / tuned if tuned else 1.0,
            "picks": self.pick_names(),
        }


def representative_signature(executable,
                             assume_ranges: dict | None = None) -> tuple:
    """Concrete dims standing in for a whole symbolic signature class.

    Symbolic extents are resolved through the interval engine
    (:func:`derive_intervals`, seeded with ``assume_ranges``): a
    contained likely-value hint wins, then a point interval's value,
    then the midpoint of a finite range, then the lower bound (floored
    at 16 so an unbounded ``v >= 1`` does not tune for degenerate
    one-element launches).
    """
    imap = derive_intervals(executable.graph, assume_ranges)
    signature = []
    for param in executable.params:
        shape = []
        for dim in param.shape:
            if isinstance(dim, SymDim):
                shape.append(_representative_extent(imap.fact_of(dim)))
            else:
                shape.append(int(dim))
        signature.append((param.attrs["param_name"], tuple(shape)))
    return tuple(signature)


def _representative_extent(fact) -> int:
    interval = fact.interval
    if fact.hint is not None and interval.contains(fact.hint):
        return int(fact.hint)
    if interval.is_point:
        return int(interval.lo)
    lo = int(interval.lo) if interval.lo is not None else 1
    if interval.hi is not None:
        return max(1, (lo + int(interval.hi)) // 2)
    return max(lo, 16)


class ScheduleTuner:
    """Budgeted per-signature schedule search over one device's space."""

    def __init__(self, device: DeviceProfile,
                 options: TuningOptions | None = None,
                 tracer=None) -> None:
        self.device = device
        self.options = options or TuningOptions()
        self.tracer = resolve_tracer(tracer)
        self.space = StrategySpace(device,
                                   self.options.thread_counts,
                                   self.options.vector_widths,
                                   self.options.col_splits)

    # -- entry points ------------------------------------------------------

    def tune(self, executable, signature: tuple) -> TuningResult:
        """Search every schedulable kernel at ``signature``'s dims."""
        dims = bind_signature(executable.params, signature)
        resolve_all_dims(executable.graph.nodes, dims)
        return self.tune_dims(executable, dims, signature)

    def tune_class(self, executable,
                   assume_ranges: dict | None = None) -> TuningResult:
        """Tune a symbolic signature class at representative dims."""
        signature = representative_signature(executable, assume_ranges)
        return self.tune(executable, signature)

    def estimate_cost_us(self, executable) -> float:
        """Static upper bound on the search's budget charge.

        Grid sizes are shape-independent and pruning/skipping only ever
        shrinks the scored set, so this is computable before any dims
        are known and actual spend never exceeds it.  The serving
        runtime sizes background-tuning jobs with
        ``min(budget_us, estimate)``.
        """
        loops = rows = 0
        for kernel in self._schedulable(executable):
            if kernel.recipe.domain[0] == "loop":
                loops += 1
            else:
                rows += 1
        enumerated = (loops * self.space.elementwise_grid_size
                      + rows * self.space.reduction_grid_size)
        return tuning_cost_us(kernels=loops + rows,
                              enumerated=enumerated, scored=enumerated)

    # -- the search --------------------------------------------------------

    @staticmethod
    def _schedulable(executable) -> list:
        return [k for k in executable.kernels
                if k.recipe.domain is not None]

    def tune_dims(self, executable, dims: dict,
                  signature: tuple | None = None) -> TuningResult:
        """Core search at already-resolved dim bindings."""
        tracer = self.tracer
        budget = self.options.budget_us
        kernels = self._schedulable(executable)
        picks: dict[str, Schedule] = {}
        records: list[KernelTuning] = []
        spent = 0.0
        exhausted = False
        with tracer.span("tuning:search", kernels=len(kernels),
                         budget_us=budget) as span:
            for kernel in kernels:
                domain = kernel.recipe.domain[0]
                grid = self.space.elementwise_grid_size \
                    if domain == "loop" else self.space.reduction_grid_size
                walk_bound = tuning_cost_us(kernels=1, enumerated=grid)
                if exhausted or spent + walk_bound > budget:
                    if not exhausted:
                        exhausted = True
                        tracer.event("tuning:budget_exhausted",
                                     kernel=kernel.name, spent_us=spent,
                                     budget_us=budget)
                    records.append(self._heuristic_record(kernel, dims,
                                                          domain))
                    continue
                record, winner, over = self._tune_kernel(
                    kernel, dims, domain, budget - spent)
                spent += record.cost_us
                records.append(record)
                if over:
                    # The walk fit but scoring the survivors would not:
                    # the enumeration charge stands, the pick does not.
                    exhausted = True
                    tracer.event("tuning:budget_exhausted",
                                 kernel=kernel.name, spent_us=spent,
                                 budget_us=budget)
                    continue
                picks[kernel.name] = winner
            span.set(spent_us=spent, budget_exhausted=exhausted,
                     picks=len(picks))
        return TuningResult(picks=picks, kernels=records,
                            budget_us=budget, spent_us=spent,
                            budget_exhausted=exhausted,
                            signature=signature)

    def _tune_kernel(self, kernel, dims: dict, domain: str,
                     remaining_us: float) -> tuple:
        """Search one kernel; returns (record, winner, budget_overrun)."""
        base = self.options.base_efficiency
        with self.tracer.span("tuning:kernel",
                              kernel=kernel.name) as span:
            __, major, minor = kernel.domain_extents(dims)
            if domain == "loop":
                result = self.space.elementwise_candidates(major, minor)
            else:
                result = self.space.reduction_candidates(major, minor)
            heuristic = kernel.select_schedule(dims)
            cost = tuning_cost_us(kernels=1,
                                  enumerated=result.enumerated)
            score_cost = tuning_cost_us(scored=len(result.candidates))
            if cost + score_cost > remaining_us:
                record = self._heuristic_record(kernel, dims, domain)
                record.enumerated = result.enumerated
                record.pruned = {r: c for r, c in result.pruned.items()
                                 if c}
                record.cost_us = cost
                span.set(outcome="budget_overrun",
                         enumerated=result.enumerated)
                return record, heuristic, True
            cost += score_cost
            best_key = None
            winner = None
            heuristic_time = 0.0
            winner_time = 0.0
            for sched in result.candidates:
                spec = kernel.cost_spec(dims, sched, base)
                time_us = kernel_time_us(spec, self.device)
                if sched.name == heuristic.name:
                    heuristic_time = time_us
                key = (time_us, sched.extra_launches, sched.name)
                if best_key is None or key < best_key:
                    best_key, winner, winner_time = key, sched, time_us
            record = KernelTuning(
                name=kernel.name, domain=domain, extents=(major, minor),
                winner=winner.name, winner_time_us=winner_time,
                heuristic=heuristic.name,
                heuristic_time_us=heuristic_time,
                enumerated=result.enumerated,
                scored=len(result.candidates),
                pruned={r: c for r, c in result.pruned.items() if c},
                cost_us=cost)
            span.set(enumerated=result.enumerated,
                     scored=len(result.candidates),
                     pruned=result.pruned_total, winner=winner.name,
                     winner_time_us=winner_time,
                     heuristic=heuristic.name,
                     heuristic_time_us=heuristic_time, cost_us=cost)
            return record, winner, False

    def _heuristic_record(self, kernel, dims: dict,
                          domain: str) -> KernelTuning:
        """A skipped kernel's record: heuristic pick on both sides."""
        __, major, minor = kernel.domain_extents(dims)
        schedule = kernel.select_schedule(dims)
        spec = kernel.cost_spec(dims, schedule,
                                self.options.base_efficiency)
        time_us = kernel_time_us(spec, self.device)
        return KernelTuning(
            name=kernel.name, domain=domain, extents=(major, minor),
            winner=schedule.name, winner_time_us=time_us,
            heuristic=schedule.name, heuristic_time_us=time_us,
            skipped=True)
