"""Simulated compilation-cost model.

Real compilation times cannot be measured meaningfully here (our "codegen"
emits Python in microseconds), but experiments E5/E6/E7 hinge on the
*relative* cost of compilation strategies: a JIT that recompiles per shape
signature pays this price once per distinct shape, an autotuner pays far
more per bucket, and a compile-once system pays it a single time.

The constants are calibrated to public figures: XLA-class JIT compilation
of a BERT-sized graph takes tens of seconds; TVM auto-scheduling takes
minutes to hours per shape; TensorRT engine builds take minutes.
"""

from __future__ import annotations

__all__ = ["compile_cost_us", "COMPILE_GRADES", "TUNING_COSTS",
           "tuning_cost_us"]

#: (fixed microseconds, microseconds per graph node)
COMPILE_GRADES = {
    # MLIR/XLA-style JIT: seconds for transformer-sized graphs.
    "jit": (2_000_000.0, 20_000.0),
    # Torch Inductor-style tracing JIT: somewhat cheaper than XLA.
    "tracing_jit": (1_000_000.0, 10_000.0),
    # TVM-style auto-scheduling: search per kernel, minutes per graph.
    "autotune": (60_000_000.0, 400_000.0),
    # TensorRT-style engine building: tactic search, minutes per engine.
    "engine_build": (30_000_000.0, 150_000.0),
    # Pattern-matching graph optimizers (ONNX Runtime session init).
    "session_init": (200_000.0, 1_000.0),
}


def compile_cost_us(num_nodes: int, grade: str) -> float:
    """Simulated one-time compilation cost for a graph of ``num_nodes``."""
    try:
        fixed, per_node = COMPILE_GRADES[grade]
    except KeyError:
        raise KeyError(f"unknown compile grade {grade!r}; "
                       f"available: {sorted(COMPILE_GRADES)}") from None
    return fixed + per_node * num_nodes


#: Accounting rates for the schedule autotuner's budgeted search
#: (:mod:`repro.tuning`).  Per-kernel setup covers loading the kernel's
#: cost recipe and resolving its iteration domain; enumeration is the
#: strategy-space walk with its pruning predicates (cheap — a handful of
#: integer checks per candidate); scoring evaluates the analytic cost
#: model on a surviving candidate.  The scales are per-kernel
#: milliseconds — two to three orders of magnitude under a TVM-style
#: measured autotune, which is exactly the cost-model-guided bet.
TUNING_COSTS = {
    "per_kernel_us": 800.0,
    "per_candidate_enumerated_us": 15.0,
    "per_candidate_scored_us": 350.0,
}


def tuning_cost_us(kernels: int = 0, enumerated: int = 0,
                   scored: int = 0) -> float:
    """Simulated microseconds one tuning search charges its budget."""
    return (TUNING_COSTS["per_kernel_us"] * kernels
            + TUNING_COSTS["per_candidate_enumerated_us"] * enumerated
            + TUNING_COSTS["per_candidate_scored_us"] * scored)
