"""Simulated GPU substrate: device profiles, cost model, counters."""

from .profiles import (A10, CPU_AARCH64, CPU_X86, DEVICES, T4,
                       DeviceProfile, device_named)
from .cost import KernelSpec, kernel_time_us, library_efficiency, occupancy
from .compilecost import (COMPILE_GRADES, TUNING_COSTS, compile_cost_us,
                          tuning_cost_us)
from .counters import RunStats, Timeline

__all__ = [
    "A10", "CPU_AARCH64", "CPU_X86", "DEVICES", "T4", "DeviceProfile",
    "device_named",
    "KernelSpec", "kernel_time_us", "library_efficiency", "occupancy",
    "COMPILE_GRADES", "TUNING_COSTS", "compile_cost_us", "tuning_cost_us",
    "RunStats", "Timeline",
]
