"""Execution statistics shared by every executor.

:class:`RunStats` is what one inference call reports; :class:`Timeline`
accumulates stats across a trace of calls (the serving simulations in the
benchmarks).  Compilation events are recorded separately from steady-state
run time so experiments can report both amortised and excluded-compile
numbers, the way the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["RunStats", "Timeline"]


@dataclass
class RunStats:
    """What one executor invocation cost (simulated)."""

    device_time_us: float = 0.0
    host_time_us: float = 0.0
    compile_time_us: float = 0.0  # compilation triggered by this call
    kernels_launched: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    flops: float = 0.0
    cache_hit: bool = True
    padding_waste_bytes: int = 0
    details: dict = field(default_factory=dict)

    @property
    def total_time_us(self) -> float:
        """End-to-end latency of the call, including any compile stall."""
        return self.device_time_us + self.host_time_us + self.compile_time_us

    @property
    def steady_time_us(self) -> float:
        """Latency excluding one-time compilation."""
        return self.device_time_us + self.host_time_us

    @property
    def bytes_total(self) -> int:
        return self.bytes_read + self.bytes_written

    def merge(self, other: "RunStats") -> None:
        self.device_time_us += other.device_time_us
        self.host_time_us += other.host_time_us
        self.compile_time_us += other.compile_time_us
        self.kernels_launched += other.kernels_launched
        self.bytes_read += other.bytes_read
        self.bytes_written += other.bytes_written
        self.flops += other.flops
        self.padding_waste_bytes += other.padding_waste_bytes
        self.cache_hit = self.cache_hit and other.cache_hit


@dataclass
class Timeline:
    """Aggregated stats across a trace of calls."""

    calls: int = 0
    total_us: float = 0.0
    steady_us: float = 0.0
    compile_us: float = 0.0
    compile_events: int = 0
    kernels: int = 0
    bytes: int = 0
    per_call_us: list = field(default_factory=list)

    def record(self, stats: RunStats) -> None:
        self.calls += 1
        self.total_us += stats.total_time_us
        self.steady_us += stats.steady_time_us
        self.compile_us += stats.compile_time_us
        if stats.compile_time_us > 0:
            self.compile_events += 1
        self.kernels += stats.kernels_launched
        self.bytes += stats.bytes_total
        self.per_call_us.append(stats.total_time_us)

    @property
    def mean_total_us(self) -> float:
        return self.total_us / self.calls if self.calls else 0.0

    @property
    def mean_steady_us(self) -> float:
        return self.steady_us / self.calls if self.calls else 0.0

    def percentile_us(self, q: float) -> float:
        if not self.per_call_us:
            return 0.0
        ordered = sorted(self.per_call_us)
        index = min(len(ordered) - 1, int(q / 100.0 * len(ordered)))
        return ordered[index]
