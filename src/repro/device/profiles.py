"""Simulated GPU device profiles.

The paper evaluates on NVIDIA A10 and T4.  We model each device with the
handful of first-order parameters that determine kernel latency for the
inference workloads in question:

- ``mem_bandwidth_gbps`` — peak DRAM bandwidth; memory-bound kernel time is
  ``bytes / (bandwidth * efficiency)``.
- ``peak_fp32_tflops`` — peak compute; compute-bound kernel time is
  ``flops / (peak * efficiency)``.
- ``kernel_launch_us`` — fixed host→device launch latency per kernel; the
  dominant cost of unfused dynamic-shape inference at small batch.
- ``sm_count`` / ``threads_per_sm`` — device parallelism, used to model how
  much work it takes to saturate the device (small kernels run at a
  fraction of peak bandwidth).

Parameter values are taken from the public datasheets; they produce
realistic *ratios* (A10 ≈ 1.9× the bandwidth and ≈ 3.9× the fp32 compute
of T4), which is what matters for reproducing the paper's speedup shape.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DeviceProfile", "A10", "T4", "DEVICES", "device_named"]


@dataclass(frozen=True)
class DeviceProfile:
    """First-order performance model of one GPU."""

    name: str
    mem_bandwidth_gbps: float
    peak_fp32_tflops: float
    kernel_launch_us: float
    sm_count: int
    threads_per_sm: int = 1536
    #: fixed tail/epilogue overhead per kernel beyond the launch itself.
    kernel_fixed_us: float = 0.5
    #: host cost of one host-placed scalar/shape computation.
    host_op_us: float = 0.08
    #: launch-config ceiling: threads one block may use.  The schedule
    #: autotuner prunes tile candidates above it (on CPU the analog is
    #: the worker-team width of one parallel loop).
    max_threads_per_block: int = 1024
    #: shared-memory analog available to one block for staging buffers.
    #: Modelled as a conservative per-block carve-out rather than the
    #: full datasheet figure, so double-buffered wide-vector tiles are
    #: genuinely constrained (the tuner's smem pruning rule).
    smem_bytes_per_block: int = 24_576
    #: widest vector load/store one lane can issue, in bytes (float4 on
    #: the GPUs; the SIMD register width on the CPUs).
    max_vector_bytes: int = 16

    @property
    def saturation_elements(self) -> int:
        """Elements of parallel work needed to saturate the device.

        Below this, effective bandwidth/compute scale roughly linearly
        with available parallelism (tail effect / low occupancy).
        """
        return self.sm_count * self.threads_per_sm * 2

    def bytes_per_us(self) -> float:
        return self.mem_bandwidth_gbps * 1e9 / 1e6

    def flops_per_us(self) -> float:
        return self.peak_fp32_tflops * 1e12 / 1e6


A10 = DeviceProfile(
    name="A10",
    mem_bandwidth_gbps=600.0,
    peak_fp32_tflops=31.2,
    kernel_launch_us=3.5,
    sm_count=72,
)

T4 = DeviceProfile(
    name="T4",
    mem_bandwidth_gbps=320.0,
    peak_fp32_tflops=8.1,
    kernel_launch_us=3.5,
    sm_count=40,
)

#: A server CPU (Ice-Lake-class, 32 cores with AVX-512).  BladeDISC also
#: deploys on CPU; the profile reuses the same roofline with CPU-typical
#: parameters: tiny "launch" cost (a function call, not a PCIe round
#: trip), low bandwidth, and so few hardware threads that the occupancy
#: ramp saturates almost immediately.
CPU_X86 = DeviceProfile(
    name="CPU-x86",
    mem_bandwidth_gbps=100.0,
    peak_fp32_tflops=2.0,
    kernel_launch_us=0.3,
    kernel_fixed_us=0.2,
    sm_count=32,
    threads_per_sm=2,
    host_op_us=0.05,
    max_threads_per_block=32,
    smem_bytes_per_block=32_768,
    max_vector_bytes=64,
)

#: An AArch64 server CPU (Yitian-710-class), the other CPU target the
#: BladeDISC system supports.
CPU_AARCH64 = DeviceProfile(
    name="CPU-aarch64",
    mem_bandwidth_gbps=140.0,
    peak_fp32_tflops=1.6,
    kernel_launch_us=0.3,
    kernel_fixed_us=0.2,
    sm_count=64,
    threads_per_sm=2,
    host_op_us=0.05,
    max_threads_per_block=32,
    smem_bytes_per_block=32_768,
    max_vector_bytes=16,
)

DEVICES = {"A10": A10, "T4": T4, "CPU-x86": CPU_X86,
           "CPU-aarch64": CPU_AARCH64}


def device_named(name: str) -> DeviceProfile:
    """Look up a device profile by name ("A10", "T4", "CPU-x86", ...)."""
    try:
        return DEVICES[name]
    except KeyError:
        raise KeyError(
            f"unknown device {name!r}; available: {sorted(DEVICES)}"
        ) from None
