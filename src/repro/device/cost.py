"""Analytic kernel cost model.

Every executor in the system (DISC and all seven baselines) describes the
kernels it launches as :class:`KernelSpec` records — bytes moved, flops,
parallelism, and an efficiency factor reflecting how well that system's
code generator uses the device.  :func:`kernel_time_us` converts a spec
into simulated microseconds on a :class:`DeviceProfile`:

``time = launches * (launch + fixed) + max(mem_time, compute_time)``

- ``mem_time = bytes / (BW * occupancy * efficiency)`` — small kernels
  cannot saturate DRAM bandwidth (the tail/occupancy effect that makes
  per-op execution and padding waste so expensive);
- ``compute_time = flops / (peak * efficiency)`` — compute efficiency is
  the *generator's* problem (vendor-library GEMM curves, codegen quality),
  so occupancy is not double-counted here;
- library kernels (cuBLAS-style GEMM) additionally bypass the memory
  occupancy penalty — tiled GEMMs stream well at any size, and their
  size-dependence is carried by :func:`library_efficiency`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .profiles import DeviceProfile

__all__ = ["KernelSpec", "kernel_time_us", "occupancy", "library_efficiency"]


@dataclass
class KernelSpec:
    """One device kernel launch, as the cost model sees it."""

    name: str
    bytes_read: int
    bytes_written: int
    flops: float
    #: independent output elements available for parallelism.
    parallel_elements: int
    #: how well the producing compiler's code uses the device (1.0 = peak).
    efficiency: float = 1.0
    #: extra launches folded into this spec (e.g. multi-pass reductions).
    extra_launches: int = 0
    #: vendor-library kernel (GEMM/conv): streams memory regardless of
    #: output size, so the occupancy penalty does not apply.
    occupancy_exempt: bool = False
    tags: dict = field(default_factory=dict)

    @property
    def bytes_total(self) -> int:
        return self.bytes_read + self.bytes_written


#: Minimum useful utilisation of even a one-warp kernel.
_OCCUPANCY_FLOOR = 0.08


def occupancy(parallel_elements: int, device: DeviceProfile) -> float:
    """Fraction of peak DRAM bandwidth a kernel of this size can reach.

    Ramps linearly up to the device's saturation point, with a floor that
    models the minimum useful utilisation of even a tiny kernel.
    """
    if parallel_elements <= 0:
        return _OCCUPANCY_FLOOR
    frac = parallel_elements / device.saturation_elements
    return max(_OCCUPANCY_FLOOR, min(1.0, frac))


def library_efficiency(m: float, n: float, k: float) -> float:
    """How close to peak a vendor GEMM library runs, by problem size.

    Large square-ish GEMMs approach peak; skinny/small ones are launch and
    memory limited.  The curve saturates at 0.85 of peak (fp32 cuBLAS-like)
    and degrades smoothly for small products.
    """
    work = m * n * k
    # ~85% of peak beyond ~64M MACs, sliding down for smaller problems.
    scale = work / 64e6
    return 0.85 * min(1.0, max(0.05, scale ** 0.5))


def kernel_time_us(spec: KernelSpec, device: DeviceProfile) -> float:
    """Simulated wall-clock microseconds for one kernel launch."""
    eff = max(1e-3, spec.efficiency)
    if spec.occupancy_exempt:
        occ = 1.0
    else:
        occ = occupancy(spec.parallel_elements, device)
    mem_time = spec.bytes_total / (device.bytes_per_us() * occ * eff)
    compute_time = spec.flops / (device.flops_per_us() * eff)
    launches = 1 + spec.extra_launches
    return (launches * (device.kernel_launch_us + device.kernel_fixed_us)
            + max(mem_time, compute_time))
