"""repro — a reproduction of BladeDISC (SIGMOD 2023).

An ML compiler for dynamic tensor shapes, built in pure Python over a
simulated GPU substrate:

- :mod:`repro.ir` — tensor IR with symbolic dims;
- :mod:`repro.core` — the paper's contribution: cross-level symbolic shape
  analysis, shape-propagation-based fusion (kLoop/kInput/kStitch), and
  compile-time/runtime combined code generation;
- :mod:`repro.runtime` — the runtime abstraction layer (RAL);
- :mod:`repro.serving` — concurrent serving runtime with background
  compilation and an interpreter fallback path;
- :mod:`repro.tuning` — budgeted, cost-model-guided schedule autotuning
  whose winners freeze into cached launch plans;
- :mod:`repro.device` — analytic A10/T4 GPU cost model;
- :mod:`repro.baselines` — seven simulated baseline systems;
- :mod:`repro.models` / :mod:`repro.workloads` / :mod:`repro.bench` — the
  evaluation stack.

Quickstart::

    from repro import GraphBuilder, f32, compile_graph, ExecutionEngine, A10

    b = GraphBuilder("toy")
    batch = b.sym("batch")
    x = b.parameter("x", (batch, 128), f32)
    w = b.parameter("w", (128, 64), f32)
    b.outputs(b.softmax(b.dot(x, w), axis=-1))

    exe = compile_graph(b.graph)        # compile ONCE
    engine = ExecutionEngine(exe, A10)
    outputs, stats = engine.run({"x": ..., "w": ...})  # ANY batch size
"""

from .ir import (DType, Graph, GraphBuilder, Node, SymDim, boolean, f16,
                 f32, f64, i32, i64, print_graph, verify)
from .core import (CompileOptions, ConstraintLevel, DiscCompiler,
                   FusionConfig, FusionKind, compile_graph)
from .runtime import (EngineOptions, Executable, ExecutionEngine,
                      HostProgram, LaunchPlan, LaunchPlanCache,
                      LegacyExecutionEngine, MemoryBudget,
                      SymbolicBufferPlan, measure_peak_bytes)
from .device import A10, T4, DeviceProfile, RunStats, Timeline, device_named
from .interp import evaluate
from .frontend import TracedTensor, trace
from .baselines import DiscExecutor, baseline_names, make_baseline
from .models import Model, build_model, zoo
from .workloads import make_trace
from .serving import (AutoscalerOptions, BatchingOptions,
                      BatchingServingEngine, ClusterSim, FleetEngine,
                      FleetOptions, ServingEngine, ServingOptions,
                      TenantTraffic, VirtualClock, VirtualScheduler)
from .tuning import ScheduleTuner, TuningOptions, TuningResult

__version__ = "1.0.0"

__all__ = [
    "DType", "Graph", "GraphBuilder", "Node", "SymDim", "boolean", "f16",
    "f32", "f64", "i32", "i64", "print_graph", "verify",
    "CompileOptions", "ConstraintLevel", "DiscCompiler", "FusionConfig",
    "FusionKind", "compile_graph",
    "EngineOptions", "Executable", "ExecutionEngine",
    "HostProgram", "LaunchPlan", "LaunchPlanCache",
    "LegacyExecutionEngine", "MemoryBudget", "SymbolicBufferPlan",
    "measure_peak_bytes",
    "A10", "T4", "DeviceProfile", "RunStats", "Timeline", "device_named",
    "evaluate",
    "TracedTensor", "trace",
    "DiscExecutor", "baseline_names", "make_baseline",
    "Model", "build_model", "zoo",
    "make_trace",
    "AutoscalerOptions", "BatchingOptions", "BatchingServingEngine",
    "ClusterSim", "FleetEngine", "FleetOptions",
    "ServingEngine", "ServingOptions", "TenantTraffic",
    "VirtualClock", "VirtualScheduler",
    "ScheduleTuner", "TuningOptions", "TuningResult",
    "__version__",
]
