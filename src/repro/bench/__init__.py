"""Experiment harness regenerating every paper table and figure."""

from .reporting import format_table, print_and_save, results_dir, \
    save_results
from .experiments import (
    BENCH_MODELS, bench_queries,
    e1_end_to_end, format_end_to_end,
    e3_fusion_ablation, format_fusion_ablation,
    e4_shape_constraints, format_shape_constraints,
    e5_codegen_strategies, format_codegen_strategies,
    e6_compile_overhead, format_compile_overhead,
    e7_shape_diversity, format_shape_diversity,
    e8_kernel_reduction, format_kernel_reduction,
    e9_schedule_selection, format_schedule_selection,
    e10_placement_overhead, format_placement_overhead,
    e11_memory_planning, format_memory_planning,
    e12_adaptive_specialization, format_adaptive_specialization,
    e14_serving_tail_latency, format_serving_tail_latency,
    e15_host_overhead, format_host_overhead,
    e16_async_serving, format_async_serving,
    e17_dynamic_batching, format_dynamic_batching,
    e18_fleet_routing, format_fleet_routing,
)
from .serving import ServingResult, simulate_serving

__all__ = [
    "format_table", "print_and_save", "results_dir", "save_results",
    "BENCH_MODELS", "bench_queries",
    "e1_end_to_end", "format_end_to_end",
    "e3_fusion_ablation", "format_fusion_ablation",
    "e4_shape_constraints", "format_shape_constraints",
    "e5_codegen_strategies", "format_codegen_strategies",
    "e6_compile_overhead", "format_compile_overhead",
    "e7_shape_diversity", "format_shape_diversity",
    "e8_kernel_reduction", "format_kernel_reduction",
    "e9_schedule_selection", "format_schedule_selection",
    "e10_placement_overhead", "format_placement_overhead",
    "e11_memory_planning", "format_memory_planning",
    "e12_adaptive_specialization", "format_adaptive_specialization",
    "e14_serving_tail_latency", "format_serving_tail_latency",
    "e15_host_overhead", "format_host_overhead",
    "e16_async_serving", "format_async_serving",
    "e17_dynamic_batching", "format_dynamic_batching",
    "e18_fleet_routing", "format_fleet_routing",
    "ServingResult", "simulate_serving",
]
