"""The experiment harness: one function per paper table/figure (E1-E10).

Each function runs the full (simulated) measurement and returns a payload
dict with the raw numbers plus a ``format_*`` companion producing the
paper-style text table.  The ``benchmarks/bench_e*.py`` files are thin
pytest wrappers around these.

Scale note: query counts default to values that keep the numpy substrate
fast; set ``REPRO_BENCH_QUERIES`` to raise them for smoother averages.
"""

from __future__ import annotations

import os
import time
from statistics import mean

import numpy as np

from ..baselines import DiscExecutor, baseline_names, make_baseline
from ..core.fusion.kinds import FusionConfig
from ..core.pipeline import CompileOptions, DiscCompiler
from ..core.symbolic import ConstraintLevel
from ..device import Timeline, device_named
from ..ir import f32
from ..ir.builder import GraphBuilder
from ..models import build_model
from ..obs.metrics import MetricsRegistry
from ..obs.tracer import Tracer
from ..runtime.engine import EngineOptions, ExecutionEngine
from ..workloads import make_trace
from .reporting import format_table

__all__ = [
    "BENCH_MODELS", "bench_queries",
    "e1_end_to_end", "format_end_to_end",
    "e3_fusion_ablation", "format_fusion_ablation",
    "e4_shape_constraints", "format_shape_constraints",
    "e5_codegen_strategies", "format_codegen_strategies",
    "e6_compile_overhead", "format_compile_overhead",
    "e7_shape_diversity", "format_shape_diversity",
    "e8_kernel_reduction", "format_kernel_reduction",
    "e9_schedule_selection", "format_schedule_selection",
    "e10_placement_overhead", "format_placement_overhead",
    "e11_memory_planning", "format_memory_planning",
    "e12_adaptive_specialization", "format_adaptive_specialization",
    "e14_serving_tail_latency", "format_serving_tail_latency",
    "e15_host_overhead", "format_host_overhead",
    "e16_async_serving", "format_async_serving",
    "e17_dynamic_batching", "format_dynamic_batching",
    "e18_fleet_routing", "format_fleet_routing",
]

#: Zoo configurations used by the end-to-end experiments: moderate sizes
#: that preserve each architecture's op mix while keeping the numpy
#: substrate fast enough to sweep 8 systems x 2 devices.
BENCH_MODELS = {
    "bert": {"layers": 3, "hidden": 256, "heads": 4},
    "albert": {"layers": 3, "hidden": 256, "heads": 4},
    "gpt2": {"layers": 3, "hidden": 256, "heads": 4, "vocab": 4096},
    "t5": {"layers": 2, "hidden": 256, "heads": 4, "vocab": 4096},
    "s2t": {"layers": 3, "hidden": 256, "heads": 4},
    "crnn": {},
    "fastspeech2": {"layers": 2, "hidden": 256, "heads": 4},
    "dien": {},
}


def bench_queries(default: int) -> int:
    return int(os.environ.get("REPRO_BENCH_QUERIES", default))


def _bench_model(name: str):
    return build_model(name, **BENCH_MODELS.get(name, {}))


# ---------------------------------------------------------------------------
# E1/E2 — end-to-end speedup across the zoo (the paper's headline figure)
# ---------------------------------------------------------------------------

def e1_end_to_end(device_name: str = "A10", models: list | None = None,
                  num_queries: int | None = None,
                  distribution: str = "zipf", seed: int = 0) -> dict:
    """Mean steady-state speedup of BladeDISC vs every baseline, per model.

    The paper reports end-to-end inference latency with compilation
    excluded (every system warmed on the trace's shapes); we report the
    same "steady" number, and additionally surface compile totals.
    """
    device = device_named(device_name)
    model_names = models or list(BENCH_MODELS)
    num_queries = num_queries if num_queries is not None \
        else bench_queries(30)
    systems = baseline_names()
    per_model: dict[str, dict] = {}
    disc_latency: dict[str, float] = {}
    compile_us: dict[str, dict] = {}

    for model_name in model_names:
        model = _bench_model(model_name)
        trace = make_trace(model, num_queries, distribution, seed=seed)
        inputs = trace.inputs()

        disc = DiscExecutor(model.graph, device)
        disc_timeline = disc.run_trace(inputs)
        disc_latency[model_name] = disc_timeline.mean_steady_us

        speedups: dict[str, float] = {}
        compiles: dict[str, float] = {}
        for system in systems:
            executor = make_baseline(system, model.graph, device)
            timeline = executor.run_trace(inputs)
            speedups[system] = (timeline.mean_steady_us
                                / disc_timeline.mean_steady_us)
            compiles[system] = timeline.compile_us
        per_model[model_name] = speedups
        compile_us[model_name] = compiles

    summary = {
        system: {
            "mean": mean(per_model[m][system] for m in model_names),
            "max": max(per_model[m][system] for m in model_names),
        }
        for system in systems
    }
    return {
        "experiment": "end_to_end",
        "device": device_name,
        "distribution": distribution,
        "num_queries": num_queries,
        "models": model_names,
        "baselines": systems,
        "speedup": per_model,
        "summary": summary,
        "disc_mean_steady_us": disc_latency,
        "baseline_compile_us": compile_us,
    }


def format_end_to_end(result: dict) -> str:
    headers = ["model"] + result["baselines"]
    rows = []
    for model_name in result["models"]:
        row = [model_name] + [result["speedup"][model_name][s]
                              for s in result["baselines"]]
        rows.append(row)
    rows.append(["(mean)"] + [result["summary"][s]["mean"]
                              for s in result["baselines"]])
    rows.append(["(max)"] + [result["summary"][s]["max"]
                             for s in result["baselines"]])
    title = (f"[{result['device']}] BladeDISC end-to-end speedup over each "
             f"baseline ({result['distribution']} trace, "
             f"{result['num_queries']} queries, compile excluded)")
    return format_table(headers, rows, title)


# ---------------------------------------------------------------------------
# E3 — fusion-kind ablation
# ---------------------------------------------------------------------------

def e3_fusion_ablation(device_name: str = "A10",
                       models: tuple = ("bert", "s2t"),
                       num_queries: int | None = None,
                       seed: int = 0) -> dict:
    """Kernels / bytes / latency as fusion kinds are enabled one by one."""
    device = device_named(device_name)
    num_queries = num_queries if num_queries is not None \
        else bench_queries(15)
    variants = [
        ("no-fusion", FusionConfig.none()),
        ("kLoop", FusionConfig.loop_only()),
        ("kLoop+kInput", FusionConfig.loop_and_input()),
        ("kLoop+kInput+kStitch", FusionConfig()),
    ]
    rows = []
    for model_name in models:
        model = _bench_model(model_name)
        trace = make_trace(model, num_queries, "zipf", seed=seed)
        inputs = trace.inputs()
        for label, config in variants:
            options = CompileOptions(fusion=config)
            executor = DiscExecutor(model.graph, device, options)
            timeline = executor.run_trace(inputs)
            rows.append({
                "model": model_name,
                "variant": label,
                "kernels_per_query": timeline.kernels / timeline.calls,
                "mbytes_per_query": timeline.bytes / timeline.calls / 1e6,
                "mean_steady_us": timeline.mean_steady_us,
            })
    return {"experiment": "fusion_ablation", "device": device_name,
            "rows": rows}


def format_fusion_ablation(result: dict) -> str:
    headers = ["model", "fusion", "kernels/query", "MB/query",
               "latency (us)"]
    rows = [[r["model"], r["variant"], r["kernels_per_query"],
             r["mbytes_per_query"], r["mean_steady_us"]]
            for r in result["rows"]]
    return format_table(
        headers, rows,
        f"[{result['device']}] Fusion ablation: adding kLoop, kInput, "
        f"kStitch")


# ---------------------------------------------------------------------------
# E4 — shape-constraint ablation
# ---------------------------------------------------------------------------

def e4_shape_constraints(device_name: str = "A10",
                         models: tuple = ("bert", "gpt2", "s2t"),
                         num_queries: int | None = None,
                         seed: int = 0) -> dict:
    """What the symbolic constraints buy: fusion size and latency by level."""
    device = device_named(device_name)
    num_queries = num_queries if num_queries is not None \
        else bench_queries(15)
    rows = []
    for model_name in models:
        model = _bench_model(model_name)
        trace = make_trace(model, num_queries, "zipf", seed=seed)
        inputs = trace.inputs()
        for level in (ConstraintLevel.NONE, ConstraintLevel.EQUALITY,
                      ConstraintLevel.FULL):
            options = CompileOptions(constraint_level=level)
            executor = DiscExecutor(model.graph, device, options)
            stats = executor.executable.report.fusion_stats
            timeline = executor.run_trace(inputs)
            rows.append({
                "model": model_name,
                "level": level.value,
                "kernels": stats["kernels"],
                "fused_ops": stats["fused_ops"],
                "mean_steady_us": timeline.mean_steady_us,
            })
    return {"experiment": "shape_constraints", "device": device_name,
            "rows": rows}


def format_shape_constraints(result: dict) -> str:
    headers = ["model", "constraints", "kernels", "fused ops",
               "latency (us)"]
    rows = [[r["model"], r["level"], r["kernels"], r["fused_ops"],
             r["mean_steady_us"]] for r in result["rows"]]
    return format_table(
        headers, rows,
        f"[{result['device']}] Symbolic shape-constraint ablation "
        f"(none / dim-equality / +product-equality)")


# ---------------------------------------------------------------------------
# E5 — compilation-strategy comparison
# ---------------------------------------------------------------------------

def _k_distinct_trace(model, num_queries: int, k: int, seed: int = 0):
    """A trace cycling through exactly ``k`` distinct shape signatures."""
    axis_values = []
    spans = {}
    for axis, (lo, hi) in model.axes.items():
        spans[axis] = np.linspace(lo, hi, k).astype(int)
    for i in range(num_queries):
        axis_values.append(
            {axis: int(values[i % k]) for axis, values in spans.items()})
    from ..workloads.traces import Trace
    return Trace(model=model, axis_values=axis_values, seed=seed + 1)


def e5_codegen_strategies(device_name: str = "A10", model_name: str = "bert",
                          num_queries: int | None = None,
                          shape_counts: tuple = (1, 4, 16, 64),
                          seed: int = 0) -> dict:
    """Compile-once vs recompile-per-shape vs bucket-and-pad.

    Reports compile events and end-to-end totals (including compilation)
    as the number of distinct shapes in the trace grows.
    """
    device = device_named(device_name)
    num_queries = num_queries if num_queries is not None \
        else bench_queries(64)
    model = _bench_model(model_name)
    strategies = {
        "combined (BladeDISC)": lambda: DiscExecutor(model.graph, device),
        "recompile/shape (XLA-style)": lambda: make_baseline(
            "XLA", model.graph, device),
        "bucket+pad (TensorRT-style)": lambda: make_baseline(
            "TensorRT", model.graph, device),
    }
    rows = []
    for k in shape_counts:
        trace = _k_distinct_trace(model, num_queries, k, seed)
        inputs = trace.inputs()
        for label, factory in strategies.items():
            executor = factory()
            timeline = executor.run_trace(inputs)
            rows.append({
                "distinct_shapes": k,
                "strategy": label,
                "compile_events": timeline.compile_events,
                "compile_total_s": timeline.compile_us / 1e6,
                "steady_us_per_query": timeline.mean_steady_us,
                "total_us_per_query": timeline.mean_total_us,
            })
    return {"experiment": "codegen_strategies", "device": device_name,
            "model": model_name, "num_queries": num_queries, "rows": rows}


def format_codegen_strategies(result: dict) -> str:
    headers = ["#shapes", "strategy", "compiles", "compile total (s)",
               "steady us/query", "total us/query"]
    rows = [[r["distinct_shapes"], r["strategy"], r["compile_events"],
             r["compile_total_s"], r["steady_us_per_query"],
             r["total_us_per_query"]] for r in result["rows"]]
    return format_table(
        headers, rows,
        f"[{result['device']}] Codegen strategy comparison on "
        f"{result['model']} ({result['num_queries']} queries)")


# ---------------------------------------------------------------------------
# E6 — compilation overhead per model
# ---------------------------------------------------------------------------

def e6_compile_overhead(models: list | None = None) -> dict:
    """One-time compile cost and kernel counts for every zoo model."""
    model_names = models or list(BENCH_MODELS)
    rows = []
    for model_name in model_names:
        model = _bench_model(model_name)
        compiler = DiscCompiler(CompileOptions())
        start = time.perf_counter()
        executable = compiler.compile(model.graph)
        wall = time.perf_counter() - start
        report = executable.report
        # Post-compile static-analysis audit (outside the timed region):
        # the artifact of every zoo model must lint clean, and the bench
        # table records that it did.
        from ..lint import lint_executable
        lint = lint_executable(executable).summary()
        rows.append({
            "model": model_name,
            "nodes": report.num_nodes,
            "kernels": report.num_kernels,
            "pipeline_wall_s": wall,
            "simulated_compile_s": report.simulated_compile_us / 1e6,
            "analysis_ms": report.analysis_summary.get(
                "analysis_time_s", 0.0) * 1e3,
            "dim_facts": report.analysis_summary.get("dim_facts", 0),
            "product_facts": report.analysis_summary.get(
                "product_facts", 0),
            "lint": "clean" if not lint["diagnostics"]
                    else ",".join(lint["codes"]),
        })
    return {"experiment": "compile_overhead", "rows": rows}


def format_compile_overhead(result: dict) -> str:
    headers = ["model", "nodes", "kernels", "pipeline wall (s)",
               "simulated compile (s)", "analysis (ms)", "dim facts",
               "product facts", "lint"]
    rows = [[r["model"], r["nodes"], r["kernels"], r["pipeline_wall_s"],
             r["simulated_compile_s"], r["analysis_ms"], r["dim_facts"],
             r["product_facts"], r.get("lint", "clean")]
            for r in result["rows"]]
    return format_table(headers, rows,
                        "Compilation overhead per model (compile once, "
                        "serve every shape)")


# ---------------------------------------------------------------------------
# E7 — sensitivity to shape diversity
# ---------------------------------------------------------------------------

def e7_shape_diversity(device_name: str = "A10", model_name: str = "bert",
                       num_queries: int | None = None,
                       shape_counts: tuple = (1, 2, 4, 8, 16, 32),
                       systems: tuple = ("BladeDISC", "XLA", "TVM",
                                         "TensorRT", "TorchInductor"),
                       seed: int = 0) -> dict:
    """Amortised per-query latency (compile included) vs shape diversity."""
    device = device_named(device_name)
    num_queries = num_queries if num_queries is not None \
        else bench_queries(48)
    model = _bench_model(model_name)
    series: dict[str, list] = {system: [] for system in systems}
    for k in shape_counts:
        trace = _k_distinct_trace(model, num_queries, k, seed)
        inputs = trace.inputs()
        for system in systems:
            if system == "BladeDISC":
                executor = DiscExecutor(model.graph, device)
            else:
                executor = make_baseline(system, model.graph, device)
            timeline = executor.run_trace(inputs)
            series[system].append(timeline.mean_total_us)
    return {
        "experiment": "shape_diversity",
        "device": device_name,
        "model": model_name,
        "num_queries": num_queries,
        "shape_counts": list(shape_counts),
        "series": series,
    }


def format_shape_diversity(result: dict) -> str:
    headers = ["#shapes"] + list(result["series"])
    rows = []
    for i, k in enumerate(result["shape_counts"]):
        rows.append([k] + [result["series"][s][i]
                           for s in result["series"]])
    return format_table(
        headers, rows,
        f"[{result['device']}] Amortised us/query (compile included) vs "
        f"distinct shapes, {result['model']}, "
        f"{result['num_queries']} queries")


# ---------------------------------------------------------------------------
# E8 — kernel & memory-traffic reduction
# ---------------------------------------------------------------------------

def e8_kernel_reduction(device_name: str = "A10",
                        models: list | None = None,
                        seed: int = 0) -> dict:
    """Per model: kernels launched and bytes moved, eager vs BladeDISC."""
    device = device_named(device_name)
    model_names = models or list(BENCH_MODELS)
    rows = []
    rng = np.random.default_rng(seed)
    for model_name in model_names:
        model = _bench_model(model_name)
        inputs = model.sample_inputs(rng)
        eager = make_baseline("PyTorch", model.graph, device)
        disc = DiscExecutor(model.graph, device)
        __, eager_stats = eager.run(inputs)
        __, disc_stats = disc.run(inputs)
        rows.append({
            "model": model_name,
            "eager_kernels": eager_stats.kernels_launched,
            "disc_kernels": disc_stats.kernels_launched,
            "kernel_reduction": (eager_stats.kernels_launched
                                 / max(1, disc_stats.kernels_launched)),
            "eager_mbytes": eager_stats.bytes_total / 1e6,
            "disc_mbytes": disc_stats.bytes_total / 1e6,
            "bytes_reduction": (eager_stats.bytes_total
                                / max(1, disc_stats.bytes_total)),
        })
    return {"experiment": "kernel_reduction", "device": device_name,
            "rows": rows}


def format_kernel_reduction(result: dict) -> str:
    headers = ["model", "kernels eager", "kernels DISC", "reduction",
               "MB eager", "MB DISC", "traffic reduction"]
    rows = [[r["model"], r["eager_kernels"], r["disc_kernels"],
             r["kernel_reduction"], r["eager_mbytes"], r["disc_mbytes"],
             r["bytes_reduction"]] for r in result["rows"]]
    return format_table(headers, rows,
                        f"[{result['device']}] Kernel and memory-traffic "
                        f"reduction vs per-op execution")


# ---------------------------------------------------------------------------
# E9 — runtime schedule selection
# ---------------------------------------------------------------------------

def _softmax_micro():
    b = GraphBuilder("softmax_micro")
    rows = b.sym("rows", hint=1024)
    cols = b.sym("cols", hint=512)
    x = b.parameter("x", (rows, cols), f32)
    b.outputs(b.softmax(x, axis=-1))
    return b.graph


def _geomean(values) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return 1.0
    return float(np.exp(np.mean(np.log(values))))


def e9_schedule_selection(device_name: str = "A10", seed: int = 0,
                          models: list | None = None,
                          num_queries: int | None = None,
                          shape_counts: tuple = (1, 4, 16)) -> dict:
    """Schedule selection and autotuning, three measurements in one:

    - the original micro table — the heuristic selector vs each fixed
      generic schedule at three row-space extremes;
    - the autotuned zoo — per model, the budgeted search's winners vs
      the heuristic picks vs the adversarial worst case, on both the
      schedulable-kernel time (the quantity the tuner optimizes) and
      whole-model device time, with full search accounting;
    - an E7-style shape-diversity sweep — as distinct signatures grow,
      each pays its search once and replays cached winners, so the
      amortized tuned time stays below the heuristic line.
    """
    from ..obs.tracer import CapturingTracer
    from ..tuning import ScheduleTuner, TuningOptions, WorstCaseSelector

    device = device_named(device_name)
    graph = _softmax_micro()
    executable = DiscCompiler(CompileOptions()).compile(graph)
    shapes = [("many short rows", 16384, 64),
              ("balanced", 1024, 1024),
              ("few long rows", 8, 131072)]
    schedules = ["row_per_warp", "row_per_block", "two_pass"]
    rng = np.random.default_rng(seed)
    rows_out = []
    for label, rows, cols in shapes:
        x = rng.normal(size=(rows, cols)).astype(np.float32)
        record = {"shape": label, "rows": rows, "cols": cols}
        for schedule in schedules:
            engine = ExecutionEngine(executable, device, EngineOptions(
                fixed_schedule=schedule))
            __, stats = engine.run({"x": x})
            record[schedule] = stats.device_time_us
        engine = ExecutionEngine(executable, device, EngineOptions())
        __, stats = engine.run({"x": x})
        record["selected"] = stats.device_time_us
        record["best_fixed"] = min(record[s] for s in schedules)
        rows_out.append(record)

    # -- autotuned zoo ------------------------------------------------------
    model_names = models or list(BENCH_MODELS)
    num_queries = num_queries if num_queries is not None \
        else bench_queries(12)
    options = TuningOptions()
    tracer = CapturingTracer()
    worst_selector = WorstCaseSelector(device)
    zoo = []
    for model_name in model_names:
        model = _bench_model(model_name)
        exe = DiscCompiler(CompileOptions()).compile(model.graph)
        trace = make_trace(model, num_queries, "zipf", seed=seed)
        inputs = trace.inputs()[0]
        engine = ExecutionEngine(exe, device)
        signature = engine.host_program.signature(inputs)
        result = ScheduleTuner(device, options, tracer=tracer).tune(
            exe, signature)

        def model_time(selector):
            engine.prepare(inputs, signature, selector=selector,
                           overwrite=True)
            __, stats = engine.run(inputs)
            return stats.device_time_us

        heuristic_model = model_time(None)
        worst_model = model_time(worst_selector)
        tuned_model = model_time(result.selector())
        summary = result.summary()
        zoo.append({
            "model": model_name,
            "kernels": summary["kernels"],
            "improved": summary["improved"],
            "heuristic_kernel_us": summary["heuristic_time_us"],
            "tuned_kernel_us": summary["tuned_time_us"],
            "kernel_speedup": summary["speedup"],
            "heuristic_model_us": heuristic_model,
            "tuned_model_us": tuned_model,
            "worst_model_us": worst_model,
            "model_speedup": heuristic_model / tuned_model,
            "worst_penalty": worst_model / heuristic_model,
            "enumerated": summary["enumerated"],
            "pruned": sum(summary["pruned"].values()),
            "scored": summary["scored"],
            "tuning_spent_us": summary["spent_us"],
            "budget_us": summary["budget_us"],
            "budget_exhausted": summary["budget_exhausted"],
            "picks": summary["picks"],
        })
    autotune = {
        "budget_us": options.budget_us,
        "rows": zoo,
        "geomean_kernel_speedup": _geomean(
            [r["kernel_speedup"] for r in zoo]),
        "geomean_model_speedup": _geomean(
            [r["model_speedup"] for r in zoo]),
        "geomean_worst_penalty": _geomean(
            [r["worst_penalty"] for r in zoo]),
    }

    # -- shape-diversity sweep: search once per signature, replay after -----
    sweep_model = _bench_model("bert")
    sweep_exe = DiscCompiler(CompileOptions()).compile(sweep_model.graph)
    sweep_queries = num_queries * 2
    sweep = []
    for k in shape_counts:
        trace = _k_distinct_trace(sweep_model, sweep_queries, k, seed)
        heuristic_engine = ExecutionEngine(sweep_exe, device)
        tuned_engine = ExecutionEngine(sweep_exe, device)
        tuner = ScheduleTuner(device, options, tracer=tracer)
        tuned_signatures: set = set()
        tuning_spent = heuristic_us = tuned_us = 0.0
        queries = trace.inputs()
        for query in queries:
            signature = tuned_engine.host_program.signature(query)
            if signature not in tuned_signatures:
                tuned_signatures.add(signature)
                result = tuner.tune(sweep_exe, signature)
                tuning_spent += result.spent_us
                tuned_engine.prepare(query, signature,
                                     selector=result.selector(),
                                     overwrite=True)
            __, stats = heuristic_engine.run(query)
            heuristic_us += stats.device_time_us
            __, stats = tuned_engine.run(query)
            tuned_us += stats.device_time_us
        n = len(queries)
        sweep.append({
            "distinct_shapes": k,
            "queries": n,
            "signatures_tuned": len(tuned_signatures),
            "tuning_spent_us": tuning_spent,
            "heuristic_us_per_query": heuristic_us / n,
            "tuned_us_per_query": tuned_us / n,
            "amortized_us_per_query": (tuned_us + tuning_spent) / n,
            "speedup": heuristic_us / tuned_us,
        })

    span_breakdown = {
        name: info for name, info in tracer.spans.summary().items()
        if name.startswith("tuning:")}

    return {"experiment": "schedule_selection", "device": device_name,
            "schedules": schedules, "rows": rows_out,
            "autotune": autotune,
            "shape_sweep": {"model": "bert", "queries": sweep_queries,
                            "rows": sweep},
            "span_breakdown": span_breakdown}


def format_schedule_selection(result: dict) -> str:
    headers = (["shape", "rows", "cols"] + result["schedules"]
               + ["selected", "best fixed"])
    rows = [[r["shape"], r["rows"], r["cols"]]
            + [r[s] for s in result["schedules"]]
            + [r["selected"], r["best_fixed"]]
            for r in result["rows"]]
    text = format_table(
        headers, rows,
        f"[{result['device']}] Softmax kernel device time (us) per "
        f"schedule variant; runtime selection vs fixed")

    autotune = result.get("autotune")
    if autotune:
        headers = ["model", "kernels", "improved", "heur kern us",
                   "tuned kern us", "kern speedup", "heur model us",
                   "tuned model us", "worst model us", "model speedup",
                   "enum", "pruned", "scored", "search us", "exhausted"]
        rows = [[r["model"], r["kernels"], r["improved"],
                 r["heuristic_kernel_us"], r["tuned_kernel_us"],
                 r["kernel_speedup"], r["heuristic_model_us"],
                 r["tuned_model_us"], r["worst_model_us"],
                 r["model_speedup"], r["enumerated"], r["pruned"],
                 r["scored"], r["tuning_spent_us"],
                 "yes" if r["budget_exhausted"] else "no"]
                for r in autotune["rows"]]
        text += "\n\n" + format_table(
            headers, rows,
            f"[{result['device']}] Autotuned schedules vs heuristic "
            f"dispatch across the zoo (budget "
            f"{autotune['budget_us']:.0f}us/signature); geomean "
            f"speedup {autotune['geomean_kernel_speedup']:.3f}x "
            f"schedulable-kernel, "
            f"{autotune['geomean_model_speedup']:.3f}x whole-model, "
            f"worst-case penalty "
            f"{autotune['geomean_worst_penalty']:.3f}x")

    sweep = result.get("shape_sweep")
    if sweep:
        headers = ["#shapes", "queries", "tuned sigs", "search us",
                   "heur us/query", "tuned us/query",
                   "amortized us/query", "speedup"]
        rows = [[r["distinct_shapes"], r["queries"],
                 r["signatures_tuned"], r["tuning_spent_us"],
                 r["heuristic_us_per_query"], r["tuned_us_per_query"],
                 r["amortized_us_per_query"], r["speedup"]]
                for r in sweep["rows"]]
        text += "\n\n" + format_table(
            headers, rows,
            f"[{result['device']}] Shape-diversity sweep on "
            f"{sweep['model']}: each signature pays its search once, "
            f"then replays cached winners")

    breakdown = result.get("span_breakdown")
    if breakdown:
        headers = ["span", "count", "wall us"]
        rows = [[name, info["count"], info["total_us"]]
                for name, info in sorted(breakdown.items())]
        text += "\n\n" + format_table(
            headers, rows,
            "Tuning span breakdown (searches actually executed while "
            "building this table; wall-clock us)")
    return text


# ---------------------------------------------------------------------------
# E10 — host placement of shape computations + analysis overhead
# ---------------------------------------------------------------------------

def _length_feature_model(hidden: int = 256, num_shape_ops: int = 8):
    """A model whose graph computes features *from its own shape*.

    Mirrors length-aware ranking models: the sequence length is read with
    ``dim_size``, pushed through scalar arithmetic, and mixed into the
    activations.  Without host placement every scalar op is a kernel
    launch.
    """
    b = GraphBuilder("length_feature")
    batch = b.sym("batch", hint=8)
    seqlen = b.sym("seqlen", hint=64)
    x = b.parameter("x", (batch, seqlen, hidden), f32)
    length = b.dim_size(x, 1)
    for _ in range(num_shape_ops):
        length = b.mul(b.add(length, b.constant(
            np.asarray(1, dtype=np.int64))), b.constant(
            np.asarray(1, dtype=np.int64)))
    feat = b.cast(length, f32)
    feat = b.mul(feat, b.scalar(1e-3, f32))
    y = b.mul(x, b.broadcast_to(feat, x.shape))
    b.outputs(b.softmax(y, axis=-1))
    return b.graph


def e10_placement_overhead(device_name: str = "A10",
                           num_queries: int | None = None,
                           seed: int = 0) -> dict:
    """Host-placement benefit + symbolic-analysis compile overhead."""
    device = device_named(device_name)
    num_queries = num_queries if num_queries is not None \
        else bench_queries(20)
    graph = _length_feature_model()
    executable = DiscCompiler(CompileOptions()).compile(graph)
    rng = np.random.default_rng(seed)
    rows = []
    for enabled in (True, False):
        engine = ExecutionEngine(executable, device, EngineOptions(
            host_placement_enabled=enabled))
        timeline = Timeline()
        for _ in range(num_queries):
            seqlen = int(rng.integers(16, 128))
            x = rng.normal(size=(4, seqlen, 256)).astype(np.float32)
            __, stats = engine.run({"x": x})
            timeline.record(stats)
        rows.append({
            "host_placement": enabled,
            "mean_steady_us": timeline.mean_steady_us,
            "kernels_per_query": timeline.kernels / timeline.calls,
        })
    analysis_rows = e6_compile_overhead()["rows"]
    return {"experiment": "placement_overhead", "device": device_name,
            "placement_rows": rows, "analysis_rows": analysis_rows}


def format_placement_overhead(result: dict) -> str:
    headers = ["host placement", "latency (us)", "kernels/query"]
    rows = [[str(r["host_placement"]), r["mean_steady_us"],
             r["kernels_per_query"]] for r in result["placement_rows"]]
    part1 = format_table(
        headers, rows,
        f"[{result['device']}] Shape-computation placement "
        f"(length-feature model)")
    headers2 = ["model", "analysis (ms)", "pipeline wall (s)"]
    rows2 = [[r["model"], r["analysis_ms"], r["pipeline_wall_s"]]
             for r in result["analysis_rows"]]
    part2 = format_table(headers2, rows2,
                         "Symbolic analysis cost within compilation")
    return part1 + "\n\n" + part2


# ---------------------------------------------------------------------------
# E11 — intermediate-buffer planning (the pipeline's memory optimisation)
# ---------------------------------------------------------------------------

def e11_memory_planning(models: list | None = None, seed: int = 0,
                        shapes_per_model: int = 8) -> dict:
    """Naive vs liveness-reused intermediate memory, with and without
    fusion — plus the symbolic one-plan-per-class sweep.

    Fusion already eliminates most intermediates (they live inside fused
    kernels); buffer reuse then shares what remains.  The paper's pipeline
    applies both; this experiment separates their contributions.

    The *diversity* sweep prices what the class-wide symbolic plan costs
    under shape churn: for ``shapes_per_model`` seeded in-class shapes it
    compares the one frozen plan's peak against (a) no reuse at all and
    (b) a best-fit-decreasing planner that is allowed to re-plan for every
    concrete shape (``replan_peak_for_shape``).  The class plan is priced
    once and reused for every shape — the per-shape baseline pays a
    re-planning pass per signature.  The gate bounds the worst ratio of
    symbolic peak over per-shape peak.
    """
    from ..numerics.resolve import bind_inputs, resolve_all_dims
    from ..runtime.memory import replan_peak_for_shape

    model_names = models or list(BENCH_MODELS)
    rng = np.random.default_rng(seed)
    rows = []
    for model_name in model_names:
        model = _bench_model(model_name)
        inputs = model.sample_inputs(rng)
        for fused, label in ((False, "unfused"), (True, "fused")):
            config = FusionConfig() if fused else FusionConfig.none()
            exe = DiscCompiler(CompileOptions(fusion=config)).compile(
                model.graph)
            dims = bind_inputs(exe.params, inputs)
            resolve_all_dims(exe.graph.nodes, dims)
            stats = exe.buffer_plan.evaluate(dims)
            rows.append({
                "model": model_name,
                "fusion": label,
                "values": stats["values"],
                "naive_mb": stats["naive_bytes"] / 1e6,
                "peak_mb": stats["peak_bytes"] / 1e6,
                "reuse_factor": stats["reuse_factor"],
                "slots": stats["slots"],
            })

    diversity = []
    for model_name in model_names:
        model = _bench_model(model_name)
        exe = DiscCompiler(CompileOptions(
            assume_ranges=model.axes)).compile(model.graph)
        symbolic = exe.symbolic_plan
        shape_rng = np.random.default_rng(seed)
        naive_mb = symbolic_mb = replan_mb = 0.0
        worst_ratio = 0.0
        for _draw in range(shapes_per_model):
            values = {axis: int(shape_rng.integers(lo, hi + 1))
                      for axis, (lo, hi) in model.axes.items()}
            inputs = model.sample_inputs(shape_rng, values)
            dims = bind_inputs(exe.params, inputs)
            resolve_all_dims(exe.graph.nodes, dims)
            concrete = exe.buffer_plan.evaluate(dims)
            one_plan = symbolic.peak_at(dims)
            per_shape = replan_peak_for_shape(
                exe.buffer_plan.intervals, dims)["peak_bytes"]
            naive_mb += concrete["naive_bytes"] / 1e6
            symbolic_mb += one_plan / 1e6
            replan_mb += per_shape / 1e6
            if per_shape:
                worst_ratio = max(worst_ratio, one_plan / per_shape)
        diversity.append({
            "model": model_name,
            "shapes": shapes_per_model,
            "proven": bool(symbolic.proven),
            "class_peak_hi_mb": (symbolic.peak_hi_bytes() or 0) / 1e6,
            "naive_mb": naive_mb,
            "symbolic_peak_mb": symbolic_mb,
            "replan_peak_mb": replan_mb,
            "worst_ratio": worst_ratio,
        })
    return {"experiment": "memory_planning", "rows": rows,
            "diversity": diversity, "seed": seed}


def format_memory_planning(result: dict) -> str:
    headers = ["model", "fusion", "intermediates", "naive MB", "peak MB",
               "reuse", "slots"]
    rows = [[r["model"], r["fusion"], r["values"], r["naive_mb"],
             r["peak_mb"], r["reuse_factor"], r["slots"]]
            for r in result["rows"]]
    part1 = format_table(headers, rows,
                         "Intermediate-buffer planning: naive vs "
                         "liveness-reused peak memory")
    diversity = result.get("diversity")
    if not diversity:
        return part1
    headers2 = ["model", "shapes", "proven", "class hi MB", "naive MB",
                "one-plan MB", "per-shape MB", "worst ratio"]
    rows2 = [[d["model"], d["shapes"], d["proven"],
              d["class_peak_hi_mb"], d["naive_mb"],
              d["symbolic_peak_mb"], d["replan_peak_mb"],
              d["worst_ratio"]]
             for d in diversity]
    part2 = format_table(
        headers2, rows2,
        "Shape-diversity sweep: one symbolic class plan vs per-shape "
        "re-planning vs no reuse (summed peak over sampled shapes)")
    return part1 + "\n\n" + part2


# ---------------------------------------------------------------------------
# E12 — adaptive shape specialisation (speculative compilation extension)
# ---------------------------------------------------------------------------

def e12_adaptive_specialization(device_name: str = "A10",
                                model_name: str = "bert",
                                num_queries: int | None = None,
                                seed: int = 0) -> dict:
    """Generic-only vs adaptive specialisation vs per-shape JIT on a
    skewed trace.

    A Zipf trace concentrates traffic on a few hot shapes.  The adaptive
    engine should close (part of) the per-kernel efficiency gap to a
    shape-specialising JIT on the hot shapes, with zero request stalls,
    while the JIT pays a visible compile per signature.
    """
    from ..core.pipeline import DiscCompiler
    from ..runtime.engine import ExecutionEngine
    from ..runtime.specialize import AdaptiveEngine, SpecializationOptions

    device = device_named(device_name)
    num_queries = num_queries if num_queries is not None \
        else bench_queries(60)
    model = _bench_model(model_name)
    # Latency-oriented serving: batch pinned to 1, Zipf-skewed lengths —
    # the regime where a handful of short lengths dominate and
    # specialisation has something to chew on.
    trace = make_trace(model, num_queries, "zipf", seed=seed,
                       fixed_axes={"batch": 1})
    inputs = trace.inputs()

    executable = DiscCompiler(CompileOptions()).compile(model.graph)

    generic = ExecutionEngine(executable, device)
    generic_timeline = Timeline()
    for query in inputs:
        __, stats = generic.run(query)
        generic_timeline.record(stats)

    adaptive = AdaptiveEngine(executable, device,
                              SpecializationOptions(threshold=2))
    adaptive_timeline = adaptive.run_trace(inputs)

    xla = make_baseline("XLA", model.graph, device)
    xla_timeline = xla.run_trace(inputs)

    rows = [
        {"engine": "generic (compile once)",
         "mean_steady_us": generic_timeline.mean_steady_us,
         "stall_compiles": 0,
         "background_compiles": 0,
         "total_us_per_query": generic_timeline.mean_total_us},
        {"engine": "adaptive specialisation",
         "mean_steady_us": adaptive_timeline.mean_steady_us,
         "stall_compiles": adaptive_timeline.compile_events,
         "background_compiles": adaptive.specializations_built,
         "total_us_per_query": adaptive_timeline.mean_total_us},
        {"engine": "per-shape JIT (XLA-style)",
         "mean_steady_us": xla_timeline.mean_steady_us,
         "stall_compiles": xla_timeline.compile_events,
         "background_compiles": 0,
         "total_us_per_query": xla_timeline.mean_total_us},
    ]
    return {"experiment": "adaptive_specialization",
            "device": device_name, "model": model_name,
            "num_queries": num_queries,
            "distinct_shapes": trace.distinct_signatures(),
            "adaptive_stats": adaptive.stats(), "rows": rows}


def format_adaptive_specialization(result: dict) -> str:
    headers = ["engine", "steady us/query", "stall compiles",
               "bg specialisations", "total us/query"]
    rows = [[r["engine"], r["mean_steady_us"], r["stall_compiles"],
             r["background_compiles"], r["total_us_per_query"]]
            for r in result["rows"]]
    return format_table(
        headers, rows,
        f"[{result['device']}] Adaptive shape specialisation on "
        f"{result['model']} ({result['num_queries']} queries, "
        f"{result['distinct_shapes']} distinct shapes)")


# ---------------------------------------------------------------------------
# E14 — online serving tail latency (queueing view of the same story)
# ---------------------------------------------------------------------------

def e14_serving_tail_latency(device_name: str = "A10",
                             model_name: str = "bert",
                             num_queries: int | None = None,
                             arrival_rate_qps: float = 600.0,
                             systems: tuple = ("BladeDISC", "PyTorch",
                                               "ONNXRuntime", "XLA"),
                             seed: int = 0) -> dict:
    """Latency percentiles under Poisson load.

    Every system serves the same arrival process and trace.  Compile
    stalls (XLA) queue behind requests and blow up the tail; per-op
    overhead (PyTorch) raises the median and saturates earlier; the
    compile-once executable keeps both percentiles flat.
    """
    from .serving import simulate_serving

    device = device_named(device_name)
    num_queries = num_queries if num_queries is not None \
        else bench_queries(60)
    model = _bench_model(model_name)
    trace = make_trace(model, num_queries, "zipf", seed=seed,
                       fixed_axes={"batch": 1})
    inputs = trace.inputs()

    rows = []
    for system in systems:
        if system == "BladeDISC":
            executor = DiscExecutor(model.graph, device)
        else:
            executor = make_baseline(system, model.graph, device)
        # Deployments initialise/compile on the *first* shape before
        # taking traffic; per-shape and per-bucket systems still stall on
        # every shape they have not seen — which is the failure mode this
        # experiment exists to show.
        executor.run(inputs[0])
        result = simulate_serving(executor, inputs, arrival_rate_qps,
                                  seed=seed + 1)
        row = {"system": system}
        row.update(result.summary())
        rows.append(row)
    return {"experiment": "serving_tail_latency", "device": device_name,
            "model": model_name, "arrival_rate_qps": arrival_rate_qps,
            "num_queries": num_queries, "rows": rows}


def format_serving_tail_latency(result: dict) -> str:
    headers = ["system", "p50 us", "p95 us", "p99 us", "max us",
               "stalls", "util"]
    rows = [[r["system"], r["p50_us"], r["p95_us"], r["p99_us"],
             r["max_us"], r["compile_stalls"], r["utilization"]]
            for r in result["rows"]]
    return format_table(
        headers, rows,
        f"[{result['device']}] Serving latency percentiles on "
        f"{result['model']} at {result['arrival_rate_qps']:.0f} qps "
        f"Poisson ({result['num_queries']} queries)")


# ---------------------------------------------------------------------------
# E15 — host-program wall-clock: the compiled host side vs the interpreter
# ---------------------------------------------------------------------------

#: Host-bound zoo configurations for E15.  The kernel compute is
#: *identical* in both engines (bit-identical numerics), so the right
#: instrument for the host side is a regime where it is visible: small
#: hidden sizes and short sequences keep per-call numpy work around a
#: millisecond, instead of hundreds of milliseconds whose run-to-run
#: jitter would drown the overhead being measured.
E15_MODELS = {
    "bert": {"layers": 1, "hidden": 64, "heads": 2, "vocab": 128},
    "albert": {"layers": 2, "hidden": 64, "heads": 2, "vocab": 128},
    "gpt2": {"layers": 1, "hidden": 64, "heads": 2, "vocab": 128},
    "t5": {"layers": 1, "hidden": 64, "heads": 2, "vocab": 128},
    "s2t": {"layers": 1, "hidden": 64, "heads": 2, "vocab": 64},
    "crnn": {"channels": 16, "charset": 32},
    "fastspeech2": {"layers": 1, "hidden": 64, "heads": 2},
    "dien": {"items": 256, "embed_dim": 16},
}


def _shape_points(model, count: int = 3) -> list[dict]:
    """``count`` distinct axis-value points near each axis's low end."""
    return [{axis: min(lo + 2 * i, hi)
             for axis, (lo, hi) in model.axes.items()}
            for i in range(count)]


def _bare_replay_fn(executable, inputs_list: list):
    """The kernel floor: the instruction stream with zero bookkeeping.

    Runs the host program's already-frozen work — gather, execute,
    scatter, release — with no signature, no cache, no stats.  What an
    engine costs *above* this floor is its host overhead, the quantity
    E15 compares across engines (subtracting the floor keeps the numpy
    compute, which both engines share, out of the ratio).
    """
    program = executable.host_program
    prepared = []
    for inputs in inputs_list:
        dims = program.bind(inputs)
        arrays = [(slot, np.ascontiguousarray(inputs[name]))
                  for slot, name in program.param_slots]
        prepared.append((dims, arrays))

    def once() -> None:
        for dims, arrays in prepared:
            env = program.env_template.copy()
            for slot, array in arrays:
                env[slot] = array
            for instr in program.instructions:
                outputs = instr.kernel.execute(
                    [env[s] for s in instr.in_slots], dims)
                for slot, value in zip(instr.out_slots, outputs):
                    env[slot] = value
                for slot in instr.release:
                    env[slot] = None
    return once


def _time_runners(runners: dict, repeats: int, calls: int,
                  tracer: Tracer | None = None) -> dict:
    """Best-of-``repeats`` us/call per runner, measured *interleaved*.

    Every repeat times each runner once, back to back, so CPU-frequency
    and cache drift hits all of them alike — timing one runner's repeats
    in a block would systematically favour whichever ran last.  Each
    runner gets one untimed warmup call first.

    Timing goes through :class:`repro.obs.Tracer` spans (one
    ``bench:<name>`` span per timed repeat) rather than an ad-hoc
    perf_counter pair, so callers that pass a ``tracer`` get the full
    span record — the E15 span breakdown — for free.
    """
    tracer = tracer if tracer is not None else Tracer()
    for run in runners.values():
        run()
    best = {name: float("inf") for name in runners}
    for _ in range(repeats):
        for name, run in runners.items():
            with tracer.span(f"bench:{name}") as span:
                run()
            best[name] = min(best[name], span.duration_us)
    return {name: value / calls for name, value in best.items()}


def _geomean(values: list) -> float:
    return float(np.exp(np.mean(np.log(values)))) if values else 0.0


def e15_host_overhead(device_name: str = "A10",
                      models: list | None = None,
                      repeats: int | None = None,
                      shapes_per_model: int = 3,
                      seed: int = 0) -> dict:
    """Real host wall-clock: legacy interpreter vs compiled host program.

    Unlike E1-E14, which report *simulated* device microseconds, this
    measures actual Python wall time — the cost the host-program
    lowering and launch-plan cache exist to remove.  Per model the zoo
    replay cycles a few warm signatures through three runners:

    - the **kernel floor** (bare instruction stream, no bookkeeping),
    - the **legacy** per-call interpreter (re-binds, re-resolves,
      re-selects on every call),
    - the **host-program** engine serving every call from its frozen
      launch plan, plus its cold first-call (recording) cost.

    The headline is the *host overhead* ratio — (wall − floor) legacy
    over (wall − floor) warm — so the shared numpy compute does not
    dilute the comparison; the zoo runs at host-bound sizes
    (:data:`E15_MODELS`) for the same reason.  Outputs and stats are
    asserted bit-identical along the way.
    """
    from ..runtime.engine import LegacyExecutionEngine

    device = device_named(device_name)
    model_names = models or list(E15_MODELS)
    repeats = repeats if repeats is not None else bench_queries(5)
    rng = np.random.default_rng(seed)

    rows = []
    for model_name in model_names:
        model = build_model(model_name, **E15_MODELS.get(model_name, {}))
        executable = DiscCompiler(CompileOptions()).compile(model.graph)
        inputs_list = [model.make_inputs(rng, **values)
                       for values in _shape_points(model,
                                                   shapes_per_model)]

        tracer = Tracer()
        cold_engine = ExecutionEngine(executable, device)
        with tracer.span("bench:cold") as cold_span:
            for inputs in inputs_list:
                cold_engine.run(inputs)        # records every plan
        cold_us = cold_span.duration_us / len(inputs_list)

        legacy = LegacyExecutionEngine(executable, device)
        hosted = cold_engine                   # plans are now warm
        identical = True
        for inputs in inputs_list:
            expected_outs, expected = legacy.run(inputs)
            actual_outs, actual = hosted.run(inputs)
            identical = identical and actual == expected and all(
                np.array_equal(e, a) for e, a in
                zip(expected_outs, actual_outs))

        def cycle(engine, _inputs=inputs_list):
            def run() -> None:
                for inputs in _inputs:
                    engine.run(inputs)
            return run

        timed = _time_runners(
            {"floor": _bare_replay_fn(executable, inputs_list),
             "legacy": cycle(legacy), "warm": cycle(hosted)},
            repeats, len(inputs_list), tracer=tracer)
        floor_us = timed["floor"]
        legacy_us = timed["legacy"]
        warm_us = timed["warm"]

        # Overheads below ~1% of the compute floor are inside timer
        # noise; clamping to that resolution keeps an unmeasurably-small
        # warm overhead from exploding the ratio.
        resolution = 0.01 * floor_us
        legacy_overhead = max(legacy_us - floor_us, resolution)
        warm_overhead = max(warm_us - floor_us, resolution)
        rows.append({
            "model": model_name,
            "signatures": len(inputs_list),
            "cold_us": cold_us,
            "legacy_us": legacy_us,
            "warm_us": warm_us,
            "floor_us": floor_us,
            "legacy_overhead_us": legacy_overhead,
            "warm_overhead_us": warm_overhead,
            "overhead_speedup": legacy_overhead / warm_overhead,
            "wall_speedup": legacy_us / warm_us,
            "bit_identical": identical,
            # Full per-span accounting (bench:cold + every timed repeat)
            # for the JSON artifact; the table above ignores it.
            "span_breakdown": tracer.spans.summary(),
        })

    aggregate = {
        "overhead_speedup_geomean": _geomean(
            [r["overhead_speedup"] for r in rows]),
        "wall_speedup_geomean": _geomean(
            [r["wall_speedup"] for r in rows]),
        "bit_identical": all(r["bit_identical"] for r in rows),
    }
    return {"experiment": "host_overhead", "device": device_name,
            "repeats": repeats, "models": model_names,
            "rows": rows, "aggregate": aggregate}


def format_host_overhead(result: dict) -> str:
    headers = ["model", "sigs", "cold us", "legacy us", "warm us",
               "floor us", "overhead x", "wall x", "identical"]
    rows = [[r["model"], r["signatures"], r["cold_us"], r["legacy_us"],
             r["warm_us"], r["floor_us"], r["overhead_speedup"],
             r["wall_speedup"], "yes" if r["bit_identical"] else "NO"]
            for r in result["rows"]]
    agg = result["aggregate"]
    rows.append(["(geomean)", "", "", "", "", "",
                 agg["overhead_speedup_geomean"],
                 agg["wall_speedup_geomean"],
                 "yes" if agg["bit_identical"] else "NO"])
    return format_table(
        headers, rows,
        f"[{result['device']}] Host wall-clock per call (real, not "
        f"simulated): legacy interpreter vs compiled host program, "
        f"best of {result['repeats']} repeats; 'overhead x' excludes "
        f"the shared kernel floor")


# ---------------------------------------------------------------------------
# E16 — async serving: background compilation vs synchronous-compile stalls
# ---------------------------------------------------------------------------

def e16_async_serving(device_name: str = "A10",
                      model_name: str = "bert",
                      num_queries: int | None = None,
                      arrival_rate_qps: float = 600.0,
                      compile_workers: int = 2,
                      seed: int = 0) -> dict:
    """Tail latency through the *runtime* (repro.serving), not the E14
    offline simulation: the same shape-diverse Poisson trace is replayed
    through three configurations of one ``ServingEngine``:

    - **sync compile** — every cold signature stalls the server for its
      compile (the per-shape JIT failure mode the paper targets);
    - **async + fallback** — cold signatures answer immediately on the
      interpreter fallback while the background pool produces launch
      plans; warm signatures replay plans;
    - **async + injected faults** — same, with every compile failing
      transiently once and every 4th signature permanently (quarantine);
      robustness must cost tail latency, never correctness.

    All three share arrivals, inputs and the compiled executable; time
    is virtual, so the percentiles are exact properties of the schedule,
    not of the host machine.
    """
    from ..core.pipeline import compile_graph
    from ..fuzz.faults import CompileFaultInjector
    from ..serving import (ServingEngine, ServingOptions,
                           SignatureCompileCost, VirtualScheduler)

    device = device_named(device_name)
    num_queries = num_queries if num_queries is not None \
        else bench_queries(150)
    model = _bench_model(model_name)
    trace = make_trace(model, num_queries, "zipf", seed=seed,
                       fixed_axes={"batch": 1})
    inputs = trace.inputs()
    rng = np.random.default_rng(seed + 1)
    arrivals = np.cumsum(
        rng.exponential(1e6 / arrival_rate_qps, size=len(inputs)))
    executable = compile_graph(model.graph)
    # Per-signature specialization cost sized so the compile backlog
    # overlaps a meaningful fraction of the trace with 2 workers.
    compile_cost = SignatureCompileCost(fixed_us=40_000.0,
                                        per_kernel_us=800.0)

    modes = [
        ("sync compile", False, None),
        ("async + fallback", True, None),
        ("async + faults", True,
         CompileFaultInjector(transient_attempts=1, permanent_every=4)),
    ]
    rows = []
    for label, background, fault in modes:
        scheduler = VirtualScheduler(seed=seed + 2)
        # Virtual clock in, virtual clock out: span timestamps in the
        # breakdown are exact properties of the schedule too.
        tracer = Tracer(clock=scheduler.clock)
        serving = ServingEngine(
            device, scheduler,
            ServingOptions(queue_capacity=len(inputs),
                           compile_workers=compile_workers,
                           background_compile=background,
                           compile_cost=compile_cost),
            compile_fault=fault,
            tracer=tracer)
        serving.register_model(model_name, executable)
        tickets = []
        for at, query in zip(arrivals, inputs):
            scheduler.call_at(float(at), lambda q=query: tickets.append(
                serving.submit(model_name, q)))
        scheduler.run_until_idle()
        latencies = np.array([t.response.latency_us for t in tickets])
        errors = sum(1 for t in tickets
                     if t.response is None or not t.response.ok)
        counters = serving.counters
        rows.append({
            "mode": label,
            "p50_us": round(float(np.percentile(latencies, 50)), 1),
            "p95_us": round(float(np.percentile(latencies, 95)), 1),
            "p99_us": round(float(np.percentile(latencies, 99)), 1),
            "max_us": round(float(latencies.max()), 1),
            "fast": counters["fast_served"] + counters["sync_served"],
            "fallback": (counters["fallback_served"]
                         + counters["quarantine_served"]),
            "quarantined": len(serving.quarantined_signatures()),
            "compile_stalls": counters["sync_compile_stalls"],
            "errors": errors,
            "span_breakdown": tracer.spans.summary(),
        })
    by_mode = {r["mode"]: r for r in rows}
    return {"experiment": "async_serving", "device": device_name,
            "model": model_name, "arrival_rate_qps": arrival_rate_qps,
            "num_queries": num_queries,
            "distinct_signatures": trace.distinct_signatures(),
            "compile_workers": compile_workers,
            "compile_cost_us": compile_cost.duration_us(
                len(executable.kernels)),
            "rows": rows,
            "p99_improvement": round(
                by_mode["sync compile"]["p99_us"]
                / by_mode["async + fallback"]["p99_us"], 2)}


def format_async_serving(result: dict) -> str:
    headers = ["mode", "p50 us", "p95 us", "p99 us", "max us", "fast",
               "fallback", "quar", "stalls", "errors"]
    rows = [[r["mode"], r["p50_us"], r["p95_us"], r["p99_us"],
             r["max_us"], r["fast"], r["fallback"], r["quarantined"],
             r["compile_stalls"], r["errors"]]
            for r in result["rows"]]
    return format_table(
        headers, rows,
        f"[{result['device']}] Serving-runtime latency on "
        f"{result['model']} at {result['arrival_rate_qps']:.0f} qps "
        f"({result['num_queries']} queries, "
        f"{result['distinct_signatures']} signatures, "
        f"{result['compile_cost_us'] / 1e3:.0f} ms/compile, "
        f"{result['compile_workers']} workers); async p99 is "
        f"{result['p99_improvement']}x below sync")


# ---------------------------------------------------------------------------
# E17 — dynamic batching: the symbolic-shape bucketing throughput frontier
# ---------------------------------------------------------------------------

def e17_dynamic_batching(device_name: str = "A10",
                         model_name: str = "bert",
                         num_queries: int | None = None,
                         rates_qps: list | None = None,
                         max_batch_size: int = 8,
                         max_queue_delay_us: float = 2_000.0,
                         seed: int = 0) -> dict:
    """The throughput/latency frontier of constraint-store batching.

    One serving-realistic trace — single-sequence requests (model batch
    fixed at 1; concatenation is the *batcher's* job) with bimodal
    sequence lengths (chat vs document traffic) — is replayed through an
    unbatched ``ServingEngine`` and a ``BatchingServingEngine`` across a
    Poisson arrival-rate sweep.  Both engines are pre-warmed (every solo
    plan, plus every bucket's batched plans), so the frontier isolates
    *batching*, not compile transients: the unbatched engine saturates
    at ``1 / mean_service``; the batcher rides the device's occupancy
    ramp — a padded batch-8 launch costs far less than eight solo
    launches — and converts padding waste bounded by the pow2 bucket
    ceilings into headroom.

    Time is virtual, so every number is an exact property of the
    schedule; ``benchmarks/bench_e17_dynamic_batching.py`` gates on the
    2 000 qps column (>= 2x batched throughput at a p99 within 1.5x of
    the checked-in E16 async-serving baseline).
    """
    from ..core.pipeline import compile_graph
    from ..serving import (BatchingOptions, BatchingServingEngine,
                           ServingEngine, ServingOptions,
                           VirtualScheduler)

    device = device_named(device_name)
    num_queries = num_queries if num_queries is not None \
        else bench_queries(400)
    rates_qps = rates_qps or [600.0, 1_000.0, 2_000.0, 4_000.0, 10_000.0]
    # Serving-scale depth: 12 layers puts the solo saturation point
    # (~500 qps on A10) well below the 2 000 qps gate rate, so the
    # sweep contrasts service *capacity*, not arrival accounting.
    model = build_model(model_name, layers=12, hidden=256, heads=4) \
        if model_name == "bert" else _bench_model(model_name)
    trace = make_trace(model, num_queries, "bimodal", seed=seed,
                       fixed_axes={"batch": 1})
    inputs = trace.inputs()
    executable = compile_graph(model.graph)
    rng = np.random.default_rng(seed + 1)
    # One arrival skeleton scaled per rate: every rate sees the same
    # request order, only compressed in time.
    gaps = rng.exponential(1.0, size=len(inputs))
    # Plan capacity must hold every distinct signature, or the LRU
    # thrashes and the sweep measures eviction, not batching.
    base_options = dict(
        queue_capacity=64,
        engine=EngineOptions(plan_capacity=None))
    batching = BatchingOptions(max_batch_size=max_batch_size,
                               max_queue_delay_us=max_queue_delay_us)

    def build(batched: bool, scheduler, tracer):
        if batched:
            serving = BatchingServingEngine(
                device, scheduler, ServingOptions(**base_options),
                batching=batching, tracer=tracer)
        else:
            serving = ServingEngine(device, scheduler,
                                    ServingOptions(**base_options),
                                    tracer=tracer)
        entry = serving.register_model(model_name, executable)
        signatures = set()
        for query in inputs:
            signature = entry.engine.host_program.signature(query)
            if signature not in signatures:
                signatures.add(signature)
                entry.engine.prepare(query, signature)
        if batched:
            bucketer = serving.bucketer(model_name)
            for padded in {bucketer.padded_signature(s)
                           for s in signatures}:
                size = 2
                while size <= max_batch_size:
                    entry.engine.prepare_batched(padded, size)
                    size *= 2
        return serving

    rows = []
    for rate in rates_qps:
        arrivals = np.cumsum(gaps * (1e6 / rate))
        for batched in (False, True):
            scheduler = VirtualScheduler(seed=seed + 2)
            tracer = Tracer(clock=scheduler.clock,
                            metrics=MetricsRegistry())
            serving = build(batched, scheduler, tracer)
            tickets = []
            for at, query in zip(arrivals, inputs):
                scheduler.call_at(
                    float(at), lambda q=query: tickets.append(
                        serving.submit(model_name, q)))
            scheduler.run_until_idle()
            ok = [t.response for t in tickets
                  if t.response is not None and t.response.ok]
            latencies = np.array([r.latency_us for r in ok])
            makespan_us = max(r.finish_us for r in ok) - arrivals[0]
            counters = serving.counters
            size_hist = tracer.metrics.histogram("serving.batch.size")
            waste_hist = tracer.metrics.histogram(
                "serving.batch.padding_waste_frac")
            rows.append({
                "mode": "batched" if batched else "unbatched",
                "rate_qps": rate,
                "throughput_qps": round(len(ok) / makespan_us * 1e6, 1),
                "p50_us": round(float(np.percentile(latencies, 50)), 1),
                "p95_us": round(float(np.percentile(latencies, 95)), 1),
                "p99_us": round(float(np.percentile(latencies, 99)), 1),
                "ok": len(ok),
                "shed": counters["shed"],
                "batches": counters.get("batches_formed", 0),
                "batched_served": counters.get("batched_served", 0),
                "mean_batch": round(size_hist.mean, 2)
                if size_hist.count else None,
                "mean_padding_waste": round(waste_hist.mean, 3)
                if waste_hist.count else None,
            })

    def row(mode, rate):
        return next(r for r in rows
                    if r["mode"] == mode and r["rate_qps"] == rate)

    gate_rate = rates_qps[len(rates_qps) // 2]
    gain = round(row("batched", gate_rate)["throughput_qps"]
                 / row("unbatched", gate_rate)["throughput_qps"], 2)
    p99_ratio = round(row("batched", gate_rate)["p99_us"]
                      / row("unbatched", rates_qps[0])["p99_us"], 2)
    return {"experiment": "dynamic_batching", "device": device_name,
            "model": model_name, "num_queries": num_queries,
            "distinct_signatures": trace.distinct_signatures(),
            "max_batch_size": max_batch_size,
            "max_queue_delay_us": max_queue_delay_us,
            "rates_qps": list(rates_qps),
            "rows": rows,
            "gate_rate_qps": gate_rate,
            "throughput_gain_at_gate": gain,
            "p99_vs_unbatched_baseline": p99_ratio}


def format_dynamic_batching(result: dict) -> str:
    headers = ["mode", "rate qps", "tput qps", "p50 us", "p95 us",
               "p99 us", "ok", "shed", "batches", "mean sz", "waste"]
    rows = [[r["mode"], f"{r['rate_qps']:.0f}", r["throughput_qps"],
             r["p50_us"], r["p95_us"], r["p99_us"], r["ok"], r["shed"],
             r["batches"],
             "-" if r["mean_batch"] is None else r["mean_batch"],
             "-" if r["mean_padding_waste"] is None
             else r["mean_padding_waste"]]
            for r in result["rows"]]
    return format_table(
        headers, rows,
        f"[{result['device']}] Dynamic batching on {result['model']} "
        f"({result['num_queries']} queries, "
        f"{result['distinct_signatures']} signatures, batch<="
        f"{result['max_batch_size']}, flush "
        f"{result['max_queue_delay_us'] / 1e3:.1f} ms): "
        f"{result['throughput_gain_at_gate']}x throughput at "
        f"{result['gate_rate_qps']:.0f} qps, p99 "
        f"{result['p99_vs_unbatched_baseline']}x the low-rate "
        f"unbatched baseline")


# ---------------------------------------------------------------------------
# E18 — fleet routing: signature affinity vs signature-blind placement
# ---------------------------------------------------------------------------

def e18_fleet_routing(device_name: str = "A10",
                      model_name: str = "bert",
                      num_queries: int | None = None,
                      arrival_rate_qps: float = 2_000.0,
                      replica_counts: tuple = (1, 2, 4, 8),
                      plan_capacity: int = 64,
                      seed: int = 0) -> dict:
    """Tail latency of a multi-replica fleet under signature-affine vs
    signature-blind routing.

    One shape-diverse zipf trace (single-sequence requests, ~139
    distinct signatures at the default 600 queries) is replayed through
    a ``FleetEngine`` across a replica sweep, once per routing policy.
    Every replica runs a *bounded* launch-plan LRU (``plan_capacity``),
    pre-warmed to steady state (the cache holds whatever the capacity
    retains — the fleet has been serving this traffic forever).  The
    working set exceeds one replica's capacity, and that asymmetry is
    the whole experiment:

    - **affinity** — rendezvous hashing partitions the signature space,
      so each replica's share *fits* its plan cache: requests ride the
      compiled fast path and the per-replica queue stays stable;
    - **round_robin / least_outstanding** — signature-blind placement
      makes every replica see every signature: the LRU thrashes, evicted
      signatures recompile in the background while requests serve on the
      eager interpreter (~7x the fused service time), utilisation
      crosses 1 and the queue — hence p99 — blows up.

    Affinity spill is disabled (``affinity_spill_depth`` huge) so the
    sweep isolates pure placement; the spill valve is exercised by the
    unit suite.  Every OK response from every configuration is checked
    bit-identical to a direct ``ExecutionEngine`` run — routing may
    move work, never change it.  Time is virtual;
    ``benchmarks/bench_e18_fleet_routing.py`` gates on the 4-replica
    column (affinity p99 >= 1.5x below round-robin, zero mismatches).
    """
    from ..core.pipeline import compile_graph
    from ..serving import (FleetEngine, FleetOptions, ServingOptions,
                           SignatureCompileCost, VirtualScheduler)

    device = device_named(device_name)
    num_queries = num_queries if num_queries is not None \
        else bench_queries(600)
    gate_replicas = 4
    # Serving-scale depth (as E17): the fused fast path holds ~500
    # qps/replica, the eager fallback ~80 — the gate rate sits between
    # the two at 4 replicas, so placement decides stability.
    model = build_model(model_name, layers=12, hidden=256, heads=4) \
        if model_name == "bert" else _bench_model(model_name)
    trace = make_trace(model, num_queries, "zipf", seed=seed,
                       fixed_axes={"batch": 1})
    inputs = trace.inputs()
    executable = compile_graph(model.graph)
    reference = ExecutionEngine(executable, device)
    expected = [reference.run(query)[0] for query in inputs]
    rng = np.random.default_rng(seed + 1)
    # One arrival skeleton scaled once: every configuration sees the
    # same request order at the same instants.
    arrivals = np.cumsum(
        rng.exponential(1e6 / arrival_rate_qps, size=len(inputs)))
    # Cheap-ish recompiles: an evicted signature re-enters the plan
    # cache in a few ms, so round-robin measures steady-state thrash,
    # not a one-off compile storm.
    compile_cost = SignatureCompileCost(fixed_us=2_000.0,
                                        per_kernel_us=10.0)
    serving_options = ServingOptions(
        queue_capacity=len(inputs), compile_workers=2,
        compile_cost=compile_cost,
        engine=EngineOptions(plan_capacity=plan_capacity))

    def run_config(policy: str, replicas: int) -> dict:
        scheduler = VirtualScheduler(seed=seed + 2)
        fleet = FleetEngine(
            device, scheduler,
            FleetOptions(replicas=replicas, policy=policy,
                         affinity_spill_depth=10**9,
                         serving=serving_options))
        fleet.register_model(model_name, executable)
        seen: set = set()
        signatures = []
        for query in inputs:
            entry = fleet.replicas()[0].engine.model(model_name)
            signature = entry.engine.host_program.signature(query)
            if signature not in seen:
                seen.add(signature)
                signatures.append((signature, query))
        for replica in fleet.replicas():
            entry = replica.engine.model(model_name)
            for signature, query in signatures:
                entry.engine.prepare(query, signature)
        tickets = []
        for at, query in zip(arrivals, inputs):
            scheduler.call_at(float(at), lambda q=query: tickets.append(
                fleet.submit(model_name, q)))
        scheduler.run_until_idle()
        mismatches = errors = 0
        for ticket, want in zip(tickets, expected):
            response = ticket.response
            if response is None or not response.ok:
                errors += 1
            elif any(e.tobytes() != g.tobytes()
                     for e, g in zip(want, response.outputs)):
                mismatches += 1
        latencies = np.array([t.response.latency_us for t in tickets
                              if t.response is not None])
        paths = {"fast": 0, "fallback": 0}
        recompiles = 0
        for replica in fleet.replicas() + fleet.retired:
            counters = replica.engine.counters
            paths["fast"] += counters["fast_served"]
            paths["fallback"] += (counters["fallback_served"]
                                  + counters["quarantine_served"])
            recompiles += replica.engine.pool.stats.jobs_submitted
        return {
            "policy": policy, "replicas": replicas,
            "p50_us": round(float(np.percentile(latencies, 50)), 1),
            "p95_us": round(float(np.percentile(latencies, 95)), 1),
            "p99_us": round(float(np.percentile(latencies, 99)), 1),
            "max_us": round(float(latencies.max()), 1),
            "fast": paths["fast"], "fallback": paths["fallback"],
            "recompiles": recompiles,
            "affinity_hits": fleet.counters["affinity_hits"],
            "affinity_spills": fleet.counters["affinity_spills"],
            "errors": errors, "mismatches": mismatches,
        }

    rows = []
    for replicas in replica_counts:
        for policy in ("affinity", "round_robin"):
            rows.append(run_config(policy, replicas))
        if replicas == gate_replicas:
            rows.append(run_config("least_outstanding", replicas))

    def row(policy, replicas):
        return next(r for r in rows if r["policy"] == policy
                    and r["replicas"] == replicas)

    gate_replicas = gate_replicas if gate_replicas in replica_counts \
        else replica_counts[-1]
    aff = row("affinity", gate_replicas)
    blind = row("round_robin", gate_replicas)
    return {"experiment": "fleet_routing", "device": device_name,
            "model": model_name, "num_queries": num_queries,
            "arrival_rate_qps": arrival_rate_qps,
            "distinct_signatures": trace.distinct_signatures(),
            "plan_capacity": plan_capacity,
            "replica_counts": list(replica_counts),
            "rows": rows,
            "gate_replicas": gate_replicas,
            "p99_ratio_at_gate": round(blind["p99_us"] / aff["p99_us"],
                                       2),
            "mismatches": sum(r["mismatches"] for r in rows),
            "errors": sum(r["errors"] for r in rows)}


def format_fleet_routing(result: dict) -> str:
    headers = ["policy", "replicas", "p50 us", "p95 us", "p99 us",
               "fast", "fallback", "recompiles", "spills", "errors",
               "mismatch"]
    rows = [[r["policy"], r["replicas"], r["p50_us"], r["p95_us"],
             r["p99_us"], r["fast"], r["fallback"], r["recompiles"],
             r["affinity_spills"], r["errors"], r["mismatches"]]
            for r in result["rows"]]
    return format_table(
        headers, rows,
        f"[{result['device']}] Fleet routing on {result['model']} at "
        f"{result['arrival_rate_qps']:.0f} qps "
        f"({result['num_queries']} queries, "
        f"{result['distinct_signatures']} signatures, plan cache "
        f"{result['plan_capacity']}/replica): affinity p99 is "
        f"{result['p99_ratio_at_gate']}x below round-robin at "
        f"{result['gate_replicas']} replicas; "
        f"{result['mismatches']} output mismatches")
