"""Online-serving simulation: tail latency under load.

The end-to-end tables average per-query cost, but what a production
deployment feels is *queueing*: requests arrive on their own schedule, and
a compilation stall does not just slow one request — it blocks everything
behind it.  This module replays a trace through an executor as a Poisson
arrival process into a single-server FIFO queue and reports the latency
distribution, which is where per-shape JITs and autotuned engines fall
apart and a compile-once system stays flat.

Service times are the executor's simulated ``total_time_us`` (compile
stalls included), so a recompiling system serialises its JIT behind the
queue exactly as a real synchronous compile would.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

__all__ = ["ServingResult", "simulate_serving"]


@dataclass
class ServingResult:
    """Latency distribution of one simulated serving run."""

    latencies_us: list = field(default_factory=list)
    service_us: list = field(default_factory=list)
    duration_us: float = 0.0
    compile_stalls: int = 0
    #: real host wall-clock per call (only when measured; see
    #: ``simulate_serving(measure_host_wall=True)``).  Distinct from the
    #: simulated service times above: this is what the Python host side
    #: actually costs, the quantity E15 optimises.
    host_wall_us: list = field(default_factory=list)

    def percentile(self, q: float) -> float:
        if not self.latencies_us:
            return 0.0
        return float(np.percentile(self.latencies_us, q))

    @property
    def p50_us(self) -> float:
        return self.percentile(50)

    @property
    def p95_us(self) -> float:
        return self.percentile(95)

    @property
    def p99_us(self) -> float:
        return self.percentile(99)

    @property
    def max_us(self) -> float:
        return float(max(self.latencies_us)) if self.latencies_us else 0.0

    @property
    def throughput_qps(self) -> float:
        if self.duration_us <= 0:
            return 0.0
        return len(self.latencies_us) / (self.duration_us / 1e6)

    @property
    def utilization(self) -> float:
        if self.duration_us <= 0:
            return 0.0
        return min(1.0, sum(self.service_us) / self.duration_us)

    @property
    def mean_host_wall_us(self) -> float:
        if not self.host_wall_us:
            return 0.0
        return float(np.mean(self.host_wall_us))

    def summary(self) -> dict:
        result = {
            "queries": len(self.latencies_us),
            "p50_us": self.p50_us,
            "p95_us": self.p95_us,
            "p99_us": self.p99_us,
            "max_us": self.max_us,
            "throughput_qps": self.throughput_qps,
            "utilization": self.utilization,
            "compile_stalls": self.compile_stalls,
        }
        if self.host_wall_us:  # opt-in; absent keys keep E14 stable
            result["host_wall_us_per_query"] = self.mean_host_wall_us
        return result


def simulate_serving(executor, trace, arrival_rate_qps: float,
                     seed: int = 0,
                     measure_host_wall: bool = False) -> ServingResult:
    """Replay ``trace`` through ``executor`` under Poisson arrivals.

    ``executor`` is anything with ``run(inputs) -> (outputs, RunStats)``
    (a baseline, a DiscExecutor, or an AdaptiveEngine).  The executor's
    internal caches warm up across the run, exactly as in production.

    ``measure_host_wall`` additionally records the *real* wall-clock of
    each ``run`` call in ``ServingResult.host_wall_us`` — the host-side
    cost the launch-plan cache attacks (E15).  The simulated queueing
    numbers are unaffected.
    """
    if arrival_rate_qps <= 0:
        raise ValueError("arrival rate must be positive")
    rng = np.random.default_rng(seed)
    mean_gap_us = 1e6 / arrival_rate_qps

    result = ServingResult()
    arrival_us = 0.0
    server_free_us = 0.0
    for inputs in trace:
        arrival_us += float(rng.exponential(mean_gap_us))
        if measure_host_wall:
            begin = time.perf_counter()
            __, stats = executor.run(inputs)
            result.host_wall_us.append(
                (time.perf_counter() - begin) * 1e6)
        else:
            __, stats = executor.run(inputs)
        service = stats.total_time_us
        if stats.compile_time_us > 0:
            result.compile_stalls += 1
        start = max(arrival_us, server_free_us)
        finish = start + service
        server_free_us = finish
        result.latencies_us.append(finish - arrival_us)
        result.service_us.append(service)
        result.duration_us = finish
    return result
