"""Experiment result formatting and persistence.

Every benchmark both prints its paper-style table and writes it (text +
JSON) under ``benchmarks/results/`` so the artifacts survive pytest output
capture and can be diffed across runs.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Sequence

__all__ = ["format_table", "save_results", "results_dir", "print_and_save"]


def results_dir() -> Path:
    """Where experiment artifacts land (override with REPRO_RESULTS_DIR)."""
    root = os.environ.get("REPRO_RESULTS_DIR")
    if root:
        path = Path(root)
    else:
        path = Path(__file__).resolve().parents[3] / "benchmarks" / "results"
    path.mkdir(parents=True, exist_ok=True)
    return path


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Render an aligned plain-text table."""
    def text(cell) -> str:
        if isinstance(cell, float):
            if cell == 0:
                return "0"
            if abs(cell) >= 1000:
                return f"{cell:,.0f}"
            if abs(cell) >= 10:
                return f"{cell:.1f}"
            return f"{cell:.2f}"
        return str(cell)

    str_rows = [[text(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def save_results(name: str, payload: dict, text: str = "") -> Path:
    """Persist one experiment's results; returns the JSON path."""
    directory = results_dir()
    json_path = directory / f"{name}.json"
    with open(json_path, "w") as f:
        json.dump(payload, f, indent=2, default=str)
    if text:
        with open(directory / f"{name}.txt", "w") as f:
            f.write(text + "\n")
    return json_path


def print_and_save(name: str, payload: dict, text: str) -> None:
    print()
    print(text)
    save_results(name, payload, text)
