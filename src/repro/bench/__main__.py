"""Command-line experiment runner.

Run any paper experiment directly::

    python -m repro.bench e1 --device T4
    python -m repro.bench e3 e8
    python -m repro.bench all

Tables print to stdout and persist under ``benchmarks/results/``.
"""

from __future__ import annotations

import argparse
import sys

from . import (e1_end_to_end, e3_fusion_ablation, e4_shape_constraints,
               e5_codegen_strategies, e6_compile_overhead,
               e7_shape_diversity, e8_kernel_reduction,
               e9_schedule_selection, e10_placement_overhead,
               e11_memory_planning, e12_adaptive_specialization,
               e14_serving_tail_latency, e15_host_overhead,
               e16_async_serving, format_async_serving,
               e17_dynamic_batching, format_dynamic_batching,
               e18_fleet_routing, format_fleet_routing,
               format_adaptive_specialization,
               format_codegen_strategies, format_compile_overhead,
               format_end_to_end, format_fusion_ablation,
               format_host_overhead, format_kernel_reduction,
               format_memory_planning,
               format_placement_overhead, format_schedule_selection,
               format_serving_tail_latency, format_shape_constraints,
               format_shape_diversity, print_and_save)

#: experiment id -> (runner(device) -> payload, formatter, result name)
EXPERIMENTS = {
    "e1": (lambda device: e1_end_to_end(device),
           format_end_to_end, "end_to_end"),
    "e2": (lambda device: e1_end_to_end("T4" if device == "A10" else
                                        device),
           format_end_to_end, "end_to_end_t4"),
    "e3": (lambda device: e3_fusion_ablation(device),
           format_fusion_ablation, "fusion_ablation"),
    "e4": (lambda device: e4_shape_constraints(device),
           format_shape_constraints, "shape_constraints"),
    "e5": (lambda device: e5_codegen_strategies(device),
           format_codegen_strategies, "codegen_strategies"),
    "e6": (lambda device: e6_compile_overhead(),
           format_compile_overhead, "compile_overhead"),
    "e7": (lambda device: e7_shape_diversity(device),
           format_shape_diversity, "shape_diversity"),
    "e8": (lambda device: e8_kernel_reduction(device),
           format_kernel_reduction, "kernel_reduction"),
    "e9": (lambda device: e9_schedule_selection(device),
           format_schedule_selection, "schedule_selection"),
    "e10": (lambda device: e10_placement_overhead(device),
            format_placement_overhead, "placement_overhead"),
    "e11": (lambda device: e11_memory_planning(),
            format_memory_planning, "memory_planning"),
    "e12": (lambda device: e12_adaptive_specialization(device),
            format_adaptive_specialization, "adaptive_specialization"),
    "e13": (lambda device: e1_end_to_end(
                "CPU-x86", models=["bert", "gpt2", "s2t", "dien"],
                num_queries=12),
            format_end_to_end, "cpu_end_to_end"),
    "e14": (lambda device: e14_serving_tail_latency(device),
            format_serving_tail_latency, "serving_tail_latency"),
    "e15": (lambda device: e15_host_overhead(device),
            format_host_overhead, "host_overhead"),
    "e16": (lambda device: e16_async_serving(device),
            format_async_serving, "async_serving"),
    "e17": (lambda device: e17_dynamic_batching(device),
            format_dynamic_batching, "dynamic_batching"),
    "e18": (lambda device: e18_fleet_routing(device),
            format_fleet_routing, "fleet_routing"),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("experiments", nargs="+",
                        help=f"ids from {sorted(EXPERIMENTS)} or 'all'")
    parser.add_argument("--device", default="A10", choices=("A10", "T4"))
    args = parser.parse_args(argv)

    wanted = list(EXPERIMENTS) if "all" in args.experiments else \
        args.experiments
    unknown = [e for e in wanted if e not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment ids: {unknown}")
    for exp_id in wanted:
        runner, formatter, name = EXPERIMENTS[exp_id]
        result = runner(args.device)
        print_and_save(f"{exp_id}_{name}", result, formatter(result))
    return 0


if __name__ == "__main__":
    sys.exit(main())
