"""The seven baseline systems the paper compares against.

Each spec encodes that system's *documented* dynamic-shape strategy — the
source of its strength and of its failure mode:

- **PyTorch (eager)** — no compilation at all; per-op kernels issued from a
  Python dispatcher.  Excellent flexibility, dispatch-bound at inference.
- **TorchScript** — traced graph, cheaper dispatch, a pointwise-only fuser
  that cannot cross reshapes and leaves reductions unfused.
- **TVM** — static-shape auto-scheduled kernels of excellent quality;
  dynamic dims are bucketed to powers of two and padded, and every bucket
  pays a (very large) auto-tuning compile.
- **ONNX Runtime** — per-op optimized kernels plus pattern fusion (fused
  LayerNorm/GELU/Softmax via keeping composites intact); no general
  cross-op codegen.
- **XLA** — strong loop+input fusion and near-peak codegen, but compiles
  per *exact* shape signature: every unseen shape stalls on a full JIT.
- **Torch Inductor (dynamic shape)** — compiles once with symbolic guards;
  in the paper's evaluation window its dynamic-shape kernels were markedly
  less efficient than its static ones and reduction fusion was limited, so
  it lands between TorchScript and the static compilers.
- **TensorRT** — the best kernels of the lot (tactic-searched engines) and
  pattern fusion, but engines are built per optimisation-profile bucket
  with padding, and each engine build is expensive.

Efficiency/dispatch constants are calibrated so that per-model speedups on
the simulated A10/T4 land in the neighbourhood the paper's abstract reports
(see EXPERIMENTS.md); the *structure* (who pays which cost) is the model.
"""

from __future__ import annotations

from ..core.fusion.kinds import FusionConfig
from ..core.symbolic import ConstraintLevel
from ..device.profiles import DeviceProfile
from ..ir.graph import Graph
from .base import Executor
from .executor import BaselineSpec, SimulatedBaseline, pow2_bucket

__all__ = [
    "PYTORCH", "TORCHSCRIPT", "TVM", "ONNXRUNTIME", "XLA", "INDUCTOR",
    "TENSORRT", "ALL_BASELINES", "make_baseline", "baseline_names",
]


PYTORCH = BaselineSpec(
    name="PyTorch",
    lower_composites=False,
    constraint_level=ConstraintLevel.NONE,
    fusion=FusionConfig.none(),
    base_efficiency=0.90,
    dispatch_us=16.8,
    eager_dispatch=True,
    compile_grade=None,
    compile_policy="none",
    optimize_graph=False,
)

TORCHSCRIPT = BaselineSpec(
    name="TorchScript",
    lower_composites=False,
    constraint_level=ConstraintLevel.NONE,
    # The TorchScript fusers (TE/NVFuser) specialise on profiled static
    # shapes and bail out under shape dynamism, so no cross-op fusion
    # survives in the dynamic-shape setting the paper measures.
    fusion=FusionConfig.none(),
    base_efficiency=0.90,
    dispatch_us=15.4,
    eager_dispatch=True,
    compile_grade="session_init",
    compile_policy="once",
)

TVM = BaselineSpec(
    name="TVM",
    lower_composites=True,
    constraint_level=ConstraintLevel.FULL,
    fusion=FusionConfig.loop_and_input(),
    base_efficiency=0.98,
    # Relay VM dynamic dispatch: per-kernel host cost well above a static
    # graph runtime's.
    dispatch_us=5.5,
    eager_dispatch=False,
    compile_grade="autotune",
    compile_policy="per_bucket",
    bucket=pow2_bucket,
)

ONNXRUNTIME = BaselineSpec(
    name="ONNXRuntime",
    lower_composites=False,
    constraint_level=ConstraintLevel.NONE,
    fusion=FusionConfig(enable_loop=True, enable_input=False,
                        enable_stitch=False, loop_include_reshape=False),
    base_efficiency=0.83,
    dispatch_us=3.0,
    eager_dispatch=False,
    compile_grade="session_init",
    compile_policy="once",
)

XLA = BaselineSpec(
    name="XLA",
    lower_composites=True,
    constraint_level=ConstraintLevel.FULL,
    fusion=FusionConfig.loop_and_input(),
    base_efficiency=0.93,
    dispatch_us=0.9,
    eager_dispatch=False,
    compile_grade="jit",
    compile_policy="per_signature",
)

INDUCTOR = BaselineSpec(
    name="TorchInductor",
    lower_composites=True,
    constraint_level=ConstraintLevel.FULL,
    fusion=FusionConfig(enable_loop=True, enable_input=True,
                        enable_stitch=False),
    base_efficiency=0.24,
    dispatch_us=1.5,
    eager_dispatch=False,
    compile_grade="tracing_jit",
    compile_policy="once",
    guard_overhead_us=40.0,
)

TENSORRT = BaselineSpec(
    name="TensorRT",
    lower_composites=False,
    constraint_level=ConstraintLevel.NONE,
    fusion=FusionConfig(enable_loop=True, enable_input=False,
                        enable_stitch=False, loop_include_reshape=False),
    # Dynamic-profile engines carry shape-generic kernels that trail
    # TensorRT's fixed-shape tactics.
    base_efficiency=0.79,
    dispatch_us=2.0,
    eager_dispatch=False,
    compile_grade="engine_build",
    compile_policy="per_bucket",
    bucket=pow2_bucket,
)

ALL_BASELINES = (PYTORCH, TORCHSCRIPT, TVM, ONNXRUNTIME, XLA, INDUCTOR,
                 TENSORRT)

_BY_NAME = {spec.name: spec for spec in ALL_BASELINES}


def baseline_names() -> list[str]:
    """The seven baseline system names, in the paper's order."""
    return [spec.name for spec in ALL_BASELINES]


def make_baseline(name: str, graph: Graph,
                  device: DeviceProfile) -> Executor:
    """Instantiate the named baseline executor for one model/device."""
    try:
        spec = _BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown baseline {name!r}; "
                       f"available: {baseline_names()}") from None
    return SimulatedBaseline(graph, device, spec)
