"""BladeDISC as an :class:`Executor`, for side-by-side evaluation.

Wraps the real pipeline (``repro.core``) behind the same interface as the
simulated baselines: compiles exactly once (charging the simulated JIT cost
on the first call) and then serves every shape from the one shape-generic
executable.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..core.pipeline import CompileOptions, DiscCompiler
from ..device.counters import RunStats
from ..device.profiles import DeviceProfile
from ..ir.graph import Graph
from ..runtime.engine import EngineOptions, ExecutionEngine
from .base import Executor

__all__ = ["DiscExecutor"]


class DiscExecutor(Executor):
    """The system under evaluation: compile once, run any shape."""

    name = "BladeDISC"

    def __init__(self, graph: Graph, device: DeviceProfile,
                 compile_options: CompileOptions | None = None,
                 engine_options: EngineOptions | None = None) -> None:
        super().__init__(graph, device)
        self.executable = DiscCompiler(compile_options).compile(graph)
        self.engine = ExecutionEngine(self.executable, device,
                                      engine_options)
        self._compiled_charged = False

    def run(self, inputs: Mapping[str, np.ndarray]
            ) -> tuple[list, RunStats]:
        outputs, stats = self.engine.run(inputs)
        if not self._compiled_charged:
            self._compiled_charged = True
            stats.compile_time_us += \
                self.executable.report.simulated_compile_us
            stats.cache_hit = False
        return outputs, stats

    def cache_stats(self) -> dict:
        """Launch-plan cache statistics (host-side, not simulated).

        The executable itself is shape-generic — nothing recompiles per
        shape — but the engine freezes per-signature *launch plans*
        (dim bindings, schedule choices, evaluated costs); this exposes
        their hit/miss/eviction accounting for the serving benchmarks.
        """
        return self.engine.plans.stats()
