"""The uniform executor interface every system implements.

An executor owns one model graph on one device and serves inference calls.
``run`` executes *numerically* (all executors produce bit-comparable
results, cross-checked against the reference interpreter in tests) and
returns the simulated :class:`RunStats` for the call.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Mapping

import numpy as np

from ..device.counters import RunStats, Timeline
from ..device.profiles import DeviceProfile
from ..ir.graph import Graph

__all__ = ["Executor"]


class Executor(ABC):
    """One system (DISC or a baseline) serving one model on one device."""

    name: str = "executor"

    def __init__(self, graph: Graph, device: DeviceProfile) -> None:
        self.graph = graph
        self.device = device

    @abstractmethod
    def run(self, inputs: Mapping[str, np.ndarray]
            ) -> tuple[list, RunStats]:
        """Serve one inference call; returns (outputs, simulated stats)."""

    def run_trace(self, trace) -> Timeline:
        """Serve a whole trace of input dicts; returns aggregate stats."""
        timeline = Timeline()
        for inputs in trace:
            __, stats = self.run(inputs)
            timeline.record(stats)
        return timeline

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(name={self.name!r}, "
                f"device={self.device.name}, graph={self.graph.name!r})")
