"""The simulated-baseline executor framework.

Each baseline system is described declaratively by a :class:`BaselineSpec`:
how it prepares the graph (does it decompose composites?), what fusion it is
capable of, how efficient its kernels are, how it dispatches work, and —
decisive under dynamic shapes — its *compilation policy*: never, once,
per shape signature, or per padded bucket.

:class:`SimulatedBaseline` interprets a spec: it reuses the repo's own
fusion planner and kernel compiler (with the spec's restricted config) so
that numerics are identical across systems, while the spec's cost knobs
steer the simulated time.  Padding systems execute real shapes but are
*charged* for the padded ones, exactly like a real padded engine wastes
compute on filler rows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Mapping

import numpy as np

from ..core.codegen.kernels import compile_group
from ..core.fusion.kinds import FusionConfig, FusionKind
from ..core.fusion.planner import plan_fusion
from ..core.symbolic import ConstraintLevel, analyze_shapes
from ..device.compilecost import compile_cost_us
from ..device.cost import kernel_time_us
from ..device.counters import RunStats
from ..device.profiles import DeviceProfile
from ..ir.graph import Graph
from ..numerics.resolve import bind_inputs, resolve_all_dims
from ..passes import (AlgebraicSimplify, CommonSubexpressionElimination,
                      ConstantFold, DeadCodeElimination, LowerComposites,
                      PassManager, PlaceShapeComputations)
from ..runtime.caches import ShapeSpecializationCache, shape_signature
from .base import Executor

__all__ = ["BaselineSpec", "SimulatedBaseline", "pow2_bucket"]


def pow2_bucket(value: int) -> int:
    """Pad a dynamic extent up to the next power of two (min 1)."""
    if value <= 1:
        return 1
    return 1 << math.ceil(math.log2(value))


@dataclass
class BaselineSpec:
    """Declarative model of one baseline system's dynamic-shape strategy."""

    name: str
    #: decompose composites (compiler stacks) or keep them as fused
    #: library kernels (framework stacks / pattern fusers)?
    lower_composites: bool
    #: symbolic constraint strength available to its fuser.
    constraint_level: ConstraintLevel
    #: fusion capability.
    fusion: FusionConfig
    #: kernel quality relative to peak codegen.
    base_efficiency: float
    #: host cost to issue one kernel.
    dispatch_us: float
    #: eager frameworks serialise dispatch with execution per op; compiled
    #: runtimes pipeline dispatch.
    eager_dispatch: bool
    #: simulated compile-cost grade, or None if the system never compiles.
    compile_grade: str | None
    #: "none" | "once" | "per_signature" | "per_bucket"
    compile_policy: str = "none"
    #: per-call host overhead (e.g. Inductor guard evaluation).
    guard_overhead_us: float = 0.0
    #: dynamic-extent padding function for bucketed static systems.
    bucket: Callable[[int], int] | None = None
    #: run generic graph cleanups (simplify/CSE/DCE) during preparation.
    optimize_graph: bool = True
    extra: dict = field(default_factory=dict)


class SimulatedBaseline(Executor):
    """Executes a graph the way ``spec``'s system would."""

    def __init__(self, graph: Graph, device: DeviceProfile,
                 spec: BaselineSpec) -> None:
        super().__init__(graph, device)
        self.spec = spec
        self.name = spec.name
        self._prepare()

    # -- preparation (structural compilation, shared by all shapes) -------

    def _prepare(self) -> None:
        spec = self.spec
        working = self.graph.clone()
        passes = []
        if spec.lower_composites:
            passes.append(LowerComposites())
        if spec.optimize_graph:
            passes.extend([
                AlgebraicSimplify(), ConstantFold(),
                CommonSubexpressionElimination(), DeadCodeElimination(),
                PlaceShapeComputations(),
            ])
        if passes:
            PassManager(passes).run(working)
        analysis = analyze_shapes(working, spec.constraint_level)
        plan = plan_fusion(working, analysis, spec.fusion)
        users = working.users()
        self.working = working
        self.plan = plan
        self.kernels = [compile_group(group, users, working.outputs)
                        for group in plan.ordered_groups()]
        self.constants = {
            node: node.attrs["value"].astype(node.dtype.to_numpy(),
                                             copy=False)
            for node in working.nodes if node.op == "constant"}
        self.cache = ShapeSpecializationCache()
        self._compiled_once = False

    # -- serving ----------------------------------------------------------

    def run(self, inputs: Mapping[str, np.ndarray]
            ) -> tuple[list, RunStats]:
        spec = self.spec
        stats = RunStats(cache_hit=True)
        dims = bind_inputs(self.working.params, inputs)
        resolve_all_dims(self.working.nodes, dims)

        self._charge_compilation(inputs, self._cost_dims(dims), stats)
        stats.host_time_us += spec.guard_overhead_us

        env: dict[int, np.ndarray] = {}
        for param in self.working.params:
            env[param.id] = np.ascontiguousarray(
                inputs[param.attrs["param_name"]])
        for node, value in self.constants.items():
            env[node.id] = value

        for kernel in self.kernels:
            args = [env[n.id] for n in kernel.input_nodes]
            outputs = kernel.execute(args, dims)
            for node, value in zip(kernel.output_nodes, outputs):
                env[node.id] = value
            # dims may have grown (reshape-solved symbols); derive the
            # padded cost bindings from the *current* dims each time.
            self._charge_kernel(kernel, dims, self._cost_dims(dims), stats)

        if not spec.eager_dispatch:
            stats.host_time_us += spec.dispatch_us * stats.kernels_launched
        results = [env[out.id] for out in self.working.outputs]
        return results, stats

    # -- cost policy ---------------------------------------------------------

    def _cost_dims(self, dims: dict) -> dict:
        """The dim bindings the system is *charged* for (padded if bucketed)."""
        if self.spec.bucket is None:
            return dims
        return {name: self.spec.bucket(value)
                for name, value in dims.items()}

    def _charge_compilation(self, inputs: Mapping, cost_dims: dict,
                            stats: RunStats) -> None:
        spec = self.spec
        if spec.compile_policy == "none" or spec.compile_grade is None:
            return
        cost = compile_cost_us(len(self.working.nodes), spec.compile_grade)
        if spec.compile_policy == "once":
            if not self._compiled_once:
                self._compiled_once = True
                stats.compile_time_us += cost
                stats.cache_hit = False
            return
        if spec.compile_policy == "per_signature":
            key = shape_signature(inputs)
        elif spec.compile_policy == "per_bucket":
            key = tuple(sorted(cost_dims.items()))
        else:
            raise ValueError(
                f"unknown compile policy {spec.compile_policy!r}")
        __, hit = self.cache.get_or_build(key, lambda: True)
        if not hit:
            stats.compile_time_us += cost
            stats.cache_hit = False

    def _charge_kernel(self, kernel, dims: dict, cost_dims: dict,
                       stats: RunStats) -> None:
        spec = self.spec
        kind = kernel.kind
        if kind is FusionKind.METADATA:
            stats.host_time_us += 0.1 * len(kernel.members)
            return
        if kind is FusionKind.HOST:
            stats.host_time_us += (self.device.host_op_us
                                   * len(kernel.members))
            return
        schedule = kernel.select_schedule(cost_dims)
        cost = kernel.cost_spec(cost_dims, schedule, spec.base_efficiency)
        device_us = kernel_time_us(cost, self.device)
        if spec.eager_dispatch:
            # Python dispatcher issues ops one at a time; the device idles
            # whenever dispatch is slower than the kernel.
            stats.device_time_us += max(device_us, spec.dispatch_us)
        else:
            stats.device_time_us += device_us
        stats.kernels_launched += 1 + cost.extra_launches
        stats.bytes_read += cost.bytes_read
        stats.bytes_written += cost.bytes_written
        stats.flops += cost.flops
        if self.spec.bucket is not None:
            real = kernel.cost_spec(dims, schedule, spec.base_efficiency)
            stats.padding_waste_bytes += max(
                0, cost.bytes_total - real.bytes_total)
