"""Simulated baseline systems and the shared executor interface."""

from .base import Executor
from .disc import DiscExecutor
from .executor import BaselineSpec, SimulatedBaseline, pow2_bucket
from .systems import (ALL_BASELINES, INDUCTOR, ONNXRUNTIME, PYTORCH,
                      TENSORRT, TORCHSCRIPT, TVM, XLA, baseline_names,
                      make_baseline)

__all__ = [
    "Executor", "DiscExecutor",
    "BaselineSpec", "SimulatedBaseline", "pow2_bucket",
    "ALL_BASELINES", "INDUCTOR", "ONNXRUNTIME", "PYTORCH", "TENSORRT",
    "TORCHSCRIPT", "TVM", "XLA", "baseline_names", "make_baseline",
]
