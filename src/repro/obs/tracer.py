"""Hierarchical tracing: spans, the recording tracer, and the null path.

Everything the pipeline, runtime and serving layers want to tell an
observer flows through one seam — a *tracer* handed in at construction,
exactly the way :mod:`repro.serving` injects its clock:

- :class:`NullTracer` is the production default.  It is stateless and
  allocation-free; an instrumented hot loop pays one attribute lookup
  (``tracer.enabled``) and nothing else, which the overhead smoke test
  in ``tests/obs`` bounds below 2% on the host-bound E15 configs.
- :class:`Tracer` records :class:`Span` trees.  Time comes from an
  injected :class:`~repro.serving.clock.Clock` (real by default, the
  scheduler's :class:`~repro.serving.clock.VirtualClock` in tests), so
  traces taken under a :class:`~repro.serving.scheduler.VirtualScheduler`
  carry exact virtual timestamps and are deterministic run to run.
- :class:`CapturingTracer` is the test harness: the same recorder plus a
  queryable view (``tracer.spans.named("pass:*")``, ``.tree()``) the
  trace-based test suite and the fuzz oracle assert against.

Spans nest two ways.  ``with tracer.span(name, **attrs):`` uses a
thread-local context stack — right for straight-line code like the
compile pipeline and the engines.  Event-driven code (serving, the
compile pool), where one logical operation spans many scheduler
callbacks, uses the explicit ``begin``/``end`` pair and re-enters a
span's context with ``tracer.attach(span)``.

Span completion feeds the tracer's optional
:class:`~repro.obs.metrics.MetricsRegistry`; see :mod:`repro.obs.metrics`.
"""

from __future__ import annotations

import threading
from fnmatch import fnmatchcase
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # the runtime import is deferred to Tracer.__init__:
    # serving's package init pulls in the engine stack, which itself
    # imports repro.obs — importing it here would make the cycle
    # import-order dependent.
    from ..serving.clock import Clock

__all__ = ["Span", "SpanSet", "NullTracer", "NULL_TRACER", "Tracer",
           "CapturingTracer", "resolve_tracer", "ROOT"]

#: pass as ``parent`` to force a root span regardless of the context
#: stack — for work that outlives whatever span is current (the compile
#: pool's attempts outlive the request that triggered them).
ROOT = object()


class Span:
    """One named, timed, attributed interval (or instant) in a trace."""

    __slots__ = ("sid", "name", "kind", "start_us", "end_us", "attrs",
                 "parent", "children")

    def __init__(self, sid: int, name: str, kind: str, start_us: float,
                 attrs: dict, parent: "Span | None") -> None:
        self.sid = sid
        self.name = name
        #: "span" (an interval) or "event" (an instant; end == start).
        self.kind = kind
        self.start_us = start_us
        self.end_us: float | None = None if kind == "span" else start_us
        self.attrs = attrs
        self.parent = parent
        self.children: list[Span] = []

    # -- state -------------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self.end_us is not None

    @property
    def duration_us(self) -> float:
        return (self.end_us - self.start_us) if self.finished else 0.0

    def set(self, **attrs) -> "Span":
        """Merge attributes into the span; returns it for chaining."""
        self.attrs.update(attrs)
        return self

    @property
    def depth(self) -> int:
        depth, node = 0, self.parent
        while node is not None:
            depth, node = depth + 1, node.parent
        return depth

    # -- traversal / rendering ---------------------------------------------

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first, creation order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict:
        return {
            "sid": self.sid,
            "parent": self.parent.sid if self.parent else None,
            "name": self.name,
            "kind": self.kind,
            "start_us": self.start_us,
            "end_us": self.end_us,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:
        state = f"{self.duration_us:.1f}us" if self.finished else "open"
        return f"Span({self.name!r}, {state}, attrs={self.attrs})"


class SpanSet:
    """An ordered, filterable collection of spans (creation order)."""

    def __init__(self, spans: list) -> None:
        self._spans = list(spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self._spans)

    def __len__(self) -> int:
        return len(self._spans)

    def __bool__(self) -> bool:
        return bool(self._spans)

    def __getitem__(self, index):
        got = self._spans[index]
        return SpanSet(got) if isinstance(index, slice) else got

    # -- filters -----------------------------------------------------------

    def named(self, pattern: str) -> "SpanSet":
        """Spans whose name matches the glob ``pattern`` (fnmatch)."""
        return SpanSet([s for s in self._spans
                        if fnmatchcase(s.name, pattern)])

    def events(self) -> "SpanSet":
        return SpanSet([s for s in self._spans if s.kind == "event"])

    def intervals(self) -> "SpanSet":
        return SpanSet([s for s in self._spans if s.kind == "span"])

    def within(self, parent: Span) -> "SpanSet":
        """Spans strictly inside ``parent``'s subtree."""
        members = set(id(s) for s in parent.walk()) - {id(parent)}
        return SpanSet([s for s in self._spans if id(s) in members])

    def roots(self) -> "SpanSet":
        return SpanSet([s for s in self._spans if s.parent is None])

    # -- accessors ---------------------------------------------------------

    def names(self) -> list[str]:
        return [s.name for s in self._spans]

    def first(self, pattern: str | None = None) -> Span | None:
        candidates = self.named(pattern) if pattern else self
        return candidates._spans[0] if candidates._spans else None

    def one(self, pattern: str) -> Span:
        """The unique span matching ``pattern``; raises otherwise."""
        got = self.named(pattern)
        if len(got) != 1:
            raise AssertionError(
                f"expected exactly one span matching {pattern!r}, got "
                f"{got.names()}")
        return got[0]

    def attr_values(self, key: str) -> list:
        return [s.attrs[key] for s in self._spans if key in s.attrs]

    def summary(self) -> dict:
        """Per-name count and total duration (bench span breakdowns)."""
        out: dict[str, dict] = {}
        for span in self._spans:
            entry = out.setdefault(span.name,
                                   {"count": 0, "total_us": 0.0})
            entry["count"] += 1
            entry["total_us"] += span.duration_us
        return out

    def tree(self) -> str:
        """Human-readable indented rendering of the span forest."""
        from .export import render_tree
        return render_tree(self.roots())


class _NullContext:
    """Reusable no-op context manager; also a no-op span handle."""

    __slots__ = ()

    def __enter__(self) -> "_NullContext":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> "_NullContext":
        return self

    # a handful of Span-reads so off-path code never branches on type
    attrs: dict = {}
    name = ""
    duration_us = 0.0
    finished = True


_NULL_CONTEXT = _NullContext()


class NullTracer:
    """The off path: every operation is a no-op returning a singleton.

    Stateless by construction, so one instance (:data:`NULL_TRACER`) is
    shared by every uninstrumented component and hot loops can check
    ``tracer.enabled`` — one attribute lookup — and skip everything else.
    """

    enabled = False

    def span(self, name: str, **attrs) -> _NullContext:
        return _NULL_CONTEXT

    def attach(self, span) -> _NullContext:
        return _NULL_CONTEXT

    def begin(self, name: str, parent=None, **attrs) -> _NullContext:
        return _NULL_CONTEXT

    def end(self, span, **attrs) -> None:
        return None

    def event(self, name: str, parent=None, **attrs) -> None:
        return None

    def now_us(self) -> float:
        return 0.0


#: the shared default tracer; ``tracer or NULL_TRACER`` is the idiom.
NULL_TRACER = NullTracer()


def resolve_tracer(tracer) -> "Tracer | NullTracer":
    """``None`` -> the shared :data:`NULL_TRACER`; else pass-through."""
    return tracer if tracer is not None else NULL_TRACER


class _SpanContext:
    """Context manager backing ``Tracer.span`` and ``Tracer.attach``."""

    __slots__ = ("_tracer", "_span", "_owns")

    def __init__(self, tracer: "Tracer", span: Span, owns: bool) -> None:
        self._tracer = tracer
        self._span = span
        self._owns = owns

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._pop(self._span)
        if self._owns:
            if exc_type is not None:
                self._span.attrs.setdefault("error", exc_type.__name__)
            self._tracer.end(self._span)
        return False


class Tracer:
    """Records hierarchical spans against an injected clock.

    Thread-safe: the context stack is thread-local (each thread builds
    its own subtree) while span storage and id assignment share one
    lock.  ``metrics`` is an optional
    :class:`~repro.obs.metrics.MetricsRegistry` fed on span completion.
    """

    enabled = True

    def __init__(self, clock: "Clock | None" = None, metrics=None) -> None:
        if clock is None:
            from ..serving.clock import SystemClock
            clock = SystemClock()
        self.clock = clock
        self.metrics = metrics
        self._lock = threading.Lock()
        self._local = threading.local()
        self._next_sid = 0
        #: every span and event, in creation order (the deterministic
        #: order queries and exporters use).
        self._all: list[Span] = []

    # -- clock -------------------------------------------------------------

    def now_us(self) -> float:
        return self.clock.now_us()

    # -- context stack (thread-local) ---------------------------------------

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()

    def current(self) -> Span | None:
        """The innermost open span on this thread's context stack."""
        stack = self._stack()
        return stack[-1] if stack else None

    # -- recording ---------------------------------------------------------

    def _make(self, name: str, kind: str, parent,
              attrs: dict) -> Span:
        if parent is ROOT:
            parent = None
        elif parent is None:
            parent = self.current()
        with self._lock:
            sid = self._next_sid
            self._next_sid += 1
            span = Span(sid, name, kind, self.now_us(), attrs, parent)
            if parent is not None:
                parent.children.append(span)
            self._all.append(span)
        return span

    def begin(self, name: str, parent: Span | None = None,
              **attrs) -> Span:
        """Open a span explicitly (event-driven code closes it later).

        ``parent`` overrides the context stack; with None the span nests
        under the current stack top (or becomes a root).
        """
        return self._make(name, "span", parent, attrs)

    def end(self, span: Span | None, **attrs) -> None:
        """Close an explicitly-begun span; merges final attributes."""
        if span is None or not isinstance(span, Span):
            return  # a NullTracer handle or an untracked request
        if attrs:
            span.attrs.update(attrs)
        if span.end_us is None:
            span.end_us = self.now_us()
            if self.metrics is not None:
                self.metrics.record_span(span)

    def event(self, name: str, parent: Span | None = None,
              **attrs) -> Span:
        """Record an instant (cache hit, route decision, quarantine)."""
        span = self._make(name, "event", parent, attrs)
        if self.metrics is not None:
            self.metrics.record_span(span)
        return span

    def span(self, name: str, **attrs) -> _SpanContext:
        """``with tracer.span("stage:fusion") as s:`` — stack-nested."""
        return _SpanContext(self, self.begin(name, **attrs), owns=True)

    def attach(self, span: Span | None) -> _SpanContext:
        """Re-enter an open span's context without owning its lifetime.

        Serving uses this to nest engine/fallback work under the request
        span from inside scheduler callbacks.  ``attach(None)`` is a
        harmless no-op context.
        """
        if span is None or not isinstance(span, Span):
            return _NULL_CONTEXT
        return _SpanContext(self, span, owns=False)

    # -- views -------------------------------------------------------------

    @property
    def spans(self) -> SpanSet:
        """Every recorded span/event, creation order, as a query set."""
        with self._lock:
            return SpanSet(self._all)

    def roots(self) -> SpanSet:
        return self.spans.roots()

    def reset(self) -> None:
        with self._lock:
            self._all = []
            self._next_sid = 0
        self._local = threading.local()


class CapturingTracer(Tracer):
    """The in-memory test harness tracer.

    Identical recording semantics to :class:`Tracer`; the subclass exists
    as the named seam tests and the fuzzer reach for, and adds the
    convenience pass-throughs the suites lean on.  Under a
    :class:`~repro.serving.scheduler.VirtualScheduler` (pass
    ``clock=scheduler.clock``) span ordering and timestamps are exact and
    deterministic.
    """

    def named(self, pattern: str) -> SpanSet:
        return self.spans.named(pattern)

    def tree(self) -> str:
        return self.spans.tree()

    def sequence(self) -> list[str]:
        """Creation-order span/event names — the exact-sequence oracle."""
        return self.spans.names()
