"""CLI: trace a zoo model or a corpus case and write export artifacts.

``python -m repro.obs --model bert --export chrome`` compiles the model
under a :class:`CapturingTracer`, runs it twice (one record, one replay),
and writes a Perfetto-loadable Chrome trace — plus, on request, the text
tree, the JSONL span log and the metrics snapshot.  ``--case`` replays a
fuzz-corpus case instead; ``--serving`` routes the calls through the
serving runtime on a virtual scheduler so the trace carries the request
lifecycle.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from .export import write_artifacts
from .metrics import MetricsRegistry
from .tracer import CapturingTracer

#: small model configs — the compile and the trace stay quick.
_MODEL_OVERRIDES = {
    "bert": {"layers": 1, "hidden": 64, "heads": 2, "vocab": 128},
    "albert": {"layers": 2, "hidden": 64, "heads": 2, "vocab": 128},
    "gpt2": {"layers": 1, "hidden": 64, "heads": 2, "vocab": 128},
    "t5": {"layers": 1, "hidden": 64, "heads": 2, "vocab": 128},
    "s2t": {"layers": 1, "hidden": 64, "heads": 2, "vocab": 64},
    "crnn": {"channels": 16, "charset": 32},
    "fastspeech2": {"layers": 1, "hidden": 64, "heads": 2},
    "dien": {"items": 256, "embed_dim": 16},
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Trace one compile + run and export the spans "
                    "(Chrome trace for Perfetto, text tree, JSONL).")
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--model",
                        choices=sorted(_MODEL_OVERRIDES),
                        help="zoo model to compile and run")
    source.add_argument("--case",
                        help="fuzz-corpus case JSON to replay instead")
    parser.add_argument("--device", default="A10",
                        help="device profile (default A10)")
    parser.add_argument("--calls", type=int, default=2,
                        help="engine calls to trace (default 2: one "
                             "record, one replay)")
    parser.add_argument("--seed", type=int, default=0,
                        help="input-synthesis seed (default 0)")
    parser.add_argument("--export", default="chrome",
                        help="comma list of chrome,tree,jsonl "
                             "(default chrome)")
    parser.add_argument("--out", default="obs-artifacts",
                        help="output directory (default obs-artifacts)")
    parser.add_argument("--serving", action="store_true",
                        help="route the calls through the serving "
                             "runtime on a virtual scheduler")
    return parser


def _load_subject(args) -> tuple:
    """Resolve (name, graph, inputs) from --model or --case."""
    if args.model is not None:
        from ..models import build_model
        model = build_model(args.model, **_MODEL_OVERRIDES[args.model])
        rng = np.random.default_rng(args.seed)
        return args.model, model.graph, model.sample_inputs(rng)
    from ..fuzz.corpus import load_case
    from ..fuzz.oracle import make_inputs
    graph, bindings, _meta = load_case(args.case)
    return graph.name, graph, make_inputs(graph, bindings, args.seed)


def _run_direct(tracer, graph, inputs, device, calls: int) -> dict:
    from ..core.pipeline import CompileOptions, compile_graph
    from ..runtime.engine import ExecutionEngine

    executable = compile_graph(graph, CompileOptions(tracer=tracer))
    engine = ExecutionEngine(executable, device, tracer=tracer)
    stats = None
    for _ in range(calls):
        _outputs, stats = engine.run(inputs)
    return {"plan_cache": engine.plans.stats(),
            "last_stats": None if stats is None else {
                "total_time_us": stats.total_time_us,
                "kernels_launched": stats.kernels_launched,
                "cache_hit": stats.cache_hit,
            }}


def _run_serving(tracer, graph, inputs, device, calls: int) -> dict:
    from ..serving import ServingEngine, ServingOptions, VirtualScheduler

    scheduler = VirtualScheduler(seed=0)
    tracer.clock = scheduler.clock
    serving = ServingEngine(device, scheduler, ServingOptions(),
                            tracer=tracer)
    serving.register_model(graph.name, graph)
    for _ in range(calls):
        serving.submit(graph.name, inputs)
        scheduler.run_until_idle()
    return serving.stats()


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    from ..device.profiles import device_named
    device = device_named(args.device)

    name, graph, inputs = _load_subject(args)
    metrics = MetricsRegistry()
    tracer = CapturingTracer(metrics=metrics)
    if args.serving:
        summary = _run_serving(tracer, graph, inputs, device, args.calls)
    else:
        summary = _run_direct(tracer, graph, inputs, device, args.calls)

    formats = tuple(f.strip() for f in args.export.split(",") if f.strip())
    unknown = set(formats) - {"chrome", "tree", "jsonl"}
    if unknown:
        print(f"unknown export format(s): {sorted(unknown)}",
              file=sys.stderr)
        return 2
    written = write_artifacts(tracer, args.out, formats=formats,
                              metrics=metrics, prefix=f"{name}")
    spans = tracer.spans
    print(f"traced {name}: {len(spans.intervals())} spans, "
          f"{len(spans.events())} events")
    for fmt, path in written.items():
        print(f"  {fmt}: {path}")
    print(json.dumps(summary, indent=2, sort_keys=True, default=str))
    return 0


if __name__ == "__main__":
    sys.exit(main())
