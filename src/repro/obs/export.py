"""Trace exporters: Chrome ``trace_event`` JSON, text tree, JSONL.

Three renderings of the same span forest:

- :func:`to_chrome_trace` — the Chrome/Perfetto ``trace_event`` format
  (open ``ui.perfetto.dev`` and drop the file in).  Interval spans become
  complete (``"ph": "X"``) events, instants become ``"ph": "i"``;
  attributes ride in ``args``.
- :func:`render_tree` — a human indentation tree for terminals and test
  failure messages.
- :func:`to_jsonl` — one JSON object per span (creation order) with
  explicit parent ids; the archival/scripting format, loss-free and
  greppable.

:func:`write_artifacts` is the one-call writer the CLI and benches use.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["to_chrome_trace", "render_tree", "to_jsonl",
           "write_artifacts"]


def _json_safe(value):
    """Attribute values as JSON scalars (repr anything exotic)."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def _safe_attrs(attrs: dict) -> dict:
    return {str(k): _json_safe(v) for k, v in attrs.items()}


def to_chrome_trace(spans, process_name: str = "repro") -> dict:
    """Render a span iterable as a Chrome ``trace_event`` payload."""
    events = [{
        "name": "process_name", "ph": "M", "pid": 1, "tid": 1,
        "args": {"name": process_name},
    }]
    for span in spans:
        if span.kind == "event":
            events.append({
                "name": span.name, "ph": "i", "s": "t",
                "ts": span.start_us, "pid": 1, "tid": 1,
                "args": _safe_attrs(span.attrs),
            })
            continue
        end_us = span.end_us if span.end_us is not None else span.start_us
        events.append({
            "name": span.name, "ph": "X",
            "ts": span.start_us, "dur": max(0.0, end_us - span.start_us),
            "pid": 1, "tid": 1,
            "args": _safe_attrs(span.attrs),
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def render_tree(roots) -> str:
    """Indented text rendering of a span forest."""
    lines: list[str] = []

    def render(span, indent: int) -> None:
        pad = "  " * indent
        if span.kind == "event":
            head = f"{pad}* {span.name} @{span.start_us:.1f}us"
        else:
            state = (f"{span.duration_us:.1f}us" if span.finished
                     else "OPEN")
            head = f"{pad}{span.name} [{state}]"
        if span.attrs:
            rendered = ", ".join(f"{k}={_json_safe(v)}"
                                 for k, v in span.attrs.items())
            head += f" {{{rendered}}}"
        lines.append(head)
        for child in span.children:
            render(child, indent + 1)

    for root in roots:
        render(root, 0)
    return "\n".join(lines)


def to_jsonl(spans) -> str:
    """One JSON object per span, creation order, newline-separated."""
    lines = []
    for span in spans:
        payload = span.to_dict()
        payload["attrs"] = _safe_attrs(payload["attrs"])
        lines.append(json.dumps(payload, sort_keys=True))
    return "\n".join(lines)


def write_artifacts(tracer, out_dir, formats=("chrome", "tree", "jsonl"),
                    metrics=None, prefix: str = "trace") -> dict:
    """Write the requested export formats; returns {format: path}.

    ``metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry`) adds a
    ``<prefix>_metrics.json`` snapshot when given.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    spans = tracer.spans
    written: dict[str, str] = {}
    if "chrome" in formats:
        path = out_dir / f"{prefix}_chrome.json"
        with open(path, "w") as f:
            json.dump(to_chrome_trace(spans), f, indent=1, sort_keys=True)
        written["chrome"] = str(path)
    if "tree" in formats:
        path = out_dir / f"{prefix}_tree.txt"
        path.write_text(render_tree(spans.roots()) + "\n")
        written["tree"] = str(path)
    if "jsonl" in formats:
        path = out_dir / f"{prefix}_spans.jsonl"
        path.write_text(to_jsonl(spans) + "\n")
        written["jsonl"] = str(path)
    if metrics is not None:
        path = out_dir / f"{prefix}_metrics.json"
        with open(path, "w") as f:
            json.dump(metrics.snapshot(), f, indent=1, sort_keys=True)
        written["metrics"] = str(path)
    return written
