"""Observability: hierarchical tracing, metrics, exporters, invariants.

The package is one seam with three faces:

- **Recording** (:mod:`~repro.obs.tracer`): :class:`Tracer` records span
  trees against an injected clock; :class:`NullTracer` is the
  zero-overhead off path every component defaults to;
  :class:`CapturingTracer` is the queryable test harness.
- **Aggregation** (:mod:`~repro.obs.metrics`): a
  :class:`MetricsRegistry` of counters, gauges, and exact-quantile
  histograms, fed by span completion.
- **Export** (:mod:`~repro.obs.export`): Chrome ``trace_event`` JSON for
  Perfetto, a text tree, and JSONL span logs; ``python -m repro.obs``
  drives them from the command line.

:mod:`~repro.obs.invariants` holds the structural checks (balanced
spans, parent containment, kernel accounting) the fuzzer's ``--obs``
oracle and the trace-based tests share.
"""

from .export import render_tree, to_chrome_trace, to_jsonl, write_artifacts
from .invariants import (check_balanced, check_containment,
                         check_kernel_accounting, check_pass_coverage,
                         trace_failures)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .tracer import (NULL_TRACER, ROOT, CapturingTracer, NullTracer,
                     Span, SpanSet, Tracer, resolve_tracer)

__all__ = [
    "Span", "SpanSet", "Tracer", "CapturingTracer", "NullTracer",
    "NULL_TRACER", "resolve_tracer", "ROOT",
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "to_chrome_trace", "render_tree", "to_jsonl", "write_artifacts",
    "trace_failures", "check_balanced", "check_containment",
    "check_pass_coverage", "check_kernel_accounting",
]
