"""Trace invariants: what every well-formed trace must satisfy.

The fuzzer's third oracle (``python -m repro.fuzz --obs``) and the
trace-based test suite share these checks:

- **balanced** — every interval span was closed (no leaked ``begin``);
- **containment** — no span starts before or outlives its parent;
- **pass coverage** — each compile span contains every registered
  pipeline pass exactly once, in registration order;
- **kernel accounting** — within an ``engine:record`` span, the summed
  ``launches`` attributes of the ``kernel:*`` child spans equal the
  span's ``kernels_launched`` attribute (which the engine stamps from
  the returned :class:`~repro.device.counters.RunStats`).

Each check returns human-readable failure strings instead of raising, so
the fuzz oracle can collect all of them as coded failures.
"""

from __future__ import annotations

__all__ = ["trace_failures", "check_balanced", "check_containment",
           "check_pass_coverage", "check_kernel_accounting"]


def check_balanced(spans) -> list[str]:
    """Every interval span must be finished."""
    return [f"unbalanced span {span.name!r} (sid {span.sid}) never closed"
            for span in spans if span.kind == "span" and not span.finished]


def check_containment(spans) -> list[str]:
    """No span may start before or end after its (finished) parent."""
    failures = []
    for span in spans:
        parent = span.parent
        if parent is None:
            continue
        if span.start_us < parent.start_us:
            failures.append(
                f"span {span.name!r} starts at {span.start_us} before "
                f"parent {parent.name!r} at {parent.start_us}")
        if (span.finished and parent.finished
                and span.end_us > parent.end_us):
            failures.append(
                f"span {span.name!r} outlives parent {parent.name!r} "
                f"({span.end_us} > {parent.end_us})")
    return failures


def check_pass_coverage(spans, pass_names: list | None = None
                        ) -> list[str]:
    """Each compile span holds every registered pass once, in order."""
    if pass_names is None:
        from ..passes import default_pipeline
        pass_names = [p.name for p in default_pipeline()]
    expected = [f"pass:{name}" for name in pass_names]
    failures = []
    # compile:* also matches the compile pool's attempt spans and
    # ready/coalesced/quarantine events; only pipeline roots (interval
    # spans holding pass children) are under test here.
    for compile_span in spans.named("compile:*").intervals():
        if compile_span.name == "compile:attempt":
            continue
        got = [s.name for s in compile_span.walk()
               if s.name.startswith("pass:")]
        if got != expected:
            failures.append(
                f"{compile_span.name}: pass spans {got} != registered "
                f"pipeline {expected}")
    return failures


def check_kernel_accounting(spans) -> list[str]:
    """Record spans: per-kernel launch attrs must sum to the stats."""
    failures = []
    for record in spans.named("engine:record"):
        declared = record.attrs.get("kernels_launched")
        if declared is None:
            failures.append(
                f"engine:record (sid {record.sid}) lacks the "
                f"kernels_launched attribute")
            continue
        launched = sum(s.attrs.get("launches", 0) for s in record.walk()
                       if s.name.startswith("kernel:"))
        if launched != declared:
            failures.append(
                f"engine:record kernel spans sum to {launched} launches "
                f"but RunStats.kernels_launched is {declared}")
    return failures


def trace_failures(tracer, pass_names: list | None = None) -> list[str]:
    """Run every invariant over a tracer's spans; [] means healthy."""
    spans = tracer.spans
    failures = check_balanced(spans)
    failures += check_containment(spans)
    failures += check_pass_coverage(spans, pass_names)
    failures += check_kernel_accounting(spans)
    return failures
