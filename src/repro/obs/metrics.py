"""The metrics registry: counters, gauges, exact-quantile histograms.

Metrics are the aggregate face of the same data tracing records span by
span: a :class:`Tracer` constructed with ``metrics=MetricsRegistry()``
feeds every completed span into ``spans.<name>`` (a counter) and
``span_us.<name>`` (a histogram of durations); events land in
``events.<name>``.  Components may also write metrics directly.

Histograms keep every observation, so quantiles are *exact* — the right
trade for a simulated substrate where determinism beats memory, and what
lets the trace-based tests assert precise numbers instead of bucketed
approximations.  ``snapshot()`` renders the whole registry as one
JSON-able dict.
"""

from __future__ import annotations

import threading
from math import ceil

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """Monotonically-increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        self.value += amount


class Gauge:
    """A value that goes up and down (queue depth, cache size)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, delta: float) -> None:
        self.value += float(delta)


class Histogram:
    """Every observation kept; quantiles by the nearest-rank rule."""

    __slots__ = ("name", "_values", "_sorted")

    def __init__(self, name: str) -> None:
        self.name = name
        self._values: list[float] = []
        self._sorted: list[float] | None = None

    def observe(self, value: float) -> None:
        self._values.append(float(value))
        self._sorted = None

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def total(self) -> float:
        return sum(self._values)

    @property
    def mean(self) -> float:
        return self.total / self.count if self._values else 0.0

    def quantile(self, q: float) -> float:
        """Exact nearest-rank quantile; ``q`` in [0, 1]."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if not self._values:
            return 0.0
        if self._sorted is None:
            self._sorted = sorted(self._values)
        rank = max(1, ceil(q * len(self._sorted)))
        return self._sorted[rank - 1]

    def snapshot(self) -> dict:
        if not self._values:
            return {"count": 0}
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": min(self._values),
            "max": max(self._values),
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """Named metrics, created on first touch; snapshot-able as JSON.

    Thread-safe at the registry level (metric creation and the span
    feed); individual ``inc``/``observe`` calls on CPython are atomic
    enough for the simulated substrate and stay lock-free.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- access (create on first touch) -------------------------------------

    def counter(self, name: str) -> Counter:
        with self._lock:
            got = self._counters.get(name)
            if got is None:
                got = self._counters[name] = Counter(name)
            return got

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            got = self._gauges.get(name)
            if got is None:
                got = self._gauges[name] = Gauge(name)
            return got

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            got = self._histograms.get(name)
            if got is None:
                got = self._histograms[name] = Histogram(name)
            return got

    # -- the span feed -------------------------------------------------------

    def record_span(self, span) -> None:
        """Called by the tracer when a span or event completes."""
        if span.kind == "event":
            self.counter(f"events.{span.name}").inc()
            return
        self.counter(f"spans.{span.name}").inc()
        self.histogram(f"span_us.{span.name}").observe(span.duration_us)

    # -- export --------------------------------------------------------------

    def snapshot(self) -> dict:
        """The whole registry as one sorted, JSON-able dict."""
        with self._lock:
            return {
                "counters": {name: c.value for name, c
                             in sorted(self._counters.items())},
                "gauges": {name: g.value for name, g
                           in sorted(self._gauges.items())},
                "histograms": {name: h.snapshot() for name, h
                               in sorted(self._histograms.items())},
            }
