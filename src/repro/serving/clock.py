"""The time seam of the serving runtime.

Every component of :mod:`repro.serving` reads time through a
:class:`Clock` handed to it at construction — nothing in the runtime
touches the wall clock directly.  Production wiring would pass a
:class:`SystemClock`; every test and every benchmark passes the
:class:`VirtualClock` owned by a
:class:`~repro.serving.scheduler.VirtualScheduler`, which advances time
only when the event loop dispatches an event.  That seam is what makes
the concurrency suite deterministic: no sleeps, no races, identical
timelines on every run.
"""

from __future__ import annotations

import time

__all__ = ["Clock", "SystemClock", "VirtualClock"]


class Clock:
    """Minimal time source: microseconds since an arbitrary epoch."""

    def now_us(self) -> float:
        raise NotImplementedError


class SystemClock(Clock):
    """Wall-clock time from the monotonic clock."""

    def __init__(self) -> None:
        self._epoch = time.monotonic()

    def now_us(self) -> float:
        return (time.monotonic() - self._epoch) * 1e6


class VirtualClock(Clock):
    """Simulated time, advanced explicitly by the scheduler.

    Never moves backwards; ``advance_to`` with a past timestamp is a
    no-op, so event handlers can re-arm timers without care.
    """

    def __init__(self, start_us: float = 0.0) -> None:
        self._now_us = float(start_us)

    def now_us(self) -> float:
        return self._now_us

    def advance_to(self, time_us: float) -> None:
        if time_us > self._now_us:
            self._now_us = float(time_us)
