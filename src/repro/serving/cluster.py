"""ClusterSim: deterministic whole-cluster simulation for tests and CI.

The fleet's unit of verification is a *transcript*: the exact sequence
of fleet events (route decisions with queue-depth snapshots, tenant
sheds, scale events) merged with every response.  ``ClusterSim`` is the
fixture that produces them — it drives multi-tenant Poisson traces
through a fresh :class:`~repro.serving.fleet.FleetEngine` on a fresh
seeded :class:`~repro.serving.scheduler.VirtualScheduler`, so the same
spec (models, options, arrivals, seed) replays to a bit-identical
transcript on any machine, any run, any platform.  The determinism
suite and the CI fleet job are built on that contract:

    sim = ClusterSim(device, {"mlp": graph}, options, seed=7)
    arrivals = poisson_arrivals([TenantTraffic(...)], seed=7)
    first = sim.run(arrivals)
    again = sim.run(arrivals)
    assert first.transcript == again.transcript      # bit-for-bit

Arrival generation is split from execution on purpose: a trace is data
(plain :class:`Arrival` records), so a failing cluster interleaving can
be minimized, saved, and replayed without re-running its generator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..core.pipeline import CompileOptions
from ..device.profiles import DeviceProfile
from ..ir.graph import Graph
from ..runtime.executable import Executable
from .fleet import FleetEngine, FleetOptions, FleetTicket
from .scheduler import VirtualScheduler

__all__ = ["Arrival", "ClusterRun", "ClusterSim", "TenantTraffic",
           "poisson_arrivals"]


@dataclass(frozen=True)
class Arrival:
    """One scheduled request: data, not behaviour — save and replay it."""

    at_us: float
    tenant: str
    model: str
    inputs: Mapping[str, np.ndarray]
    deadline_us: float | None = None


@dataclass
class TenantTraffic:
    """One tenant's Poisson lane: rate, request count, input pool."""

    tenant: str
    model: str
    rate_qps: float
    num_requests: int
    #: the inputs pool; each arrival samples one entry uniformly.
    inputs: Sequence[Mapping[str, np.ndarray]]
    deadline_us: float | None = None


def poisson_arrivals(traffic: Sequence[TenantTraffic],
                     seed: int = 0) -> list[Arrival]:
    """Merge per-tenant Poisson processes into one sorted arrival list.

    Each lane draws from its own ``default_rng([seed, lane])`` stream,
    so adding a tenant never perturbs another tenant's arrivals.  The
    merge is stable-sorted by (time, tenant), which makes simultaneous
    arrivals deterministic too.
    """
    arrivals: list[Arrival] = []
    for lane, t in enumerate(traffic):
        if t.rate_qps <= 0:
            raise ValueError(f"tenant {t.tenant!r} needs rate_qps > 0")
        if not t.inputs:
            raise ValueError(f"tenant {t.tenant!r} has an empty "
                             "inputs pool")
        rng = np.random.default_rng([seed, lane])
        gap_mean_us = 1e6 / t.rate_qps
        at = 0.0
        for _ in range(t.num_requests):
            at += float(rng.exponential(gap_mean_us))
            index = int(rng.integers(len(t.inputs)))
            arrivals.append(Arrival(at_us=at, tenant=t.tenant,
                                    model=t.model,
                                    inputs=t.inputs[index],
                                    deadline_us=t.deadline_us))
    arrivals.sort(key=lambda a: (a.at_us, a.tenant))
    return arrivals


@dataclass
class ClusterRun:
    """One completed simulation: the fleet, its tickets, its transcript."""

    fleet: FleetEngine
    scheduler: VirtualScheduler
    tickets: list[FleetTicket]
    #: the exact event transcript (see ``FleetEngine.transcript``).
    transcript: tuple = field(repr=False)

    def ok_responses(self) -> list:
        return [t.response for t in self.tickets
                if t.response is not None and t.response.ok]


class ClusterSim:
    """Runs arrival traces through a fresh fleet, deterministically.

    Every :meth:`run` builds a brand-new scheduler and fleet from the
    same spec — state never leaks between runs, which is what makes
    transcript equality a meaningful replay check rather than an
    accident of shared caches.

    ``compile_fault_factory`` / ``tuning_fault_factory`` are called
    with the sim *seed* at every run and must return a fresh
    per-replica schedule (``uid -> injector``): injectors are stateful,
    and minting them anew per run is part of the replay contract.
    """

    def __init__(self, device: DeviceProfile,
                 models: Mapping[str, Graph | Executable],
                 options: FleetOptions | None = None,
                 seed: int = 0,
                 compile_fault_factory=None,
                 tuning_fault_factory=None,
                 compile_options: CompileOptions | None = None,
                 tracer=None) -> None:
        self.device = device
        self.models = dict(models)
        self.options = options or FleetOptions()
        self.seed = seed
        self.compile_fault_factory = compile_fault_factory
        self.tuning_fault_factory = tuning_fault_factory
        self.compile_options = compile_options
        self.tracer = tracer

    def build(self) -> tuple[VirtualScheduler, FleetEngine]:
        """A fresh scheduler + fleet with every model registered."""
        scheduler = VirtualScheduler(seed=self.seed)
        factory = self.compile_fault_factory
        fleet = FleetEngine(
            self.device, scheduler, self.options,
            compile_fault_factory=(
                factory(self.seed) if factory is not None else None),
            tuning_fault_factory=(
                self.tuning_fault_factory(self.seed)
                if self.tuning_fault_factory is not None else None),
            tracer=self.tracer)
        for name, model in self.models.items():
            fleet.register_model(name, model, self.compile_options)
        return scheduler, fleet

    def run(self, arrivals: Sequence[Arrival],
            drains: Sequence[tuple[float, str]] = (),
            max_events: int = 1_000_000) -> ClusterRun:
        """Play ``arrivals`` (plus optional timed drains) to completion.

        ``drains`` is a list of ``(at_us, replica_name)`` — the
        scale-down-mid-stream events the fuzz oracle and the replay
        suites exercise.
        """
        scheduler, fleet = self.build()
        for arrival in arrivals:
            scheduler.call_at(
                arrival.at_us,
                lambda a=arrival: fleet.submit(
                    a.model, a.inputs, tenant=a.tenant,
                    deadline_us=a.deadline_us))
        for at_us, name in drains:
            scheduler.call_at(at_us,
                              lambda n=name: fleet.drain(n))
        scheduler.run_until_idle(max_events=max_events)
        return ClusterRun(fleet, scheduler, fleet.tickets,
                          fleet.transcript())
