"""Dynamic batching over constraint-compatible shape signatures.

The paper's headline workload — variable-sequence-length transformer
traffic — batches badly under naive padding: pad every request to the
global maximum and most of the device time is waste.  The shape
constraint store bounds that waste the BladeDISC++ way: it knows which
parameter dims are provably equal (one union-find class per group), so

- **bucketing** — requests whose per-class values round to the same
  power-of-two ceiling share a bucket; requests in different buckets
  never pad each other.  ``pad_policy="exact"`` degenerates to
  equal-signatures-only (zero padding, more buckets).
- **padding** — a bucket's members are padded per *class*, to the
  bucket's ceiling, never per raw dim: dims the store proves equal stay
  equal after padding, so the padded signature still binds.
- **batch formation** — a bucket flushes when it reaches
  ``max_batch_size`` or ``max_queue_delay_us`` after its first member,
  whichever comes first, all on the injectable
  :class:`~repro.serving.scheduler.VirtualScheduler` — every
  interleaving is seeded and replayable.
- **one launch plan per bucket** — a flushed batch replays one frozen
  :class:`~repro.runtime.launchplan.BatchLaunchPlan` keyed on the padded
  signature with a leading (rounded) batch dim; a cold batched plan
  never stalls anyone: the batch *explodes* back into solo requests
  served immediately while the batched plan compiles in the background.
- **bit-identical unbatching** — members execute against their true
  dims (padding is a cost concept, not a numeric one), so every batched
  response equals a direct solo :class:`ExecutionEngine` run, enforced
  by the property/fuzz oracles in ``tests/serving`` and
  ``python -m repro.fuzz --batching``.

Admission stays strictly per request and *precedes* bucket placement:
shed happens in ``submit`` before a bucket is chosen, and a deadline
that expires while its bucket waits on the flush timer times the
request out of the bucket (it never occupies a batch slot).

See internals.md §12 for the bucketing rules and plan keying.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.symbolic.analysis import ConstraintLevel, analyze_shapes
from ..device.profiles import DeviceProfile
from ..runtime.launchplan import format_signature
from .engine import (Request, ResponseStatus, ServingEngine,
                     ServingOptions)
from .scheduler import VirtualScheduler

__all__ = ["BatchingOptions", "BatchingServingEngine", "ShapeBucketer",
           "round_up_pow2"]

PAD_POLICIES = ("exact", "bucket")


def round_up_pow2(value: int) -> int:
    """The smallest power of two >= ``value`` (1 for value <= 1)."""
    if value <= 1:
        return 1
    return 1 << (int(value) - 1).bit_length()


@dataclass
class BatchingOptions:
    """Policy knobs of the dynamic batcher."""

    #: a bucket flushes as soon as it holds this many members.
    max_batch_size: int = 8
    #: ... or this long after its first member arrived, whichever first.
    max_queue_delay_us: float = 2_000.0
    #: "bucket": compatible dims pad to the bucket's pow2 ceiling;
    #: "exact": only identical signatures co-batch, zero padding.
    pad_policy: str = "bucket"
    #: round the batch dim up to a power of two (empty slots are cost,
    #: not members) so launch plans converge to a handful of keys.
    round_batch_to_pow2: bool = True
    #: when set, batch sizes are additionally capped by what the
    #: model's *proven* class-wide peak (``runtime.symplan``) fits into
    #: the budget, and pad ceilings stop exceeding each class's proven
    #: maximum.  Models whose peak cannot be proven keep the configured
    #: limits — "cannot prove" never silently admits anything.
    memory_budget: object | None = None


class ShapeBucketer:
    """Maps request signatures to pad-compatible buckets for one model.

    Built once per registered model from the shape-constraint store:
    every symbolic parameter dim is folded to its constraint *class*
    (dims the store proves always-equal share one class), so a bucket
    pads per class — provably-equal dims stay equal after padding and
    the padded signature still binds — while unrelated dims never pad
    each other.  Static dims (including symbols the store resolves to a
    class constant) take no part in bucketing.
    """

    def __init__(self, graph, params, pad_policy: str = "bucket",
                 class_caps: tuple | None = None) -> None:
        if pad_policy not in PAD_POLICIES:
            raise ValueError(f"unknown pad_policy {pad_policy!r}; "
                             f"available: {PAD_POLICIES}")
        self.pad_policy = pad_policy
        #: per bucketing slot, an optional proven class maximum (from
        #: ``MemoryBudget.bucket_caps``); ``None`` entries leave the
        #: stock ceiling schedule untouched.  Assignable after
        #: construction — the caps are derived from :meth:`class_symbols`.
        self.class_caps = tuple(class_caps) if class_caps else None
        #: the shape-constraint store the classes were derived from;
        #: the L604 lint audit reuses it for provenance.
        self.store = analyze_shapes(graph, ConstraintLevel.FULL).store
        store = self.store
        sym_class: dict[str, int] = {}
        class_members: dict[int, set] = {}
        for index, members in enumerate(store.dim_classes()):
            for key in members:
                if isinstance(key, str):
                    sym_class[key] = index
                    class_members.setdefault(index, set()).add(key)
        slot_index: dict = {}
        #: per param: (name, entries); an entry is either a static int
        #: or ``("class", slot)`` indexing :attr:`num_classes` values.
        self._param_axes: list[tuple] = []
        for param in params:
            entries: list = []
            for dim in param.shape:
                resolved = store.resolve_dim(dim)
                if isinstance(resolved, int):
                    entries.append(int(resolved))
                    continue
                group = ("class", sym_class.get(resolved.name))
                if group[1] is None:
                    group = ("sym", resolved.name)
                slot = slot_index.setdefault(group, len(slot_index))
                entries.append(("class", slot))
            self._param_axes.append(
                (param.attrs["param_name"], tuple(entries)))
        self.num_classes = len(slot_index)
        #: per bucketing slot: the symbol names the slot pads for.
        self._slot_symbols: list[set] = [
            set() for __ in range(self.num_classes)]
        for group, slot in slot_index.items():
            kind, key = group
            self._slot_symbols[slot] = set(class_members[key]) \
                if kind == "class" else {key}

    def class_symbols(self) -> list[set]:
        """Per bucketing slot, the symbol names it pads for.

        The L604 analyzer intersects these symbols' intervals to get
        each class's proven value range, then audits :meth:`ceiling`
        over it.
        """
        return [set(symbols) for symbols in self._slot_symbols]

    def ceiling(self, value: int) -> int:
        """The pad ceiling for one class value — THE soundness seam.

        Everything the batcher freezes per bucket (the key, the padded
        signature, hence the launch plan) goes through this one method,
        so the L604 audit of ``ceiling`` over each class's interval
        covers every padding decision the engine can make.  Subclasses
        overriding the schedule inherit the audit for free.
        """
        if self.pad_policy == "exact":
            return int(value)
        return round_up_pow2(value)

    def class_ceiling(self, slot: int, value: int) -> int:
        """The *effective* ceiling for one bucketing slot: the
        :meth:`ceiling` schedule, clamped to the slot's proven class
        maximum when a memory budget supplied one.

        The clamp stays sound for every in-class value: a member can
        never exceed its own class's proven maximum, so the clamped
        ceiling still dominates it — while padding past the proven
        range (pow2 jumping 12 -> 16 when the class tops out at 12)
        stops burning budget on bytes no request can need.  The L604
        audit drives this method, so budget-capped schedules inherit
        the truncation/waste checks.
        """
        ceiling = self.ceiling(value)
        caps = self.class_caps
        if caps and slot < len(caps) and caps[slot] is not None:
            ceiling = max(int(value), min(ceiling, int(caps[slot])))
        return ceiling

    def class_values(self, signature: tuple) -> tuple:
        """Concrete value of each constraint class in ``signature``."""
        values: list = [None] * self.num_classes
        shapes = {name: shape for name, shape in signature}
        for name, entries in self._param_axes:
            shape = shapes[name]
            for value, entry in zip(shape, entries):
                if not isinstance(entry, int):
                    values[entry[1]] = int(value)
        return tuple(values)

    def bucket_key(self, signature: tuple) -> tuple:
        """Requests with equal keys co-batch; others never pad each
        other."""
        values = self.class_values(signature)
        if self.pad_policy == "exact":
            return values
        return tuple(self.class_ceiling(slot, v)
                     for slot, v in enumerate(values))

    def padded_signature(self, signature: tuple) -> tuple:
        """The bucket-ceiling signature ``signature`` is padded to.

        Every member of a bucket maps to the *same* padded signature (it
        is a function of the bucket key), so a bucket's launch plans
        converge to one key per batch size instead of one per member
        mix.
        """
        if self.pad_policy == "exact":
            return tuple((name, tuple(int(d) for d in shape))
                         for name, shape in signature)
        padded = self.bucket_key(signature)
        return tuple(
            (name, tuple(entry if isinstance(entry, int)
                         else padded[entry[1]] for entry in entries))
            for name, entries in self._param_axes)

    def elements(self, signature: tuple) -> int:
        """Total input elements a signature carries (waste accounting)."""
        total = 0
        for __, shape in signature:
            n = 1
            for d in shape:
                n *= int(d)
            total += n
        return total

    def padding_waste(self, signature: tuple) -> float:
        """Fraction of the padded input elements that are padding."""
        padded = self.elements(self.padded_signature(signature))
        if padded == 0:
            return 0.0
        return 1.0 - self.elements(signature) / padded


class _Bucket:
    """Requests waiting to co-batch: one per (model, bucket key)."""

    __slots__ = ("key", "model", "members", "flush_handle", "opened_us")

    def __init__(self, key, model: str, opened_us: float) -> None:
        self.key = key
        self.model = model
        self.members: list[Request] = []
        self.flush_handle = None
        self.opened_us = opened_us


class _Batch:
    """A formed batch: one work item on the device-server queue.

    While it waits for the server, later arrivals with the same bucket
    key *join* it (up to ``max_batch_size``) instead of opening a fresh
    bucket — under load the launch leaves as full as the traffic allows,
    which is where the throughput of dynamic batching comes from.
    """

    __slots__ = ("key", "model", "members", "padded", "formed_us")

    def __init__(self, key, model: str, members: list, padded: tuple,
                 formed_us: float) -> None:
        self.key = key
        self.model = model
        self.members = members
        self.padded = padded
        self.formed_us = formed_us


class BatchingServingEngine(ServingEngine):
    """A :class:`ServingEngine` with a dynamic batcher before the server.

    Admission (shed + deadline) is inherited unchanged and runs per
    request *before* bucket placement; ``_enqueue`` routes admitted
    requests into shape buckets instead of the raw queue, and
    ``_begin_service`` lowers each flushed bucket to a single batched
    launch-plan replay.  A batch whose plan is cold explodes back into
    solo requests (served on the usual fast/fallback paths right away)
    while the batched plan compiles in the background; a quarantined
    batched key pins the bucket to solo service forever.  Lone flushes
    are served solo — a single-request stream behaves exactly like the
    unbatched engine.
    """

    PATH_COUNTERS = dict(ServingEngine.PATH_COUNTERS,
                         batched="batched_served")

    def __init__(self, device: DeviceProfile,
                 scheduler: VirtualScheduler,
                 options: ServingOptions | None = None,
                 batching: BatchingOptions | None = None,
                 compile_fault=None, tracer=None, *,
                 name: str = "serving") -> None:
        super().__init__(device, scheduler, options,
                         compile_fault=compile_fault, tracer=tracer,
                         name=name)
        self.batching = batching or BatchingOptions()
        if self.batching.pad_policy not in PAD_POLICIES:
            raise ValueError(
                f"unknown pad_policy {self.batching.pad_policy!r}; "
                f"available: {PAD_POLICIES}")
        if self.batching.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        self._bucketers: dict[str, ShapeBucketer] = {}
        #: model -> proven batch cap from the memory budget (None =
        #: unconstrained or unprovable; the configured limit applies).
        self._batch_caps: dict[str, int | None] = {}
        self._buckets: dict[tuple, _Bucket] = {}
        #: request id -> ("bucket", _Bucket) | ("batch", _Batch); only
        #: requests currently held by the batcher appear here.
        self._member_state: dict[int, tuple] = {}
        self.counters.update({
            "batched_served": 0,
            "batches_formed": 0,
            "batches_exploded": 0,
        })

    # -- registration ------------------------------------------------------

    def register_model(self, name, model, compile_options=None):
        entry = super().register_model(name, model, compile_options)
        bucketer = ShapeBucketer(
            entry.executable.graph, entry.engine.host_program.params,
            self.batching.pad_policy)
        budget = self.batching.memory_budget
        symbolic = getattr(entry.executable, "symbolic_plan", None)
        cap: int | None = None
        if budget is not None and symbolic is not None:
            bucketer.class_caps = tuple(
                budget.bucket_caps(symbolic, bucketer))
            cap = budget.max_batch_size(
                symbolic, limit=self.batching.max_batch_size)
            if cap is not None and cap < 1:
                raise ValueError(
                    f"model {name!r}: proven class-wide peak "
                    f"{symbolic.footprint_hi_bytes()} bytes does not "
                    f"fit the memory budget "
                    f"({budget.usable_bytes} usable) at batch size 1")
        self._bucketers[name] = bucketer
        self._batch_caps[name] = cap
        return entry

    def bucketer(self, name: str) -> ShapeBucketer:
        return self._bucketers[name]

    def max_batch_for(self, model: str) -> int:
        """The effective batch limit for one model: the configured
        ``max_batch_size``, tightened by the memory budget's proven cap
        when one exists."""
        cap = self._batch_caps.get(model)
        if cap is None:
            return self.batching.max_batch_size
        return min(self.batching.max_batch_size, cap)

    # -- admission seam ----------------------------------------------------

    def _waiting(self) -> int:
        """Waiting = queued solo requests + queued batch members +
        bucketed members; the shed bound covers them all."""
        waiting = 0
        for item in self._queue:
            waiting += len(item.members) if isinstance(item, _Batch) \
                else 1
        for bucket in self._buckets.values():
            waiting += len(bucket.members)
        return waiting

    def _enqueue(self, request: Request) -> None:
        """Admitted requests enter a shape bucket, not the raw queue."""
        bucketer = self._bucketers[request.model]
        key = (request.model, bucketer.bucket_key(request.signature))
        now = self.scheduler.now_us()
        if self._join_queued_batch(request, key, now):
            return
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = _Bucket(key, request.model, opened_us=now)
            self._buckets[key] = bucket
            bucket.flush_handle = self.scheduler.call_at(
                now + self.batching.max_queue_delay_us,
                lambda: self._flush(bucket))
        bucket.members.append(request)
        self._member_state[request.id] = ("bucket", bucket)
        if self.tracer.enabled:
            self.tracer.event(
                "batch:enqueue", parent=request.span,
                bucket=str(bucket.key[1]), size=len(bucket.members))
        if len(bucket.members) >= self.max_batch_for(request.model):
            self._flush(bucket)

    def _join_queued_batch(self, request: Request, key: tuple,
                           now: float) -> bool:
        """Absorb ``request`` into a same-bucket batch still waiting in
        the queue, if one has room.  The batch is already behind the
        busy server, so joining adds no latency to anyone — it only
        fills otherwise-padded slots of the coming launch."""
        for item in self._queue:
            if isinstance(item, _Batch) and item.key == key and \
                    len(item.members) < self.max_batch_for(item.model):
                item.members.append(request)
                self._member_state[request.id] = ("batch", item)
                metrics = getattr(self.tracer, "metrics", None)
                if metrics is not None:
                    metrics.histogram(
                        "serving.batch.queue_delay_us").observe(
                        now - request.arrival_us)
                if self.tracer.enabled:
                    self.tracer.event(
                        "batch:join", parent=request.span,
                        bucket=str(key[1]), size=len(item.members))
                return True
        return False

    # -- batch formation ---------------------------------------------------

    def _flush(self, bucket: _Bucket) -> None:
        """Form a batch from ``bucket`` (or serve a lone member solo)."""
        if self._buckets.get(bucket.key) is bucket:
            del self._buckets[bucket.key]
        if bucket.flush_handle is not None:
            bucket.flush_handle.cancel()
            bucket.flush_handle = None
        for request in bucket.members:
            self._member_state.pop(request.id, None)
        members = [r for r in bucket.members if not r.done]
        if not members:
            return
        now = self.scheduler.now_us()
        metrics = getattr(self.tracer, "metrics", None)
        if metrics is not None:
            delay = metrics.histogram("serving.batch.queue_delay_us")
            for request in members:
                delay.observe(now - request.arrival_us)
        if len(members) == 1:
            # A lone member takes the solo path: a single-request
            # stream is indistinguishable from the unbatched engine.
            super()._enqueue(members[0])
            return
        bucketer = self._bucketers[bucket.model]
        batch = _Batch(bucket.key, bucket.model, members,
                       bucketer.padded_signature(members[0].signature),
                       formed_us=now)
        for request in members:
            self._member_state[request.id] = ("batch", batch)
        self.counters["batches_formed"] += 1
        if self.tracer.enabled:
            self.tracer.event(
                "batch:flush", bucket=str(bucket.key[1]),
                size=len(members),
                padded=format_signature(batch.padded),
                waited_us=now - bucket.opened_us)
        self._queue.append(batch)
        if self._current is None:
            self._dispatch_next()

    def _batch_dim(self, live_members: int, model: str | None = None) -> int:
        if self.batching.round_batch_to_pow2:
            dim = round_up_pow2(live_members)
            if model is not None:
                # pow2 rounding must not blow a proven memory cap: the
                # padded batch dim is charged for real in the batched
                # cost model, so clamp it back to the budgeted limit
                # (never below the live member count).
                dim = min(dim, max(self.max_batch_for(model),
                                   live_members))
            return dim
        return live_members

    # -- dispatch seam -----------------------------------------------------

    def _begin_service(self, item) -> None:
        if not isinstance(item, _Batch):
            super()._begin_service(item)
            return
        for request in item.members:
            self._member_state.pop(request.id, None)
        live = [r for r in item.members if not r.done]
        if not live:
            self._dispatch_next()
            return
        entry = self._models[item.model]
        batch_size = self._batch_dim(len(live), item.model)
        batched_sig = entry.engine.host_program.batched_signature(
            item.padded, batch_size)
        plan = entry.engine.peek_batched(item.padded, batch_size)
        if plan is None:
            key = (item.model, batched_sig)
            if key not in self._quarantined:
                self._ensure_batched_compile(entry, item, batch_size, key)
            self._explode(item, live)
            return
        tracer = self.tracer
        metrics = getattr(tracer, "metrics", None)
        if metrics is not None:
            # Size/waste are observed at launch, not at flush: late
            # joiners fill slots after the batch is formed.
            metrics.histogram("serving.batch.size").observe(len(live))
            waste = metrics.histogram("serving.batch.padding_waste_frac")
            bucketer = self._bucketers[item.model]
            for request in live:
                waste.observe(bucketer.padding_waste(request.signature))
        if tracer.enabled:
            for request in live:
                tracer.event("serving:route", parent=request.span,
                             path="batched")
        with tracer.span("batch:launch", model=item.model,
                         size=len(live), batch=batch_size):
            outputs_list, stats = entry.engine.run_batched(
                [r.inputs for r in live], item.padded, batch_size)
        finish = self.scheduler.now_us() + stats.total_time_us
        self.scheduler.call_at(
            finish,
            lambda: self._complete_batch(live, outputs_list, stats))

    def _ensure_batched_compile(self, entry, item: _Batch,
                                batch_size: int, key: tuple) -> None:
        """Background-compile the batched plan for ``key``."""
        model = item.model
        padded = item.padded

        def run(attempt: int) -> None:
            if self._compile_fault is not None:
                self._compile_fault(model, key[1], attempt)
            entry.engine.prepare_batched(padded, batch_size)

        self.pool.ensure(
            key, run, entry.compile_duration_us,
            on_quarantine=lambda: self._quarantined.add(key))

    def _explode(self, item: _Batch, live: list) -> None:
        """Cold or quarantined batched plan: the members serve solo NOW.

        No member ever waits on a batched compile — the batch unrolls to
        the front of the queue and each request takes its usual solo
        path (fast if its plan is warm, the interpreter fallback
        otherwise).
        """
        self.counters["batches_exploded"] += 1
        if self.tracer.enabled:
            self.tracer.event("batch:explode", model=item.model,
                              size=len(live))
        self._queue.extendleft(reversed(live))
        self._dispatch_next()

    # -- completion / expiry -----------------------------------------------

    def _complete_batch(self, live: list, outputs_list: list,
                        stats) -> None:
        for request, outputs in zip(live, outputs_list):
            if request.done:
                continue
            self.counters["ok"] += 1
            self.counters["batched_served"] += 1
            self._respond(request, ResponseStatus.OK, "batched", outputs,
                          stats)
        self._dispatch_next()

    def _expire(self, request: Request) -> None:
        """Deadline fired while the batcher holds the request.

        A bucketed member leaves its bucket (the TIMEOUT goes out now —
        it never occupies a batch slot); a member of an already-formed
        batch is answered now and skipped at dispatch/completion.  Solo
        requests fall through to the base behavior.
        """
        if request.done:
            return
        state = self._member_state.pop(request.id, None)
        if state is None:
            if request is self._current or request in self._queue:
                super()._expire(request)
                return
            # Member of the batch currently in service: answer the
            # timeout now; batch completion skips done members.
        else:
            kind, holder = state
            if kind == "bucket":
                holder.members.remove(request)
                if not holder.members and \
                        self._buckets.get(holder.key) is holder:
                    del self._buckets[holder.key]
                    if holder.flush_handle is not None:
                        holder.flush_handle.cancel()
                        holder.flush_handle = None
        self.counters["timeouts"] += 1
        if self.tracer.enabled:
            self.tracer.event("serving:timeout", parent=request.span)
        self._respond(request, ResponseStatus.TIMEOUT, None, None, None)

    # -- reporting ---------------------------------------------------------

    def stats(self) -> dict:
        info = super().stats()
        info["batching"] = {
            "open_buckets": len(self._buckets),
            "batches_formed": self.counters["batches_formed"],
            "batches_exploded": self.counters["batches_exploded"],
            "batched_served": self.counters["batched_served"],
        }
        return info
