"""Background compilation pool with dedup, retry and quarantine.

Compilation in the serving runtime is asynchronous: the first request of
a cold ``(model, signature)`` submits a compile job and is answered on
the interpreter fallback; when the job completes it installs the launch
plan into the engine's :class:`LaunchPlanCache` and later requests take
the fast path.  The pool provides the robustness half of that story:

- **dedup / in-flight coalescing** — one job per key, ever; concurrent
  requests for a signature already compiling are coalesced (counted,
  not resubmitted);
- **bounded workers** — ``workers`` simulated compile slots; a job waits
  for the earliest-free slot, so a burst of cold signatures serializes
  exactly as a real compile pool would;
- **retry with exponential backoff** — :class:`TransientCompileError`
  re-queues the job after ``backoff_us * multiplier**attempt``;
- **quarantine** — :class:`PermanentCompileError`, or exhausting the
  retry budget, pins the key to the fallback path *forever*: the pool
  refuses further submissions for it and the engine stops trying.
  Compile errors degrade service; they never surface to a request.

The pool runs entirely on the injected scheduler — job completion is a
scheduled event at ``start + duration`` — so its interleavings are as
deterministic as everything else in :mod:`repro.serving`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Hashable

from ..obs.tracer import ROOT, resolve_tracer
from ..runtime.launchplan import _key_label
from .scheduler import VirtualScheduler

__all__ = ["BackgroundCompilePool", "CompileState", "PermanentCompileError",
           "SignatureCompileCost", "TransientCompileError"]


class TransientCompileError(RuntimeError):
    """A compile failure worth retrying (flaky tooling, resource blips)."""


class PermanentCompileError(RuntimeError):
    """A compile failure retrying cannot fix (codegen rejects the case)."""


@dataclass
class SignatureCompileCost:
    """Simulated duration of one per-signature compile.

    Models a per-shape specializing JIT: a fixed front-end cost plus a
    per-kernel codegen cost.  The defaults land in the hundreds of
    milliseconds for the bench models — the scale at which the paper's
    compilation-stall problem actually bites.
    """

    fixed_us: float = 200_000.0
    per_kernel_us: float = 4_000.0

    def duration_us(self, num_kernels: int) -> float:
        return self.fixed_us + self.per_kernel_us * num_kernels


class CompileState(Enum):
    COLD = "cold"
    COMPILING = "compiling"
    READY = "ready"
    QUARANTINED = "quarantined"


@dataclass
class _Record:
    state: CompileState
    attempts: int = 0
    coalesced: int = 0
    finished_at_us: float | None = None


@dataclass
class PoolStats:
    jobs_submitted: int = 0
    jobs_coalesced: int = 0
    compiles_succeeded: int = 0
    transient_failures: int = 0
    permanent_failures: int = 0
    quarantined: int = 0

    def as_dict(self) -> dict:
        return dict(self.__dict__)


class BackgroundCompilePool:
    """``workers`` simulated compile slots behind a dedup table.

    ``run`` callbacks receive the attempt index (0-based) and either
    return normally (the plan is installed by the callback itself) or
    raise one of the compile errors above.
    """

    def __init__(self, scheduler: VirtualScheduler, workers: int = 2,
                 max_retries: int = 2, backoff_us: float = 50_000.0,
                 backoff_multiplier: float = 2.0, tracer=None) -> None:
        if workers < 1:
            raise ValueError("compile pool needs at least one worker")
        self.scheduler = scheduler
        self.max_retries = max_retries
        self.backoff_us = backoff_us
        self.backoff_multiplier = backoff_multiplier
        #: ``compile:attempt`` spans and ``compile:*`` events (None = off).
        #: Attempt spans are forced to trace roots: they outlive the
        #: request span that happened to trigger them.
        self.tracer = resolve_tracer(tracer)
        #: per-worker timestamp at which the slot frees up.
        self._free_at_us = [0.0] * workers
        self._records: dict[Hashable, _Record] = {}
        self.stats = PoolStats()

    # -- queries -----------------------------------------------------------

    def state(self, key: Hashable) -> CompileState:
        record = self._records.get(key)
        return record.state if record is not None else CompileState.COLD

    def record(self, key: Hashable) -> _Record | None:
        return self._records.get(key)

    # -- submission --------------------------------------------------------

    def ensure(self, key: Hashable, run: Callable[[int], None],
               duration_us: float,
               on_quarantine: Callable[[], None] | None = None) -> bool:
        """Make sure a compile for ``key`` is running or finished.

        Returns True if this call started a job; False if it coalesced
        onto an in-flight one, the key is already ready, or the key is
        quarantined.  A READY key whose plan was since evicted from the
        engine's LRU may be resubmitted — the record resets to COMPILING.
        """
        record = self._records.get(key)
        if record is not None:
            if record.state is CompileState.COMPILING:
                record.coalesced += 1
                self.stats.jobs_coalesced += 1
                if self.tracer.enabled:
                    self.tracer.event("compile:coalesced",
                                      key=_key_label(key))
                return False
            if record.state is CompileState.QUARANTINED:
                return False
            # READY here means the engine lost the plan (LRU eviction)
            # and wants it re-frozen: fall through and resubmit.
        self._records[key] = record = _Record(CompileState.COMPILING)
        self.stats.jobs_submitted += 1
        self._start_attempt(key, record, run, duration_us, on_quarantine)
        return True

    # -- internals ---------------------------------------------------------

    def _start_attempt(self, key, record, run, duration_us,
                       on_quarantine) -> None:
        now = self.scheduler.now_us()
        worker = min(range(len(self._free_at_us)),
                     key=lambda i: self._free_at_us[i])
        start = max(now, self._free_at_us[worker])
        finish = start + duration_us
        self._free_at_us[worker] = finish
        span = None
        if self.tracer.enabled:
            span = self.tracer.begin(
                "compile:attempt", parent=ROOT, key=_key_label(key),
                attempt=record.attempts + 1, worker=worker,
                slot_start_us=start)
        self.scheduler.call_at(
            finish,
            lambda: self._finish_attempt(key, record, run, duration_us,
                                         on_quarantine, span))

    def _finish_attempt(self, key, record, run, duration_us,
                        on_quarantine, span=None) -> None:
        attempt = record.attempts
        record.attempts += 1
        try:
            run(attempt)
        except TransientCompileError:
            self.stats.transient_failures += 1
            self.tracer.end(span, outcome="transient_failure")
            if record.attempts > self.max_retries:
                self._quarantine(key, record, on_quarantine)
                return
            backoff = (self.backoff_us
                       * self.backoff_multiplier ** attempt)
            self.scheduler.call_after(
                backoff,
                lambda: self._start_attempt(key, record, run, duration_us,
                                            on_quarantine))
            return
        except PermanentCompileError:
            self.stats.permanent_failures += 1
            self.tracer.end(span, outcome="permanent_failure")
            self._quarantine(key, record, on_quarantine)
            return
        record.state = CompileState.READY
        record.finished_at_us = self.scheduler.now_us()
        self.stats.compiles_succeeded += 1
        self.tracer.end(span, outcome="ready")
        if self.tracer.enabled:
            self.tracer.event("compile:ready", parent=ROOT,
                              key=_key_label(key))

    def _quarantine(self, key, record: _Record,
                    on_quarantine: Callable[[], None] | None) -> None:
        record.state = CompileState.QUARANTINED
        record.finished_at_us = self.scheduler.now_us()
        self.stats.quarantined += 1
        if self.tracer.enabled:
            self.tracer.event("compile:quarantine", parent=ROOT,
                              key=_key_label(key))
        if on_quarantine is not None:
            on_quarantine()
