"""Deterministic discrete-event scheduler for the serving runtime.

The serving engine never spawns threads: request arrival, service
completion, compile-worker completion, retry backoff and deadline expiry
are all *events* on one priority queue, dispatched in timestamp order
against a :class:`~repro.serving.clock.VirtualClock`.  Concurrency in
the runtime is therefore interleaving of events, and the scheduler makes
that interleaving both deterministic and *explorable*:

- events at distinct timestamps always run in time order;
- events that share a timestamp run in an order chosen by a seeded RNG
  (the "interleaving seed") — same seed, same order, every run; distinct
  seeds permute the simultaneous events, which is how the test suite
  exercises many interleavings without threads or sleeps.

Handles returned by ``call_at``/``call_after`` are cancellable, which
the engine uses to disarm deadline timers when a request completes.
"""

from __future__ import annotations

import heapq
import random
from typing import Callable

from .clock import VirtualClock

__all__ = ["EventHandle", "VirtualScheduler"]


class EventHandle:
    """A scheduled callback; ``cancel()`` disarms it in O(1)."""

    __slots__ = ("time_us", "fn", "cancelled")

    def __init__(self, time_us: float, fn: Callable[[], None]) -> None:
        self.time_us = time_us
        self.fn = fn
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class VirtualScheduler:
    """Single-threaded event loop over virtual time.

    ``seed`` controls the dispatch order of simultaneous events; with
    ``seed=None`` ties break by submission order (FIFO), which is itself
    deterministic.
    """

    def __init__(self, seed: int | None = None,
                 clock: VirtualClock | None = None) -> None:
        self.clock = clock if clock is not None else VirtualClock()
        self.seed = seed
        self._rng = random.Random(seed) if seed is not None else None
        #: heap of (time_us, tiebreak, seq, handle); seq keeps the sort
        #: total even when the seeded tiebreaks collide.
        self._heap: list[tuple[float, float, int, EventHandle]] = []
        self._seq = 0
        self.events_dispatched = 0

    def now_us(self) -> float:
        return self.clock.now_us()

    # -- scheduling --------------------------------------------------------

    def call_at(self, time_us: float,
                fn: Callable[[], None]) -> EventHandle:
        """Run ``fn`` when virtual time reaches ``time_us``.

        Past timestamps clamp to *now* (the event still runs, after any
        already-queued events for the current instant have their say).
        """
        time_us = max(float(time_us), self.clock.now_us())
        handle = EventHandle(time_us, fn)
        tiebreak = self._rng.random() if self._rng is not None else 0.0
        heapq.heappush(self._heap, (time_us, tiebreak, self._seq, handle))
        self._seq += 1
        return handle

    def call_after(self, delay_us: float,
                   fn: Callable[[], None]) -> EventHandle:
        return self.call_at(self.clock.now_us() + max(0.0, delay_us), fn)

    # -- dispatch ----------------------------------------------------------

    def run_until_idle(self, max_events: int = 1_000_000) -> int:
        """Dispatch events until the queue drains; returns the count.

        ``max_events`` is a runaway guard — a handler re-arming itself
        unconditionally raises instead of spinning forever.
        """
        dispatched = 0
        while self._heap:
            if dispatched >= max_events:
                raise RuntimeError(
                    f"scheduler did not go idle within {max_events} events")
            time_us, _, _, handle = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self.clock.advance_to(time_us)
            dispatched += 1
            self.events_dispatched += 1
            handle.fn()
        return dispatched

    def run_until(self, time_us: float) -> int:
        """Dispatch events up to and including ``time_us``, then stop.

        Virtual time ends at ``time_us`` even if the queue drained
        earlier; later events stay queued for a subsequent run.
        """
        dispatched = 0
        while self._heap and self._heap[0][0] <= time_us:
            _, _, _, handle = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self.clock.advance_to(handle.time_us)
            dispatched += 1
            self.events_dispatched += 1
            handle.fn()
        self.clock.advance_to(time_us)
        return dispatched

    def pending(self) -> int:
        """Live (non-cancelled) events still queued."""
        return sum(1 for *_, h in self._heap if not h.cancelled)
