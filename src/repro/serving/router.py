"""Fleet routing policies and per-tenant admission control.

The fleet splits *placement* from *execution*: a :class:`RoutingPolicy`
picks which replica serves a request, and an :class:`AdmissionController`
decides — before any routing — whether the tenant may submit at all.
Both layers are deterministic functions of their inputs so whole-cluster
interleavings replay bit-for-bit under the virtual clock.

Three policies ship (see internals.md §15):

- **signature affinity** — the fleet-level analogue of the paper's
  shape-specialization caching.  A request is cheap only on a replica
  whose launch-plan cache already holds its signature class, so
  signatures are pinned to replicas by rendezvous (highest-random-weight)
  hashing: each replica scores ``blake2b(replica_uid | model | signature)``
  and the highest score wins.  Adding or retiring a replica remaps only
  the signatures that hashed to it — every other replica keeps its warm
  cache.  When the affine replica's queue is deeper than
  ``spill_depth``, the request spills to the least-loaded replica
  (freshness is worth less than a queue's worth of waiting).
- **round robin** — the classic baseline: rotate over active replicas,
  blind to caches and load.
- **least outstanding** — route to the replica with the fewest
  unresolved requests, blind to caches.

Hashing never uses Python's ``hash()`` (randomized per process by
``PYTHONHASHSEED``); :func:`stable_hash` is blake2b over the rendered
key, identical across runs, processes, and platforms.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Mapping, Protocol, Sequence

from ..runtime.launchplan import format_signature

__all__ = ["AdmissionController", "LeastOutstandingPolicy", "POLICIES",
           "ReplicaView", "RouteDecision", "RoundRobinPolicy",
           "RoutingPolicy", "SignatureAffinityPolicy", "TokenBucket",
           "make_policy", "stable_hash"]


def stable_hash(text: str) -> int:
    """A process-stable 64-bit hash of ``text`` (blake2b, not hash())."""
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8)
    return int.from_bytes(digest.digest(), "big")


class ReplicaView(Protocol):
    """What a policy may observe about a replica (fleet's ``_Replica``)."""

    name: str
    uid: int

    def waiting(self) -> int: ...        # queued, not yet in service
    def outstanding(self) -> int: ...    # submitted, not yet responded
    def warm(self, model: str, signature: tuple) -> bool: ...


@dataclass(frozen=True)
class RouteDecision:
    """One routing verdict, recorded verbatim in fleet transcripts."""

    replica: str
    policy: str
    #: the replica rendezvous hashing picked first (affinity only).
    affine: str | None = None
    #: True when the affine replica was over ``spill_depth`` and the
    #: request went to the least-loaded replica instead.
    spilled: bool = False
    #: True when the chosen replica already held the signature's plan.
    warm: bool = False


class RoutingPolicy:
    """Chooses a replica for one request; must be deterministic."""

    name = "base"

    def choose(self, model: str, signature: tuple,
               replicas: Sequence[ReplicaView]) -> RouteDecision:
        raise NotImplementedError


def _least_outstanding(replicas: Sequence[ReplicaView]) -> ReplicaView:
    """Fewest unresolved requests; ties broken by lowest uid."""
    return min(replicas, key=lambda r: (r.outstanding(), r.uid))


class RoundRobinPolicy(RoutingPolicy):
    """Rotate over active replicas, per model, blind to caches."""

    name = "round_robin"

    def __init__(self) -> None:
        self._next: dict[str, int] = {}

    def choose(self, model: str, signature: tuple,
               replicas: Sequence[ReplicaView]) -> RouteDecision:
        turn = self._next.get(model, 0)
        self._next[model] = turn + 1
        ordered = sorted(replicas, key=lambda r: r.uid)
        replica = ordered[turn % len(ordered)]
        return RouteDecision(replica=replica.name, policy=self.name,
                             warm=replica.warm(model, signature))


class LeastOutstandingPolicy(RoutingPolicy):
    """Route to the replica with the fewest unresolved requests."""

    name = "least_outstanding"

    def choose(self, model: str, signature: tuple,
               replicas: Sequence[ReplicaView]) -> RouteDecision:
        replica = _least_outstanding(replicas)
        return RouteDecision(replica=replica.name, policy=self.name,
                             warm=replica.warm(model, signature))


class SignatureAffinityPolicy(RoutingPolicy):
    """Rendezvous-hash signatures to replicas; spill when overloaded."""

    name = "affinity"

    def __init__(self, spill_depth: int = 8) -> None:
        if spill_depth < 1:
            raise ValueError("spill_depth must be >= 1")
        self.spill_depth = spill_depth

    def score(self, replica: ReplicaView, model: str,
              signature: tuple) -> int:
        return stable_hash(
            f"{replica.uid}|{model}|{format_signature(signature)}")

    def affine_replica(self, model: str, signature: tuple,
                       replicas: Sequence[ReplicaView]) -> ReplicaView:
        return max(replicas,
                   key=lambda r: (self.score(r, model, signature), r.uid))

    def choose(self, model: str, signature: tuple,
               replicas: Sequence[ReplicaView]) -> RouteDecision:
        affine = self.affine_replica(model, signature, replicas)
        if len(replicas) > 1 and affine.waiting() >= self.spill_depth:
            spill = _least_outstanding(
                [r for r in replicas if r is not affine])
            return RouteDecision(
                replica=spill.name, policy=self.name, affine=affine.name,
                spilled=True, warm=spill.warm(model, signature))
        return RouteDecision(
            replica=affine.name, policy=self.name, affine=affine.name,
            warm=affine.warm(model, signature))


POLICIES = {
    "affinity": SignatureAffinityPolicy,
    "round_robin": RoundRobinPolicy,
    "least_outstanding": LeastOutstandingPolicy,
}


def make_policy(name: str, **kwargs) -> RoutingPolicy:
    """Instantiate a registered policy by name."""
    try:
        factory = POLICIES[name]
    except KeyError:
        raise ValueError(f"unknown routing policy {name!r}; "
                         f"available: {sorted(POLICIES)}") from None
    return factory(**kwargs)


# -- per-tenant admission --------------------------------------------------


class TokenBucket:
    """A token bucket refilled continuously on the (virtual) clock."""

    __slots__ = ("rate_per_s", "burst", "tokens", "_refilled_us")

    def __init__(self, rate_per_s: float, burst: float) -> None:
        if rate_per_s <= 0 or burst < 1:
            raise ValueError("need rate_per_s > 0 and burst >= 1")
        self.rate_per_s = rate_per_s
        self.burst = burst
        self.tokens = float(burst)
        self._refilled_us = 0.0

    def try_acquire(self, now_us: float) -> bool:
        """Take one token if available; refills lazily up to burst."""
        if now_us > self._refilled_us:
            self.tokens = min(
                self.burst,
                self.tokens
                + (now_us - self._refilled_us) * self.rate_per_s / 1e6)
            self._refilled_us = now_us
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class AdmissionController:
    """Per-tenant token-bucket quotas; exhaustion sheds the request.

    ``quotas`` maps tenant name to ``(rate_per_s, burst)``.
    ``default_quota`` applies to tenants without an explicit quota
    (None = unmetered).  The SHED happens at the fleet edge, before
    routing, so an abusive tenant cannot fill any replica's queue.
    """

    def __init__(self,
                 quotas: Mapping[str, tuple[float, float]] | None = None,
                 default_quota: tuple[float, float] | None = None) -> None:
        self._buckets: dict[str, TokenBucket] = {
            tenant: TokenBucket(*quota)
            for tenant, quota in (quotas or {}).items()}
        self._default_quota = default_quota
        self.admitted: dict[str, int] = {}
        self.shed: dict[str, int] = {}

    def admit(self, tenant: str, now_us: float) -> bool:
        bucket = self._buckets.get(tenant)
        if bucket is None and self._default_quota is not None:
            bucket = TokenBucket(*self._default_quota)
            self._buckets[tenant] = bucket
        if bucket is None or bucket.try_acquire(now_us):
            self.admitted[tenant] = self.admitted.get(tenant, 0) + 1
            return True
        self.shed[tenant] = self.shed.get(tenant, 0) + 1
        return False
