"""The serving engine: async compilation behind a live request path.

``ServingEngine`` fronts the compiled stack for named models.  Its
request lifecycle (see internals.md §10):

- **submit** computes the request's shape signature, applies admission
  control (a bounded waiting queue; overflow is *shed* immediately), and
  arms the per-request deadline timer;
- **dispatch** pulls the next request when the (single, simulated)
  device server frees up and picks its path *at service start*:

  - warm signature → the :class:`ExecutionEngine` launch-plan replay
    path (fast);
  - cold signature → answered on the interpreter fallback *now*, while
    the background pool compiles the launch plan (submit or coalesce);
    a quarantined signature skips the pool and stays on the fallback;
  - cold with ``background_compile=False`` → the synchronous-compile
    baseline E16 measures against: the server stalls for the compile,
    then serves the (now warm) plan;

- **complete** responds OK unless the deadline expired mid-service, in
  which case the timeout response already went out at the deadline.

Every response that carries outputs is bit-identical to a direct
single-threaded ``ExecutionEngine`` run of the same request, whichever
path served it.  Compile faults — injected or real — retry with backoff
and at worst quarantine a signature to the fallback; they are invisible
in the response stream.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Mapping

import numpy as np

from ..core.pipeline import CompileOptions, compile_graph
from ..device.counters import RunStats
from ..device.profiles import DeviceProfile
from ..ir.graph import Graph
from ..lint import LintLevel, lint_executable
from ..obs.tracer import resolve_tracer
from ..runtime.engine import EngineOptions, ExecutionEngine
from ..runtime.executable import Executable
from ..runtime.launchplan import format_signature
from ..tuning import ScheduleTuner, TuningOptions
from .compilepool import (BackgroundCompilePool, CompileState,
                          PermanentCompileError, SignatureCompileCost,
                          TransientCompileError)
from .fallback import FallbackOptions, InterpreterFallback
from .scheduler import VirtualScheduler

__all__ = ["PathRouter", "Request", "Response", "ResponseStatus",
           "ServingEngine", "ServingOptions", "Ticket"]

#: fault injector signature: (model, signature, attempt) -> None, raising
#: TransientCompileError / PermanentCompileError to fail the attempt.
CompileFault = Callable[[str, tuple, int], None]


class ResponseStatus(Enum):
    OK = "ok"
    TIMEOUT = "timeout"
    SHED = "shed"


@dataclass
class ServingOptions:
    """Policy knobs of the serving runtime."""

    #: bound on *waiting* requests; arrivals beyond it are shed.
    queue_capacity: int = 64
    #: simulated background compile slots.
    compile_workers: int = 2
    #: transient-failure retries before a signature is quarantined.
    max_compile_retries: int = 2
    #: first retry delay; grows by ``backoff_multiplier`` per attempt.
    compile_backoff_us: float = 50_000.0
    backoff_multiplier: float = 2.0
    #: deadline applied to requests that don't carry one (None = none).
    default_deadline_us: float | None = None
    #: False = synchronous-compile baseline (cold signatures stall).
    background_compile: bool = True
    compile_cost: SignatureCompileCost = field(
        default_factory=SignatureCompileCost)
    fallback: FallbackOptions = field(default_factory=FallbackOptions)
    engine: EngineOptions = field(default_factory=EngineOptions)
    #: lint gate applied when registering a model (OFF = skip).
    lint_level: LintLevel = LintLevel.OFF
    #: budgeted background schedule autotuning (None = heuristics only).
    #: When set, every background compile job additionally runs the
    #: schedule search for its signature — sized into the job's duration
    #: as ``min(budget_us, tuner.estimate_cost_us(model))`` — and
    #: freezes the winners into the launch plan, so the fast path
    #: replays tuned picks at zero extra cost.
    tuning: TuningOptions | None = None


@dataclass
class Request:
    id: int
    model: str
    inputs: Mapping[str, np.ndarray]
    signature: tuple
    arrival_us: float
    deadline_us: float | None  # absolute virtual time, or None
    done: bool = False
    deadline_handle: object = None
    #: open ``request`` trace span (None when tracing is off).
    span: object = None


@dataclass
class Response:
    request_id: int
    model: str
    status: ResponseStatus
    #: which path produced the outputs: "fast", "fallback",
    #: "quarantined", "sync_compile"; None for shed/timeout responses.
    path: str | None
    outputs: list | None
    stats: RunStats | None
    signature: tuple
    arrival_us: float
    finish_us: float

    @property
    def latency_us(self) -> float:
        return self.finish_us - self.arrival_us

    @property
    def ok(self) -> bool:
        return self.status is ResponseStatus.OK


class Ticket:
    """Handed back by ``submit``; resolves when the response lands."""

    __slots__ = ("request", "response")

    def __init__(self, request: Request) -> None:
        self.request = request
        self.response: Response | None = None

    @property
    def done(self) -> bool:
        return self.response is not None


class _ModelEntry:
    __slots__ = ("name", "executable", "engine", "fallback",
                 "compile_duration_us", "tuning_duration_us")

    def __init__(self, name, executable, engine, fallback,
                 compile_duration_us,
                 tuning_duration_us: float = 0.0) -> None:
        self.name = name
        self.executable = executable
        self.engine = engine
        self.fallback = fallback
        self.compile_duration_us = compile_duration_us
        #: per-signature schedule-search time added to each background
        #: compile job: ``min(budget, static search-cost bound)``.
        self.tuning_duration_us = tuning_duration_us


class PathRouter:
    """Chooses and executes the service path for one dispatched request.

    Split out of :class:`ServingEngine` so the three serving concerns
    live behind separable seams — *admission* (``submit``: shed + deadline
    decisions, always per request), *scheduling* (``_dispatch_next`` /
    ``_complete``: the single simulated device server), and *routing*
    (this class: warm plan / fallback / sync-compile / quarantine).  The
    batching engine reuses admission and scheduling unchanged and adds
    its own batched route in front of this one.

    ``route`` returns ``(path, outputs, stats, service_us)``.
    """

    def __init__(self, engine: "ServingEngine") -> None:
        self.engine = engine

    def route(self, request: Request) -> tuple:
        engine = self.engine
        entry = engine._models[request.model]
        key = (request.model, request.signature)
        tracer = engine.tracer
        plan = entry.engine.peek_plan(request.signature)
        if plan is not None:
            if tracer.enabled:
                tracer.event("serving:route", path="fast")
            if plan.tuned:
                engine.counters["tuned_served"] += 1
            outputs, stats = entry.engine.run(request.inputs)
            return "fast", outputs, stats, stats.total_time_us

        if key in engine._quarantined:
            if tracer.enabled:
                tracer.event("serving:route", path="quarantined")
            with tracer.span("fallback:run"):
                outputs, stats = entry.fallback.run(request.inputs)
            return "quarantined", outputs, stats, stats.total_time_us

        if not engine.options.background_compile:
            if tracer.enabled:
                tracer.event("serving:route", path="sync_compile")
            return self._route_sync_compile(entry, request, key)

        if tracer.enabled:
            tracer.event("serving:route", path="fallback")
        self.ensure_compile(entry, request, key)
        with tracer.span("fallback:run"):
            outputs, stats = entry.fallback.run(request.inputs)
        return "fallback", outputs, stats, stats.total_time_us

    def _route_sync_compile(self, entry: _ModelEntry, request: Request,
                            key: tuple) -> tuple:
        """Synchronous-compile baseline: the compile stalls the server.

        Faults behave as in the async path — transient failures retry
        (each attempt stalls another compile duration), permanent or
        exhausted ones quarantine and the request is served eagerly —
        so errors never reach the response in either mode.
        """
        engine = self.engine
        stall_us = 0.0
        attempt = 0
        while True:
            stall_us += entry.compile_duration_us
            try:
                if engine._compile_fault is not None:
                    engine._compile_fault(request.model, request.signature,
                                          attempt)
                break
            except TransientCompileError:
                attempt += 1
                if attempt > engine.options.max_compile_retries:
                    engine._quarantined.add(key)
                    outputs, stats = entry.fallback.run(request.inputs)
                    return ("quarantined", outputs, stats,
                            stall_us + stats.total_time_us)
            except PermanentCompileError:
                engine._quarantined.add(key)
                outputs, stats = entry.fallback.run(request.inputs)
                return ("quarantined", outputs, stats,
                        stall_us + stats.total_time_us)
        engine.counters["sync_compile_stalls"] += 1
        engine.counters["sync_stall_us"] += stall_us
        outputs, stats = entry.engine.run(request.inputs)
        stats.compile_time_us += stall_us
        return "sync_compile", outputs, stats, stats.total_time_us

    def ensure_compile(self, entry: _ModelEntry, request: Request,
                       key: tuple) -> None:
        """Submit (or coalesce onto) the background compile for ``key``.

        With tuning enabled the job also runs the budgeted schedule
        search and freezes its winners into the plan; the job's duration
        is sized up by the model's bounded tuning time.  A tuner fault
        never loses the signature: the search is abandoned, the key is
        tuning-quarantined, and the job completes with the heuristic
        plan — only compile faults reach the pool's retry machinery.
        """
        engine = self.engine
        inputs = request.inputs
        model, signature = key

        def run(attempt: int) -> None:
            if engine._compile_fault is not None:
                engine._compile_fault(model, signature, attempt)
            tuner = engine.tuner
            if tuner is not None \
                    and key not in engine._tuning_quarantined:
                try:
                    if engine._tuning_fault is not None:
                        engine._tuning_fault(model, signature, attempt)
                    result = tuner.tune(entry.executable, signature)
                except (TransientCompileError, PermanentCompileError):
                    raise
                except Exception:
                    engine.counters["tuning_faults"] += 1
                    engine._tuning_quarantined.add(key)
                    if engine.tracer.enabled:
                        engine.tracer.event("tuning:fault", model=model,
                                            signature=format_signature(
                                                signature))
                else:
                    engine._note_tuning(result)
                    entry.engine.prepare(inputs, signature,
                                         selector=result.selector(),
                                         overwrite=True)
                    return
            entry.engine.prepare(inputs, signature)

        duration = entry.compile_duration_us
        if engine.tuner is not None \
                and key not in engine._tuning_quarantined:
            duration += entry.tuning_duration_us
        engine.pool.ensure(
            key, run, duration,
            on_quarantine=lambda: engine._quarantined.add(key))


class ServingEngine:
    """Serves named models over one simulated device server.

    ``compile_fault`` injects compile failures (the fuzz oracle and the
    robustness tests use :class:`repro.fuzz.faults.CompileFaultInjector`);
    production wiring leaves it None.
    """

    #: response path -> served counter; subclasses extend (the batching
    #: engine adds its ``batched`` path).
    PATH_COUNTERS = {
        "fast": "fast_served",
        "fallback": "fallback_served",
        "quarantined": "quarantine_served",
        "sync_compile": "sync_served",
    }

    def __init__(self, device: DeviceProfile,
                 scheduler: VirtualScheduler,
                 options: ServingOptions | None = None,
                 compile_fault: CompileFault | None = None,
                 tuning_fault: CompileFault | None = None,
                 tracer=None, *, name: str = "serving") -> None:
        self.device = device
        self.scheduler = scheduler
        self.options = options or ServingOptions()
        #: replica identity; namespaces this engine's stats so a fleet
        #: can aggregate N replicas without counter collisions.
        self.name = name
        #: request-lifecycle spans + ``serving:*`` events (None = off).
        #: Handed down to the compile pool and to every registered
        #: model's engine so one trace covers the whole request path.
        self.tracer = resolve_tracer(tracer)
        self._raw_tracer = tracer
        self.pool = BackgroundCompilePool(
            scheduler,
            workers=self.options.compile_workers,
            max_retries=self.options.max_compile_retries,
            backoff_us=self.options.compile_backoff_us,
            backoff_multiplier=self.options.backoff_multiplier,
            tracer=tracer)
        #: False once :meth:`adopt_pool` swaps in a pool owned elsewhere
        #: (fleet shared-pool mode); stats then mark the pool shared so
        #: aggregation counts its jobs once, not once per replica.
        self.owns_pool = True
        self._compile_fault = compile_fault
        self._tuning_fault = tuning_fault
        #: the background schedule autotuner (None = heuristics only).
        self.tuner = ScheduleTuner(device, self.options.tuning,
                                   tracer=tracer) \
            if self.options.tuning is not None else None
        self._models: dict[str, _ModelEntry] = {}
        self._queue: deque[Request] = deque()
        self._current: Request | None = None
        self._tickets: dict[int, Ticket] = {}
        self._next_id = 0
        #: every response, in the order they went out (OK + timeout + shed).
        self.completed: list[Response] = []
        self._quarantined: set[tuple] = set()
        #: keys whose schedule search faulted: they keep compiling and
        #: serving, on heuristic picks only.
        self._tuning_quarantined: set[tuple] = set()
        self.counters = {
            "submitted": 0, "ok": 0, "shed": 0, "timeouts": 0,
            "fast_served": 0, "fallback_served": 0,
            "quarantine_served": 0, "sync_served": 0,
            "sync_compile_stalls": 0, "sync_stall_us": 0.0,
            "tuned_signatures": 0, "tuned_served": 0,
            "tuning_faults": 0, "tuning_budget_exhausted": 0,
        }
        #: aggregated search accounting across all tuned signatures.
        self.tuning_totals = {
            "spent_us": 0.0, "enumerated": 0, "pruned": 0, "scored": 0,
            "kernels": 0, "improved": 0,
        }
        self.router = self._make_router()

    def _make_router(self) -> PathRouter:
        """Factory seam: subclasses may install a richer router."""
        return PathRouter(self)

    def adopt_pool(self, pool: BackgroundCompilePool) -> None:
        """Replace the engine's private compile pool with a shared one.

        Fleet shared-pool mode: N replicas compile through one
        :class:`BackgroundCompilePool`, so identical (model, signature)
        jobs coalesce across replicas instead of compiling N times.
        Must run before any request is submitted.
        """
        self.pool = pool
        self.owns_pool = False

    # -- registration ------------------------------------------------------

    def register_model(self, name: str,
                       model: Graph | Executable,
                       compile_options: CompileOptions | None = None
                       ) -> _ModelEntry:
        """Compile (if needed), lint-gate, and install a model."""
        if name in self._models:
            raise ValueError(f"model {name!r} already registered")
        if isinstance(model, Graph):
            executable = compile_graph(model, compile_options)
        else:
            executable = model
        if self.options.lint_level is not LintLevel.OFF:
            sink = lint_executable(executable)
            failures = sink.failures(self.options.lint_level)
            if failures:
                rendered = "; ".join(str(d) for d in failures[:3])
                raise ValueError(
                    f"model {name!r} fails lint at "
                    f"{self.options.lint_level.value}: {rendered}")
        engine = ExecutionEngine(executable, self.device,
                                 self.options.engine,
                                 tracer=self._raw_tracer)
        fallback = InterpreterFallback(executable, self.device,
                                       self.options.fallback)
        duration = self.options.compile_cost.duration_us(
            len(executable.kernels))
        tuning_duration = 0.0
        if self.tuner is not None:
            tuning_duration = min(
                self.tuner.options.budget_us,
                self.tuner.estimate_cost_us(executable))
        entry = _ModelEntry(name, executable, engine, fallback, duration,
                            tuning_duration)
        self._models[name] = entry
        return entry

    def model(self, name: str) -> _ModelEntry:
        return self._models[name]

    # -- request intake ----------------------------------------------------

    def submit(self, model: str, inputs: Mapping[str, np.ndarray],
               deadline_us: float | None = None) -> Ticket:
        """Admit one request; returns a :class:`Ticket`.

        ``deadline_us`` is relative to now; None falls back to
        ``options.default_deadline_us``.  Admission control — the shed
        decision and the deadline timer — is strictly per request and
        happens *here*, before the request reaches any queue or batching
        bucket; no later placement step may shed or re-deadline it.
        """
        entry = self._models[model]
        request, ticket = self._admit(model, entry, inputs, deadline_us)

        if self._should_shed(request):
            self.counters["shed"] += 1
            if self.tracer.enabled:
                self.tracer.event("serving:shed", parent=request.span)
            self._respond(request, ResponseStatus.SHED, None, None, None)
            return ticket

        if request.deadline_us is not None:
            request.deadline_handle = self.scheduler.call_at(
                request.deadline_us, lambda: self._expire(request))
        self._enqueue(request)
        return ticket

    def _admit(self, model: str, entry: _ModelEntry,
               inputs: Mapping[str, np.ndarray],
               deadline_us: float | None) -> tuple[Request, Ticket]:
        """Mint the request + ticket and account the arrival."""
        now = self.scheduler.now_us()
        signature = entry.engine.host_program.signature(inputs)
        relative = (deadline_us if deadline_us is not None
                    else self.options.default_deadline_us)
        request = Request(
            id=self._next_id, model=model, inputs=inputs,
            signature=signature, arrival_us=now,
            deadline_us=now + relative if relative is not None else None)
        self._next_id += 1
        ticket = Ticket(request)
        self._tickets[request.id] = ticket
        self.counters["submitted"] += 1
        if self.tracer.enabled:
            request.span = self.tracer.begin(
                "request", id=request.id, model=model,
                signature=format_signature(signature))
            self.tracer.event("serving:admit", parent=request.span)
        return request, ticket

    def _waiting(self) -> int:
        """Requests admitted but not yet in service (the shed input).

        Overridable: the batching engine also counts bucketed members.
        """
        return len(self._queue)

    def _should_shed(self, request: Request) -> bool:
        return self._current is not None and \
            self._waiting() >= self.options.queue_capacity

    def _enqueue(self, request: Request) -> None:
        """Place one admitted request; overridable (batching buckets)."""
        self._queue.append(request)
        if self._current is None:
            self._dispatch_next()

    # -- dispatch / service ------------------------------------------------

    def _dispatch_next(self) -> None:
        if not self._queue:
            self._current = None
            return
        item = self._queue.popleft()
        self._current = item
        self._begin_service(item)

    def _begin_service(self, request: Request) -> None:
        """Route the dispatched item and schedule its completion.

        Overridable: the batching engine intercepts batch work items
        here; plain requests fall through to the router.
        """
        with self.tracer.attach(request.span):
            path, outputs, stats, service_us = self.router.route(request)
        finish = self.scheduler.now_us() + service_us
        self.scheduler.call_at(
            finish,
            lambda: self._complete(request, path, outputs, stats))

    # -- completion / expiry -----------------------------------------------

    def _complete(self, request: Request, path: str | None,
                  outputs, stats) -> None:
        if not request.done:
            self.counters["ok"] += 1
            self.counters[self.PATH_COUNTERS[path]] += 1
            self._respond(request, ResponseStatus.OK, path, outputs,
                          stats)
        self._dispatch_next()

    def _expire(self, request: Request) -> None:
        if request.done:
            return
        self.counters["timeouts"] += 1
        if request is not self._current:
            self._queue.remove(request)
        if self.tracer.enabled:
            self.tracer.event("serving:timeout", parent=request.span)
        self._respond(request, ResponseStatus.TIMEOUT, None, None, None)

    def _respond(self, request: Request, status: ResponseStatus,
                 path: str | None, outputs, stats) -> None:
        request.done = True
        if request.deadline_handle is not None:
            request.deadline_handle.cancel()
        response = Response(
            request_id=request.id, model=request.model, status=status,
            path=path, outputs=outputs, stats=stats,
            signature=request.signature, arrival_us=request.arrival_us,
            finish_us=self.scheduler.now_us())
        self.completed.append(response)
        if self.tracer.enabled:
            self.tracer.event("serving:respond", parent=request.span,
                              status=status.value)
            self.tracer.end(request.span, status=status.value, path=path)
        ticket = self._tickets.pop(request.id, None)
        if ticket is not None:
            ticket.response = response

    # -- tuning accounting -------------------------------------------------

    def _note_tuning(self, result) -> None:
        """Fold one completed schedule search into the counters."""
        self.counters["tuned_signatures"] += 1
        if result.budget_exhausted:
            self.counters["tuning_budget_exhausted"] += 1
        totals = self.tuning_totals
        totals["spent_us"] += result.spent_us
        totals["enumerated"] += result.enumerated
        totals["pruned"] += sum(result.pruned.values())
        totals["scored"] += result.scored
        totals["kernels"] += len(result.kernels)
        totals["improved"] += sum(1 for k in result.kernels
                                  if k.improved)

    # -- reporting ---------------------------------------------------------

    def quarantined_signatures(self) -> set[tuple]:
        return set(self._quarantined)

    def tuning_quarantined_signatures(self) -> set[tuple]:
        return set(self._tuning_quarantined)

    def compile_state(self, model: str, signature: tuple) -> CompileState:
        return self.pool.state((model, signature))

    def stats(self) -> dict:
        stats = {
            "name": self.name,
            "requests": dict(self.counters),
            "pool": dict(self.pool.stats.as_dict(),
                         shared=not self.owns_pool),
            "quarantined_signatures": len(self._quarantined),
            "models": {name: entry.engine.plans.stats()
                       for name, entry in self._models.items()},
        }
        if self.tuner is not None:
            stats["tuning"] = dict(
                self.tuning_totals,
                budget_us=self.tuner.options.budget_us,
                tuned_signatures=self.counters["tuned_signatures"],
                tuned_served=self.counters["tuned_served"],
                faults=self.counters["tuning_faults"],
                budget_exhaustions=self.counters[
                    "tuning_budget_exhausted"],
                quarantined=len(self._tuning_quarantined))
        return stats
