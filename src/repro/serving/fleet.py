"""The serving fleet: N replicas per model behind a routing layer.

``FleetEngine`` scales :class:`~repro.serving.engine.ServingEngine` from
one simulated device server to a cluster of them (see internals.md §15).
The request lifecycle adds two stages in front of the single-replica
path:

- **admission** — per-tenant token-bucket quotas
  (:class:`~repro.serving.router.AdmissionController`).  An exhausted
  tenant is SHED at the fleet edge, before routing, so one tenant cannot
  fill any replica's queue;
- **routing** — a pluggable :class:`~repro.serving.router.RoutingPolicy`
  picks the replica.  The default, signature affinity, rendezvous-hashes
  (model, signature) onto the active replica set, which is the fleet
  analogue of the paper's shape-specialization caching: a signature
  class is cheap exactly on the replica whose launch-plan cache already
  holds it.

Replicas run a three-state lifecycle — ACTIVE → DRAINING → RETIRED.  A
draining replica takes no new routes but finishes everything already
queued, so scale-down never loses or double-serves a request.  The
optional autoscaler ticks on the virtual clock: sustained queue depth
(or a p99 breach over the trailing response window) scales up, a
replica idle past ``idle_retire_us`` drains down to ``min_replicas``.
The tick loop disarms when the fleet is idle at minimum size, so
``run_until_idle`` terminates.

Compile pools come in two modes.  Per-replica (default): each replica
owns its pool and its quarantine — a fault on one replica never taints
another.  Shared: one :class:`BackgroundCompilePool` serves the whole
fleet, identical (model, signature) jobs coalesce across replicas, and
one compile installs the plan on *every* active replica (quarantine is
then fleet-wide by construction).

Everything runs on the injectable clock/scheduler; ``fleet.events`` is
an exact per-event transcript (route decisions, queue-depth snapshots,
sheds, scale events) that replays bit-for-bit for a fixed seed — the
:class:`~repro.serving.cluster.ClusterSim` harness and the fleet fuzz
oracle are built on that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Mapping

import numpy as np

from ..core.pipeline import CompileOptions, compile_graph
from ..device.profiles import DeviceProfile
from ..ir.graph import Graph
from ..obs.tracer import resolve_tracer
from ..runtime.executable import Executable
from ..runtime.launchplan import format_signature
from .batching import BatchingOptions, BatchingServingEngine
from .compilepool import BackgroundCompilePool
from .engine import (PathRouter, Request, Response, ResponseStatus,
                     ServingEngine, ServingOptions, Ticket)
from .router import (AdmissionController, RouteDecision, RoutingPolicy,
                     make_policy)
from .scheduler import VirtualScheduler

__all__ = ["AutoscalerOptions", "FleetEngine", "FleetOptions",
           "FleetTicket", "ReplicaState"]

#: per-replica fault factory: ``uid -> compile_fault | None``.
FaultFactory = Callable[[int], object]


class ReplicaState(Enum):
    ACTIVE = "active"       # routable
    DRAINING = "draining"   # no new routes; finishing queued work
    RETIRED = "retired"     # drained and removed from the fleet


@dataclass
class AutoscalerOptions:
    """The autoscaler's thresholds, all in virtual time.

    Scale-up fires when the mean waiting depth per active replica stays
    at or above ``scale_up_queue_depth`` (or, if set, the trailing p99
    stays above ``scale_up_p99_us``) for ``sustain_us``, at most once
    per ``cooldown_us``.  Scale-down drains one replica per tick once it
    has been idle for ``idle_retire_us``, never below ``min_replicas``.
    """

    min_replicas: int = 1
    max_replicas: int = 8
    #: mean waiting requests per active replica that counts as a breach.
    scale_up_queue_depth: float = 8.0
    #: optional trailing-window p99 breach threshold (None = depth only).
    scale_up_p99_us: float | None = None
    #: responses in the trailing p99 window.
    p99_window: int = 64
    #: how long a breach must persist before scaling up.
    sustain_us: float = 30_000.0
    #: minimum gap between scale-ups.
    cooldown_us: float = 100_000.0
    #: idle time after which an above-minimum replica is drained.
    idle_retire_us: float = 300_000.0
    #: tick period of the evaluation loop.
    evaluate_every_us: float = 10_000.0


@dataclass
class FleetOptions:
    """Fleet shape and policy knobs."""

    #: initial replica count.
    replicas: int = 2
    #: routing policy name ("affinity", "round_robin",
    #: "least_outstanding") or a :class:`RoutingPolicy` instance.
    policy: str | RoutingPolicy = "affinity"
    #: affinity only: queue depth at which requests spill off the
    #: affine replica to the least-loaded one.
    affinity_spill_depth: int = 8
    #: one compile pool for the whole fleet (coalesces identical jobs
    #: across replicas) instead of one pool per replica.
    shared_compile_pool: bool = False
    #: tenant -> (rate_per_s, burst) token-bucket quotas.
    tenant_quotas: Mapping[str, tuple[float, float]] | None = None
    #: quota applied to tenants not listed (None = unmetered).
    default_quota: tuple[float, float] | None = None
    #: per-replica serving configuration.
    serving: ServingOptions = field(default_factory=ServingOptions)
    #: when set, replicas are :class:`BatchingServingEngine`\ s.
    batching: BatchingOptions | None = None
    #: when set, the fleet scales itself (None = fixed size).
    autoscaler: AutoscalerOptions | None = None
    #: when set (a :class:`~repro.runtime.symplan.MemoryBudget`), the
    #: fleet treats it as one shared device-memory pool: every replica
    #: reserves the *proven* class-wide footprint of its registered
    #: models (symbolic peak x effective batch + constants), scale-ups
    #: that would overcommit the pool are blocked (counted and
    #: transcripted), and registering a model the current fleet cannot
    #: provably hold fails fast.  Models with no provable peak leave
    #: the fleet unconstrained — "cannot prove" is explicit, never an
    #: implicit admit.
    memory_budget: object | None = None


class FleetTicket:
    """Handed back by :meth:`FleetEngine.submit`.

    Wraps the replica's :class:`Ticket` plus the fleet-level route; a
    tenant-quota SHED never reaches a replica, so the fleet resolves the
    ticket itself with a synthesized SHED response.
    """

    __slots__ = ("seq", "tenant", "replica", "decision", "inner",
                 "_response")

    def __init__(self, seq: int, tenant: str,
                 replica: str | None = None,
                 decision: RouteDecision | None = None,
                 inner: Ticket | None = None,
                 response: Response | None = None) -> None:
        self.seq = seq
        self.tenant = tenant
        self.replica = replica
        self.decision = decision
        self.inner = inner
        self._response = response

    @property
    def request(self) -> Request | None:
        return self.inner.request if self.inner is not None else None

    @property
    def response(self) -> Response | None:
        if self.inner is not None:
            return self.inner.response
        return self._response

    @property
    def done(self) -> bool:
        return self.response is not None


class _Replica:
    """One serving engine plus its fleet-side lifecycle state."""

    __slots__ = ("name", "uid", "engine", "state", "created_us",
                 "last_busy_us", "routed")

    def __init__(self, name: str, uid: int, engine: ServingEngine,
                 created_us: float) -> None:
        self.name = name
        self.uid = uid
        self.engine = engine
        self.state = ReplicaState.ACTIVE
        self.created_us = created_us
        self.last_busy_us = created_us
        self.routed = 0

    # -- the ReplicaView protocol (what policies may observe) -------------

    def waiting(self) -> int:
        return self.engine._waiting()

    def outstanding(self) -> int:
        """Requests routed here that have not yet been responded to."""
        return (self.engine.counters["submitted"]
                - len(self.engine.completed))

    def warm(self, model: str, signature: tuple) -> bool:
        entry = self.engine._models.get(model)
        return (entry is not None
                and entry.engine.peek_plan(signature) is not None)


class _SharedPoolRouter(PathRouter):
    """Replica router for shared-pool mode.

    Compiles go to the fleet's one pool under the same (model,
    signature) key every replica uses, so concurrent cold requests on
    different replicas coalesce into a single job — and that job
    installs the finished plan on *every* active replica, not just the
    one that tripped it.  Quarantine is fleet-wide for the same reason.
    """

    def __init__(self, engine: ServingEngine, fleet: "FleetEngine") -> None:
        super().__init__(engine)
        self.fleet = fleet

    def ensure_compile(self, entry, request: Request, key: tuple) -> None:
        self.fleet._ensure_shared_compile(entry, request, key)


class FleetEngine:
    """Routes requests for named models across a replica set."""

    def __init__(self, device: DeviceProfile,
                 scheduler: VirtualScheduler,
                 options: FleetOptions | None = None,
                 compile_fault_factory: FaultFactory | None = None,
                 tuning_fault_factory: FaultFactory | None = None,
                 tracer=None) -> None:
        self.device = device
        self.scheduler = scheduler
        self.options = options or FleetOptions()
        if self.options.replicas < 1:
            raise ValueError("need at least one replica")
        if (self.options.shared_compile_pool
                and self.options.serving.tuning is not None):
            raise ValueError("shared_compile_pool does not support "
                             "schedule tuning; use per-replica pools")
        self.tracer = resolve_tracer(tracer)
        self._raw_tracer = tracer
        self.metrics = getattr(self.tracer, "metrics", None)
        policy = self.options.policy
        if isinstance(policy, str):
            kwargs = ({"spill_depth": self.options.affinity_spill_depth}
                      if policy == "affinity" else {})
            policy = make_policy(policy, **kwargs)
        self.policy: RoutingPolicy = policy
        self.admission = AdmissionController(
            self.options.tenant_quotas, self.options.default_quota)
        self._compile_fault_factory = compile_fault_factory
        self._tuning_fault_factory = tuning_fault_factory
        self._shared_pool = None
        #: fault schedule of fleet-level (shared pool) compile jobs;
        #: created once — injectors are stateful schedules.
        self._shared_fault = (compile_fault_factory(-1)
                              if compile_fault_factory is not None
                              else None)
        if self.options.shared_compile_pool:
            serving = self.options.serving
            self._shared_pool = BackgroundCompilePool(
                scheduler,
                workers=serving.compile_workers,
                max_retries=serving.max_compile_retries,
                backoff_us=serving.compile_backoff_us,
                backoff_multiplier=serving.backoff_multiplier,
                tracer=tracer)
            #: keys quarantined fleet-wide; applied to scale-up replicas.
            self._shared_quarantined: set[tuple] = set()
        #: model name -> (executable, compile_options) for replica boots.
        self._registry: dict[str, tuple[Executable,
                                        CompileOptions | None]] = {}
        self._replicas: list[_Replica] = []
        self.retired: list[_Replica] = []
        self._next_uid = 0
        self._next_seq = 0
        self.tickets: list[FleetTicket] = []
        #: the exact per-event transcript: plain tuples, replayable.
        self.events: list[tuple] = []
        self.counters = {
            "routed": 0, "tenant_shed": 0,
            "affinity_hits": 0, "affinity_misses": 0,
            "affinity_spills": 0,
            "scale_ups": 0, "drains": 0, "retires": 0,
            "memory_blocked_scale_ups": 0,
        }
        self.memory_budget = self.options.memory_budget
        #: model -> proven per-replica footprint bytes (None when the
        #: class peak has no finite proven bound).
        self._model_footprints: dict[str, int | None] = {}
        auto = self.options.autoscaler
        if auto is not None:
            if auto.min_replicas < 1:
                raise ValueError("min_replicas must be >= 1")
            if self.options.replicas < auto.min_replicas:
                raise ValueError("replicas below autoscaler min_replicas")
        self._tick_armed = False
        self._breach_since_us: float | None = None
        self._last_scale_up_us: float | None = None
        for _ in range(self.options.replicas):
            self._add_replica(reason="initial")

    # -- replica lifecycle -------------------------------------------------

    def _add_replica(self, reason: str) -> _Replica:
        uid = self._next_uid
        self._next_uid += 1
        name = f"r{uid}"
        serving = self.options.serving
        fault = (self._compile_fault_factory(uid)
                 if self._compile_fault_factory is not None else None)
        if self.options.batching is not None:
            engine = BatchingServingEngine(
                self.device, self.scheduler, serving,
                self.options.batching, compile_fault=fault,
                tracer=self._raw_tracer, name=name)
        else:
            tuning_fault = (self._tuning_fault_factory(uid)
                            if self._tuning_fault_factory is not None
                            else None)
            engine = ServingEngine(
                self.device, self.scheduler, serving,
                compile_fault=fault, tuning_fault=tuning_fault,
                tracer=self._raw_tracer, name=name)
        if self._shared_pool is not None:
            engine.adopt_pool(self._shared_pool)
            engine.router = _SharedPoolRouter(engine, self)
            engine._quarantined.update(self._shared_quarantined)
        for model, (executable, compile_options) in self._registry.items():
            engine.register_model(model, executable, compile_options)
        now = self.scheduler.now_us()
        replica = _Replica(name, uid, engine, now)
        self._replicas.append(replica)
        self._record(("replica_up", now, name, reason))
        if self.tracer.enabled:
            self.tracer.event("fleet:replica_up", replica=name,
                              reason=reason)
        if self.metrics is not None:
            self.metrics.gauge("fleet.replicas.active").set(
                len(self.active_replicas()))
        return replica

    def active_replicas(self) -> list[_Replica]:
        return [r for r in self._replicas
                if r.state is ReplicaState.ACTIVE]

    def replicas(self) -> list[_Replica]:
        """Live (active + draining) replicas, in boot order."""
        return list(self._replicas)

    def replica(self, name: str) -> _Replica:
        for replica in self._replicas + self.retired:
            if replica.name == name:
                return replica
        raise KeyError(f"no replica named {name!r}")

    def drain(self, name: str, reason: str = "manual") -> None:
        """Stop routing to ``name``; retire it once its work finishes."""
        replica = self.replica(name)
        if replica.state is not ReplicaState.ACTIVE:
            return
        if len(self.active_replicas()) <= 1:
            raise ValueError("cannot drain the last active replica")
        replica.state = ReplicaState.DRAINING
        self.counters["drains"] += 1
        now = self.scheduler.now_us()
        self._record(("drain", now, name, reason))
        if self.tracer.enabled:
            self.tracer.event("fleet:drain", replica=name, reason=reason)
        if self.metrics is not None:
            self.metrics.counter("fleet.drains").inc()
            self.metrics.gauge("fleet.replicas.active").set(
                len(self.active_replicas()))
        self._poll_retire(replica)

    def _poll_retire(self, replica: _Replica) -> None:
        if replica.outstanding() == 0:
            self._retire(replica)
            return
        self.scheduler.call_after(1_000.0,
                                  lambda: self._poll_retire(replica))

    def _retire(self, replica: _Replica) -> None:
        replica.state = ReplicaState.RETIRED
        self._replicas.remove(replica)
        self.retired.append(replica)
        self.counters["retires"] += 1
        now = self.scheduler.now_us()
        self._record(("retire", now, replica.name))
        if self.tracer.enabled:
            self.tracer.event("fleet:retire", replica=replica.name)
        if self.metrics is not None:
            self.metrics.counter("fleet.retires").inc()

    # -- registration ------------------------------------------------------

    def register_model(self, name: str, model: Graph | Executable,
                       compile_options: CompileOptions | None = None
                       ) -> None:
        """Compile once, register on every replica.

        The one executable is shared: its compiled host program is
        cached on the executable itself, so N replica engines replay
        the same lowering instead of compiling it N times.
        """
        if name in self._registry:
            raise ValueError(f"model {name!r} already registered")
        if isinstance(model, Graph):
            executable = compile_graph(model, compile_options)
        else:
            executable = model
        self._registry[name] = (executable, compile_options)
        self._model_footprints[name] = self._footprint_of(executable)
        if self.memory_budget is not None:
            total = self.replica_footprint_bytes()
            cap = self.memory_budget.max_replicas(total)
            if cap is not None and cap < len(self.active_replicas()):
                del self._registry[name]
                del self._model_footprints[name]
                raise ValueError(
                    f"model {name!r}: fleet of "
                    f"{len(self.active_replicas())} replicas needs "
                    f"{total * len(self.active_replicas())} proven "
                    f"bytes but the budget holds "
                    f"{self.memory_budget.usable_bytes}")
        for replica in self._replicas:
            replica.engine.register_model(name, executable,
                                          compile_options)

    # -- memory accounting ---------------------------------------------------

    def _footprint_of(self, executable: Executable) -> int | None:
        """Proven per-replica device bytes one model needs: the
        class-wide symbolic peak at the effective batch size, plus the
        constant pool.  None when no finite bound is provable."""
        symbolic = getattr(executable, "symbolic_plan", None)
        if symbolic is None:
            return None
        batch = 1
        if self.options.batching is not None:
            batch = self.options.batching.max_batch_size
            if self.memory_budget is not None:
                cap = self.memory_budget.max_batch_size(symbolic,
                                                        limit=batch)
                if cap is not None:
                    batch = max(min(batch, cap), 1)
        return symbolic.footprint_hi_bytes(batch)

    def replica_footprint_bytes(self) -> int | None:
        """Proven bytes one replica reserves (every replica hosts every
        registered model); None while any model's peak is unproven."""
        if not self._model_footprints:
            return None
        total = 0
        for footprint in self._model_footprints.values():
            if footprint is None:
                return None
            total += footprint
        return total

    def _max_replicas_allowed(self, configured: int) -> int:
        """``configured``, tightened by the memory budget when the
        per-replica footprint is provable."""
        if self.memory_budget is None:
            return configured
        cap = self.memory_budget.max_replicas(
            self.replica_footprint_bytes())
        if cap is None:
            return configured
        return min(configured, cap)

    # -- request intake ----------------------------------------------------

    def submit(self, model: str, inputs: Mapping[str, np.ndarray],
               tenant: str = "default",
               deadline_us: float | None = None) -> FleetTicket:
        """Admit (tenant quota), route (policy), and submit one request."""
        if model not in self._registry:
            raise KeyError(f"model {model!r} not registered")
        now = self.scheduler.now_us()
        seq = self._next_seq
        self._next_seq += 1
        executable, _ = self._registry[model]
        signature = executable.host_program.signature(inputs)

        if not self.admission.admit(tenant, now):
            return self._shed(seq, tenant, model, signature, now)

        active = self.active_replicas()
        decision = self.policy.choose(model, signature, active)
        replica = next(r for r in active if r.name == decision.replica)
        self._account_route(decision)
        depths = tuple((r.name, r.waiting()) for r in active)
        self._record(("route", now, seq, tenant, model,
                      format_signature(signature), decision.replica,
                      decision.policy, decision.affine, decision.spilled,
                      decision.warm, depths))
        if self.tracer.enabled:
            self.tracer.event(
                "fleet:route", seq=seq, tenant=tenant, model=model,
                replica=decision.replica, policy=decision.policy,
                spilled=decision.spilled, warm=decision.warm)
        inner = replica.engine.submit(model, inputs, deadline_us)
        replica.routed += 1
        replica.last_busy_us = now
        ticket = FleetTicket(seq, tenant, replica=replica.name,
                             decision=decision, inner=inner)
        self.tickets.append(ticket)
        self._arm_tick()
        return ticket

    def _shed(self, seq: int, tenant: str, model: str,
              signature: tuple, now: float) -> FleetTicket:
        self.counters["tenant_shed"] += 1
        self._record(("shed", now, seq, tenant, model))
        if self.tracer.enabled:
            self.tracer.event("fleet:shed", seq=seq, tenant=tenant,
                              model=model)
        if self.metrics is not None:
            self.metrics.counter(f"fleet.shed.tenant.{tenant}").inc()
        response = Response(
            request_id=seq, model=model, status=ResponseStatus.SHED,
            path=None, outputs=None, stats=None, signature=signature,
            arrival_us=now, finish_us=now)
        ticket = FleetTicket(seq, tenant, response=response)
        self.tickets.append(ticket)
        return ticket

    def _account_route(self, decision: RouteDecision) -> None:
        self.counters["routed"] += 1
        if decision.affine is not None:
            if decision.spilled:
                self.counters["affinity_spills"] += 1
            elif decision.warm:
                self.counters["affinity_hits"] += 1
            else:
                self.counters["affinity_misses"] += 1
        if self.metrics is not None:
            self.metrics.counter("fleet.routed").inc()
            self.metrics.counter(
                f"fleet.routed.replica.{decision.replica}").inc()
            if decision.spilled:
                self.metrics.counter("fleet.affinity.spills").inc()

    # -- shared-pool compiles ----------------------------------------------

    def _ensure_shared_compile(self, entry, request: Request,
                               key: tuple) -> None:
        """One compile job for the whole fleet; installs everywhere."""
        model, signature = key
        inputs = request.inputs
        fault = self._shared_fault

        def run(attempt: int) -> None:
            if fault is not None:
                fault(model, signature, attempt)
            for replica in self._replicas:
                replica_entry = replica.engine._models.get(model)
                if replica_entry is None:
                    continue
                if replica_entry.engine.peek_plan(signature) is None:
                    replica_entry.engine.prepare(inputs, signature)

        def on_quarantine() -> None:
            self._shared_quarantined.add(key)
            for replica in self._replicas:
                replica.engine._quarantined.add(key)

        self._shared_pool.ensure(key, run, entry.compile_duration_us,
                                 on_quarantine=on_quarantine)

    # -- autoscaling -------------------------------------------------------

    def _arm_tick(self) -> None:
        if self.options.autoscaler is None or self._tick_armed:
            return
        self._tick_armed = True
        self.scheduler.call_after(
            self.options.autoscaler.evaluate_every_us, self._tick)

    def _outstanding(self) -> int:
        return sum(r.outstanding() for r in self._replicas)

    def _trailing_p99_us(self) -> float | None:
        """p99 latency over the trailing OK-response window (or None)."""
        window = self.options.autoscaler.p99_window
        responses = []
        for replica in self._replicas + self.retired:
            responses.extend(r for r in replica.engine.completed[-window:]
                             if r.ok)
        if not responses:
            return None
        responses.sort(key=lambda r: r.finish_us)
        latencies = sorted(r.latency_us for r in responses[-window:])
        rank = max(1, int(np.ceil(0.99 * len(latencies))))
        return latencies[rank - 1]

    def _tick(self) -> None:
        self._tick_armed = False
        auto = self.options.autoscaler
        now = self.scheduler.now_us()
        active = self.active_replicas()
        if self.metrics is not None:
            for replica in active:
                self.metrics.gauge(
                    f"fleet.replica.{replica.name}.waiting").set(
                        replica.waiting())

        # -- scale up on a sustained breach --------------------------------
        mean_depth = (sum(r.waiting() for r in active) / len(active)
                      if active else 0.0)
        breach = mean_depth >= auto.scale_up_queue_depth
        if not breach and auto.scale_up_p99_us is not None:
            p99 = self._trailing_p99_us()
            breach = p99 is not None and p99 > auto.scale_up_p99_us
        if breach:
            if self._breach_since_us is None:
                self._breach_since_us = now
            sustained = now - self._breach_since_us >= auto.sustain_us
            cooled = (self._last_scale_up_us is None
                      or now - self._last_scale_up_us >= auto.cooldown_us)
            if sustained and cooled and len(active) < auto.max_replicas:
                allowed = self._max_replicas_allowed(auto.max_replicas)
                if len(active) < allowed:
                    self.counters["scale_ups"] += 1
                    self._last_scale_up_us = now
                    self._breach_since_us = None
                    self._add_replica(reason="autoscale")
                    if self.metrics is not None:
                        self.metrics.counter("fleet.scale_ups").inc()
                else:
                    # Scaling is load-justified but would overcommit
                    # the proven memory pool; record the block and
                    # restart the sustain window so the transcript
                    # stays bounded.
                    self.counters["memory_blocked_scale_ups"] += 1
                    self._breach_since_us = None
                    self._record(("scale_blocked_memory", now,
                                  len(active), allowed))
                    if self.metrics is not None:
                        self.metrics.counter(
                            "fleet.memory_blocked_scale_ups").inc()
        else:
            self._breach_since_us = None

        # -- drain one idle replica per tick -------------------------------
        active = self.active_replicas()
        if len(active) > auto.min_replicas:
            for replica in sorted(active, key=lambda r: -r.uid):
                if (replica.outstanding() == 0
                        and now - replica.last_busy_us
                        >= auto.idle_retire_us):
                    self.drain(replica.name, reason="idle")
                    break

        # Re-arm while there is anything left to converge: outstanding
        # work, a drain in flight, or idle capacity above the floor.
        # Idle at minimum size the loop disarms, so run_until_idle ends.
        if (self._outstanding() > 0
                or any(r.state is ReplicaState.DRAINING
                       for r in self._replicas)
                or len(self.active_replicas()) > auto.min_replicas):
            self._arm_tick()

    # -- transcripts / reporting -------------------------------------------

    def _record(self, event: tuple) -> None:
        self.events.append(event)

    def transcript(self) -> tuple:
        """Fleet events + per-request responses, merged by time.

        A plain tuple of tuples: hashable, comparable, and bit-for-bit
        reproducible for a fixed seed — the replay contract ClusterSim
        and the determinism suites assert on.
        """
        merged = [(event[1], 0, event) for event in self.events]
        for ticket in self.tickets:
            response = ticket.response
            if response is None or ticket.inner is None:
                continue
            merged.append((
                response.finish_us, 1,
                ("response", response.finish_us, ticket.seq,
                 ticket.replica, response.status.value, response.path,
                 format_signature(response.signature))))
        merged.sort(key=lambda item: (item[0], item[1], item[2]))
        return tuple(event for _, _, event in merged)

    def responses(self) -> list[Response]:
        return [t.response for t in self.tickets if t.response is not None]

    def stats(self) -> dict:
        """Fleet counters plus per-replica stats, pools deduplicated.

        Relies on the namespaced per-replica ``ServingEngine.stats()``:
        request counters sum across replicas, while pool stats are
        aggregated by pool *identity*, so a shared pool's compile jobs
        count once instead of once per replica.
        """
        per_replica = {r.name: r.engine.stats()
                       for r in self._replicas + self.retired}
        requests: dict = {}
        for stats in per_replica.values():
            for key, value in stats["requests"].items():
                requests[key] = requests.get(key, 0) + value
        pools: dict[int, dict] = {}
        for replica in self._replicas + self.retired:
            pools[id(replica.engine.pool)] = \
                replica.engine.pool.stats.as_dict()
        pool: dict = {}
        for stats in pools.values():
            for key, value in stats.items():
                pool[key] = pool.get(key, 0) + value
        footprint = self.replica_footprint_bytes()
        memory = {
            "budget_bytes": (self.memory_budget.usable_bytes
                             if self.memory_budget is not None else None),
            "footprint_per_replica_bytes": footprint,
            "replica_cap": (self.memory_budget.max_replicas(footprint)
                            if self.memory_budget is not None else None),
            "model_footprints": dict(self._model_footprints),
        }
        return {
            "fleet": dict(self.counters),
            "memory": memory,
            "replicas": {
                r.name: {"state": r.state.value, "routed": r.routed}
                for r in self._replicas + self.retired},
            "requests": requests,
            "pool": dict(pool, pools=len(pools),
                         shared=self._shared_pool is not None),
            "admission": {"admitted": dict(self.admission.admitted),
                          "shed": dict(self.admission.shed)},
            "per_replica": per_replica,
        }
