"""The interpreter fallback path of the serving runtime.

While a signature's launch plan is still compiling in the background —
or forever, if its compiles are quarantined — requests are answered by
interpreting the compiled executable's optimized graph.  Two properties
make that a *serving* path rather than a debugging crutch:

- **bit-identical outputs.**  The fallback interprets the same optimized
  graph the engine's kernels were generated from, with derived symbols
  pre-resolved and the interpreter's ``kernel_layout`` mode matching
  codegen's materialisation decisions; a request cannot observe which
  path served it (the property suite and the serving fuzz oracle enforce
  exact equality against a direct :class:`ExecutionEngine` run).
- **an eager cost model.**  The simulated latency of a fallback call is
  charged the way the eager baselines charge PyTorch-style execution:
  one un-fused kernel per op, each launch serialized behind a host
  dispatch (``max(kernel_time, dispatch)``).  That keeps E16 honest —
  the fallback is *slower* than the compiled path by construction, and
  the benefit of background compilation is the measured difference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..core.fusion import FusionConfig, plan_fusion
from ..core.fusion.kinds import FusionKind
from ..core.codegen import compile_group
from ..core.symbolic import ConstraintLevel, analyze_shapes
from ..device.cost import kernel_time_us
from ..device.counters import RunStats
from ..device.profiles import DeviceProfile
from ..interp import Interpreter
from ..numerics.resolve import bind_inputs, resolve_all_dims
from ..runtime.executable import Executable

__all__ = ["FallbackOptions", "InterpreterFallback"]


@dataclass
class FallbackOptions:
    """Cost knobs of the eager fallback (mirrors the PyTorch baseline)."""

    #: per-op kernel quality of un-fused eager kernels.
    base_efficiency: float = 0.90
    #: host cost of dispatching one eager kernel; each launch is
    #: serialized behind it (framework overhead dominates small ops).
    dispatch_us: float = 16.8


class InterpreterFallback:
    """Serves an executable's requests through the interpreter.

    Construction is cheap relative to a compile: it builds one singleton
    kernel per optimized-graph op purely for *costing* (the un-fused
    plan never executes data; :meth:`run` computes outputs through the
    interpreter and charges latency from the singleton cost recipes).
    """

    def __init__(self, executable: Executable, device: DeviceProfile,
                 options: FallbackOptions | None = None) -> None:
        self.executable = executable
        self.device = device
        self.options = options or FallbackOptions()
        graph = executable.graph
        self._interp = Interpreter(graph, check_shapes=False,
                                   kernel_layout=True)
        analysis = analyze_shapes(graph, ConstraintLevel.NONE)
        plan = plan_fusion(graph, analysis, FusionConfig.none())
        users = graph.users()
        self._cost_kernels = [
            compile_group(group, users, graph.outputs)
            for group in plan.ordered_groups()]

    def run(self, inputs: Mapping[str, np.ndarray]
            ) -> tuple[list, RunStats]:
        """Interpret one request; returns (outputs, eager-cost stats)."""
        dims = bind_inputs(self.executable.params, inputs)
        resolve_all_dims(self.executable.graph.nodes, dims)
        outputs = self._interp.run(inputs, bindings=dims)
        return outputs, self._charge(dims)

    def _charge(self, dims: dict) -> RunStats:
        """Eager-dispatch cost of the un-fused op stream."""
        options = self.options
        device = self.device
        stats = RunStats(cache_hit=True)
        for kernel in self._cost_kernels:
            kind = kernel.kind
            if kind is FusionKind.METADATA:
                stats.host_time_us += 0.1 * len(kernel.members)
                continue
            if kind is FusionKind.HOST:
                stats.host_time_us += (device.host_op_us
                                       * len(kernel.members))
                continue
            schedule = kernel.resolve_schedule(dims, None)
            spec = kernel.cost_spec(dims, schedule,
                                    options.base_efficiency)
            device_us = kernel_time_us(spec, device)
            # Eager serialization: the device idles while the host
            # dispatches, so a short kernel costs a full dispatch gap.
            stats.device_time_us += max(device_us, options.dispatch_us)
            stats.kernels_launched += 1 + spec.extra_launches
            stats.bytes_read += spec.bytes_read
            stats.bytes_written += spec.bytes_written
            stats.flops += spec.flops
        return stats
