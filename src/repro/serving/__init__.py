"""Concurrent serving runtime over the compiled stack.

The paper's serving claim — compile-once dynamic-shape execution stays
flat under shape-diverse traffic while per-shape JITs stall behind the
request queue — needs a *runtime*, not just the offline E14 simulation.
This package provides it:

- :class:`ServingEngine` — request intake, admission control, deadline
  timers, and per-request path selection (warm launch-plan replay /
  interpreter fallback / synchronous-compile baseline);
- :class:`BatchingServingEngine` — dynamic batching over
  constraint-compatible shape buckets (pad within a bucket, never
  across; one batched launch plan per bucket; bit-identical unbatching);
- :class:`BackgroundCompilePool` — deduplicated, coalescing, bounded
  background compilation with retry-backoff and quarantine;
- :class:`InterpreterFallback` — bit-identical interpreter serving with
  an eager (PyTorch-style) cost model;
- :class:`FleetEngine` — N replicas per model behind pluggable routing
  (signature affinity / round robin / least outstanding), per-tenant
  token-bucket admission, shared or per-replica compile pools, and
  metric-driven autoscaling (internals.md §15);
- :class:`ClusterSim` — the deterministic cluster-simulation fixture:
  multi-tenant Poisson traces in, bit-for-bit replayable per-event
  transcripts out;
- :class:`VirtualScheduler` / :class:`VirtualClock` — the injectable
  time seam that makes every interleaving deterministic and seedable.

See internals.md §10 for the architecture and tests/serving for the
deterministic concurrency suite.
"""

from .batching import (BatchingOptions, BatchingServingEngine,
                       ShapeBucketer, round_up_pow2)
from .clock import Clock, SystemClock, VirtualClock
from .cluster import (Arrival, ClusterRun, ClusterSim, TenantTraffic,
                      poisson_arrivals)
from .compilepool import (BackgroundCompilePool, CompileState,
                          PermanentCompileError, SignatureCompileCost,
                          TransientCompileError)
from .engine import (PathRouter, Request, Response, ResponseStatus,
                     ServingEngine, ServingOptions, Ticket)
from .fallback import FallbackOptions, InterpreterFallback
from .fleet import (AutoscalerOptions, FleetEngine, FleetOptions,
                    FleetTicket, ReplicaState)
from .router import (AdmissionController, LeastOutstandingPolicy,
                     RoundRobinPolicy, RouteDecision, RoutingPolicy,
                     SignatureAffinityPolicy, TokenBucket, make_policy,
                     stable_hash)
from .scheduler import EventHandle, VirtualScheduler

__all__ = [
    "AdmissionController",
    "Arrival",
    "AutoscalerOptions",
    "BackgroundCompilePool",
    "BatchingOptions",
    "BatchingServingEngine",
    "Clock",
    "ClusterRun",
    "ClusterSim",
    "CompileState",
    "EventHandle",
    "FallbackOptions",
    "FleetEngine",
    "FleetOptions",
    "FleetTicket",
    "InterpreterFallback",
    "LeastOutstandingPolicy",
    "PathRouter",
    "PermanentCompileError",
    "ReplicaState",
    "Request",
    "Response",
    "ResponseStatus",
    "RoundRobinPolicy",
    "RouteDecision",
    "RoutingPolicy",
    "ServingEngine",
    "ServingOptions",
    "ShapeBucketer",
    "SignatureAffinityPolicy",
    "SignatureCompileCost",
    "SystemClock",
    "TenantTraffic",
    "TokenBucket",
    "Ticket",
    "TransientCompileError",
    "VirtualClock",
    "VirtualScheduler",
    "make_policy",
    "poisson_arrivals",
    "round_up_pow2",
    "stable_hash",
]
