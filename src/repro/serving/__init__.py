"""Concurrent serving runtime over the compiled stack.

The paper's serving claim — compile-once dynamic-shape execution stays
flat under shape-diverse traffic while per-shape JITs stall behind the
request queue — needs a *runtime*, not just the offline E14 simulation.
This package provides it:

- :class:`ServingEngine` — request intake, admission control, deadline
  timers, and per-request path selection (warm launch-plan replay /
  interpreter fallback / synchronous-compile baseline);
- :class:`BatchingServingEngine` — dynamic batching over
  constraint-compatible shape buckets (pad within a bucket, never
  across; one batched launch plan per bucket; bit-identical unbatching);
- :class:`BackgroundCompilePool` — deduplicated, coalescing, bounded
  background compilation with retry-backoff and quarantine;
- :class:`InterpreterFallback` — bit-identical interpreter serving with
  an eager (PyTorch-style) cost model;
- :class:`VirtualScheduler` / :class:`VirtualClock` — the injectable
  time seam that makes every interleaving deterministic and seedable.

See internals.md §10 for the architecture and tests/serving for the
deterministic concurrency suite.
"""

from .batching import (BatchingOptions, BatchingServingEngine,
                       ShapeBucketer, round_up_pow2)
from .clock import Clock, SystemClock, VirtualClock
from .compilepool import (BackgroundCompilePool, CompileState,
                          PermanentCompileError, SignatureCompileCost,
                          TransientCompileError)
from .engine import (PathRouter, Request, Response, ResponseStatus,
                     ServingEngine, ServingOptions, Ticket)
from .fallback import FallbackOptions, InterpreterFallback
from .scheduler import EventHandle, VirtualScheduler

__all__ = [
    "BackgroundCompilePool",
    "BatchingOptions",
    "BatchingServingEngine",
    "Clock",
    "CompileState",
    "EventHandle",
    "FallbackOptions",
    "InterpreterFallback",
    "PathRouter",
    "PermanentCompileError",
    "Request",
    "Response",
    "ResponseStatus",
    "ServingEngine",
    "ServingOptions",
    "ShapeBucketer",
    "SignatureCompileCost",
    "SystemClock",
    "round_up_pow2",
    "Ticket",
    "TransientCompileError",
    "VirtualClock",
    "VirtualScheduler",
]
