"""The complete DISC optimization pipeline.

``compile_graph`` is the library's main entry point: it takes a model graph
with symbolic shapes and produces a shape-generic :class:`Executable` —

1. lower composites, simplify, CSE, DCE, place shape computations (the
   generic pass pipeline);
2. run the cross-level symbolic shape analysis;
3. plan fusion from the propagated shape relationships;
4. generate one kernel per fusion group (compile-time half) with runtime
   schedule selection hooks (runtime half);
5. lower the kernel list into the slot-addressed host program (the
   compiled host-side instruction stream the engine executes);
6. assemble the executable with its compile report.

Compilation happens exactly once per model; no step here ever needs a
concrete shape value.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..device.compilecost import compile_cost_us
from ..ir.graph import Graph
from ..ir.verifier import verify
from ..lint.blame import BlameRecorder
from ..lint.diagnostics import LintLevel
from ..lint.engine import _run_pipeline_lint
from ..obs.tracer import resolve_tracer
from ..passes import PassManager, PeakMemoryReorder, default_pipeline
from ..runtime.executable import CompileReport, Executable
from ..runtime.hostprog import lower_program
from ..runtime.memory import plan_buffers
from ..runtime.symplan import plan_symbolic
from .codegen.kernels import compile_group
from .fusion.kinds import FusionConfig, FusionKind
from .fusion.planner import plan_fusion
from .symbolic import ConstraintLevel, analyze_shapes

__all__ = ["CompileOptions", "DiscCompiler", "compile_graph"]


@dataclass
class CompileOptions:
    """Every ablatable knob of the pipeline."""

    constraint_level: ConstraintLevel = ConstraintLevel.FULL
    fusion: FusionConfig = field(default_factory=FusionConfig)
    #: verify IR invariants after every pass (slower; on in tests).
    verify_each_pass: bool = False
    #: simulated compile-cost grade charged for this compilation.
    compile_grade: str = "jit"
    #: run the static-analysis suite (repro.lint) during compilation:
    #: graph + symbolic analyzers after every pass with per-pass blame,
    #: fusion/memory audits on the results.  Findings land in
    #: ``report.lint``; failure judgement (errors only vs warnings too)
    #: follows the level.  OFF keeps benchmarks overhead-free.
    lint_level: LintLevel = LintLevel.OFF
    #: proven deployment bounds, symbol name -> ``(lo, hi)`` (either end
    #: may be None).  Fed as ``assume_range`` facts into the interval
    #: analyzers (L6xx) when linting: a bound here retires hazards the
    #: class alone cannot exclude (e.g. a possible zero extent).  Zoo
    #: models supply their ``Model.axes`` ranges.
    assume_ranges: dict | None = None
    #: lift the buffer plan to the signature class (runtime.symplan):
    #: symbolic slot extents, interval-valued peak with provenance, the
    #: aliasing proof.  ``assume_ranges`` makes the peak finitely
    #: provable; without them the plan still builds with an unbounded
    #: upper end.  Per-call numbers are unchanged either way.
    symbolic_memory: bool = True
    #: append the peak-aware operator reordering pass: reschedule nodes
    #: within topological freedom to shrink the estimated symbolic peak.
    #: Off by default — it changes kernel order (outputs stay
    #: bit-identical; costs and checked-in artifacts do not).
    reorder_for_memory: bool = False
    #: observability tracer (:class:`repro.obs.Tracer`).  None — the
    #: default — resolves to the shared no-op tracer; when set, the
    #: compile emits a ``compile:<graph>`` root span with ``stage:*``
    #: children and one ``pass:<name>`` span per pipeline pass.
    tracer: object | None = None


class DiscCompiler:
    """Compiles IR graphs into shape-generic executables."""

    def __init__(self, options: CompileOptions | None = None) -> None:
        self.options = options or CompileOptions()

    def compile(self, graph: Graph) -> Executable:
        """Compile ``graph`` (a clone is optimised; the input is kept)."""
        options = self.options
        tracer = resolve_tracer(options.tracer)
        start = time.perf_counter()
        with tracer.span(f"compile:{graph.name}",
                         grade=options.compile_grade) as root:
            working = graph.clone()
            verify(working)

            linting = options.lint_level is not LintLevel.OFF
            recorder = None
            if linting:
                recorder = BlameRecorder()
                recorder.prime(working)
            passes = default_pipeline()
            if options.reorder_for_memory:
                passes.append(PeakMemoryReorder(
                    assume_ranges=options.assume_ranges))
            manager = PassManager(
                passes,
                verify_each=options.verify_each_pass,
                after_each=recorder.after_pass if recorder else None,
                tracer=options.tracer)
            pass_results = manager.run(working)

            with tracer.span("stage:analysis"):
                analysis = analyze_shapes(working,
                                          options.constraint_level)
            with tracer.span("stage:fusion") as s:
                plan = plan_fusion(working, analysis, options.fusion)
                s.set(groups=len(plan.ordered_groups()))

            with tracer.span("stage:codegen") as s:
                users = working.users()
                kernels = []
                constants = {}
                for group in plan.ordered_groups():
                    kernels.append(
                        compile_group(group, users, working.outputs))
                for node in working.nodes:
                    if node.op == "constant":
                        constants[node] = node.attrs["value"].astype(
                            node.dtype.to_numpy(), copy=False)
                s.set(kernels=len(kernels))

            constant_bytes = sum(int(value.nbytes)
                                 for value in constants.values())
            with tracer.span("stage:memory") as s:
                buffer_plan = plan_buffers(kernels, working.outputs,
                                           constant_bytes=constant_bytes)
                symbolic_plan = None
                if options.symbolic_memory:
                    symbolic_plan = plan_symbolic(
                        buffer_plan, working,
                        assume_ranges=options.assume_ranges,
                        constant_bytes=constant_bytes)
                    s.set(slots=buffer_plan.num_slots,
                          class_peak=str(symbolic_plan.peak_fact.interval))
            # Host-program lowering: renumber values to dense slots, freeze
            # per-kernel slot tuples and last-use release, factor the dim
            # resolver — everything the engine would otherwise re-derive
            # per call (see runtime.hostprog).
            with tracer.span("stage:hostprog") as s:
                host_program = lower_program(working, kernels, constants,
                                             buffer_plan=buffer_plan)
                s.set(slots=host_program.num_slots)
            lint_sink = None
            if linting:
                with tracer.span("stage:lint") as s:
                    lint_sink = _run_pipeline_lint(
                        working, recorder, plan, analysis, options.fusion,
                        buffer_plan, host_program,
                        assume_ranges=options.assume_ranges)
                    s.set(findings=len(lint_sink.diagnostics))

            root.set(nodes=len(working.nodes), kernels=len(kernels))
        wall = time.perf_counter() - start
        report = CompileReport(
            wall_time_s=wall,
            simulated_compile_us=compile_cost_us(len(working.nodes),
                                                 options.compile_grade),
            pass_results=pass_results,
            fusion_stats=plan.stats(),
            analysis_summary=analysis.summary(),
            num_kernels=sum(1 for k in kernels
                            if k.kind not in (FusionKind.METADATA,
                                              FusionKind.HOST)),
            num_nodes=len(working.nodes),
            lint=lint_sink,
        )
        return Executable(graph=working, plan=plan, kernels=kernels,
                          constants=constants, report=report,
                          buffer_plan=buffer_plan,
                          host_program=host_program,
                          symbolic_plan=symbolic_plan)


def compile_graph(graph: Graph,
                  options: CompileOptions | None = None) -> Executable:
    """One-shot convenience wrapper around :class:`DiscCompiler`."""
    return DiscCompiler(options).compile(graph)
