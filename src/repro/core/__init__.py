"""The paper's contribution: symbolic shapes, fusion, combined codegen."""

from .pipeline import CompileOptions, DiscCompiler, compile_graph
from .symbolic import ConstraintLevel, ShapeAnalysis, analyze_shapes
from .fusion import FusionConfig, FusionGroup, FusionKind, FusionPlan, \
    plan_fusion

__all__ = [
    "CompileOptions", "DiscCompiler", "compile_graph",
    "ConstraintLevel", "ShapeAnalysis", "analyze_shapes",
    "FusionConfig", "FusionGroup", "FusionKind", "FusionPlan",
    "plan_fusion",
]
