"""Fusion legality predicates.

Everything here is decided from *shape relationships*, never shape values —
the paper's central insight.  All questions are answered by the
:class:`~repro.core.symbolic.ShapeAnalysis`; with the analysis ablated to
``NONE`` the same predicates run on structural equality only and legal
fusions are missed (experiment E4 measures exactly that).
"""

from __future__ import annotations

from ...ir.node import Node
from ...ir.ops import OpCategory
from ..symbolic import ShapeAnalysis

__all__ = [
    "is_loop_fusible",
    "loop_edge_compatible",
    "is_last_axis_reduce",
    "reduce_row_space",
    "stitch_member_role",
]

#: Categories that may join a kLoop group.
_LOOP_CATEGORIES = (OpCategory.ELEMENTWISE, OpCategory.BROADCAST,
                    OpCategory.RESHAPE)


def is_loop_fusible(node: Node, include_reshape: bool = True) -> bool:
    """May this node be a member of a single-loop fused kernel?"""
    if node.attrs.get("_placement") == "host":
        return False
    if node.category is OpCategory.RESHAPE:
        return include_reshape
    if node.category in _LOOP_CATEGORIES:
        return True
    return node.op == "iota"


def loop_edge_compatible(producer: Node, consumer: Node,
                         analysis: ShapeAnalysis,
                         include_reshape: bool = True) -> bool:
    """May ``producer`` and ``consumer`` share one loop iteration domain?

    The rule set mirrors BladeDISC's kLoop legality:

    - the consumer being a ``broadcast_in_dim`` always absorbs its (smaller)
      producer — inside the kernel the broadcast is just an index mapping;
    - otherwise the two ops must cover *provably* the same number of
      elements.  For structurally-equal shapes that is trivially true; for
      reshape boundaries it needs the product-equality constraints — the
      case where symbolic shape analysis earns its keep.
    """
    if not (is_loop_fusible(producer, include_reshape)
            and is_loop_fusible(consumer, include_reshape)):
        return False
    if consumer.category is OpCategory.BROADCAST:
        return True
    return analysis.same_num_elements(producer.shape, consumer.shape)


def is_last_axis_reduce(node: Node) -> bool:
    """A reduction over exactly the last axis (the stitch-friendly form)."""
    if not node.is_reduction:
        return False
    axes = node.attrs["axes"]
    return tuple(axes) == (node.inputs[0].rank - 1,)


def reduce_row_space(node: Node) -> tuple:
    """(row_dims, reduced_dim) of a last-axis reduce's input."""
    in_shape = node.inputs[0].shape
    return tuple(in_shape[:-1]), in_shape[-1]


def stitch_member_role(node: Node, rows: tuple, reduced,
                       analysis: ShapeAnalysis) -> str | None:
    """Can ``node`` live in a stitch group over row space ``rows``x``reduced``?

    Returns the member's role, or ``None`` if it cannot join:

    - ``"reduce"`` — a last-axis reduce over the same row space;
    - ``"full"`` — an elementwise/broadcast op over ``rows + (reduced,)``;
    - ``"row"`` — an op over ``rows`` or ``rows + (1,)`` (per-row scalars
      such as the max/sum intermediates of a softmax).

    The row space comparison uses constraint-derived dim equality, so two
    reduces separated by a reshape-free elementwise chain stitch together
    even when their shapes use different (but provably equal) symbols.
    """
    if node.attrs.get("_placement") == "host":
        return None
    if node.is_reduction:
        if not is_last_axis_reduce(node):
            return None
        node_rows, node_reduced = reduce_row_space(node)
        if analysis.shapes_equal(node_rows, rows) and analysis.dims_equal(
                node_reduced, reduced):
            return "reduce"
        return None
    if node.category not in (OpCategory.ELEMENTWISE, OpCategory.BROADCAST):
        return None
    shape = node.shape
    full = rows + (reduced,)
    if analysis.shapes_equal(shape, full):
        return "full"
    if analysis.shapes_equal(shape, rows + (1,)) or analysis.shapes_equal(
            shape, rows):
        return "row"
    return None
