"""Fusion kinds, groups, and plans.

BladeDISC distinguishes three fusion kinds, reproduced here:

- ``kLoop`` — a single parallel loop over one iteration domain; members are
  elementwise ops, broadcasts, and metadata reshapes whose element counts
  are *provably* equal under the symbolic shape analysis.
- ``kInput`` — a reduction root plus the elementwise producers feeding it
  (XLA-style input fusion); one pass over the reduce's input domain.
- ``kStitch`` — the paper's contribution: several reductions over the same
  row space plus the elementwise ops between them, stitched into one kernel
  through shared memory.  This is what fuses a whole softmax or layer-norm
  (two reductions each) into a single launch.

Ops that stay unfused (``dot``, ``conv2d``, ``transpose``, ...) become
singleton groups of kind ``kLibrary`` / ``kElementwiseSingleton`` etc. so the
rest of the pipeline can treat "the plan" as a total partition of the graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ...ir.graph import Graph
from ...ir.node import Node
from ...ir.traversal import (induced_subgraph_inputs,
                             induced_subgraph_outputs)

__all__ = ["FusionKind", "FusionGroup", "FusionPlan", "FusionConfig"]


class FusionKind(Enum):
    """How a group of ops becomes (or avoids becoming) a kernel."""

    LOOP = "kLoop"
    INPUT = "kInput"
    STITCH = "kStitch"
    #: singleton heavy op backed by a device library (dot, conv2d)
    LIBRARY = "kLibrary"
    #: singleton op that still needs its own kernel (transpose, concat, ...)
    SINGLETON = "kSingleton"
    #: metadata-only op that costs nothing at run time (reshape alone)
    METADATA = "kMetadata"
    #: host-placed shape computation (no device kernel at all)
    HOST = "kHost"


@dataclass
class FusionConfig:
    """Which fusion kinds the planner may use (ablated by experiment E3)."""

    enable_loop: bool = True
    enable_input: bool = True
    enable_stitch: bool = True
    #: register/shared-memory pressure proxy: max ops in one fused kernel.
    max_group_size: int = 64
    #: may loop fusion cross reshape boundaries?  Requires product-equality
    #: constraints; systems without symbolic shapes (TorchScript's fuser)
    #: cannot do it.
    loop_include_reshape: bool = True
    #: max reductions stitched into one kStitch kernel.
    max_stitch_reductions: int = 6

    @classmethod
    def none(cls) -> "FusionConfig":
        return cls(enable_loop=False, enable_input=False,
                   enable_stitch=False)

    @classmethod
    def loop_only(cls) -> "FusionConfig":
        return cls(enable_loop=True, enable_input=False,
                   enable_stitch=False)

    @classmethod
    def loop_and_input(cls) -> "FusionConfig":
        return cls(enable_loop=True, enable_input=True, enable_stitch=False)


@dataclass
class FusionGroup:
    """A set of nodes compiled into one kernel (or no kernel at all)."""

    group_id: int
    kind: FusionKind
    members: list[Node] = field(default_factory=list)

    def member_set(self) -> set[Node]:
        return set(self.members)

    def inputs(self) -> list[Node]:
        """External values the group reads."""
        return induced_subgraph_inputs(self.members)

    def outputs(self, users: dict[Node, list[Node]],
                graph_outputs) -> list[Node]:
        """Members whose value escapes the group."""
        return induced_subgraph_outputs(self.members, users, graph_outputs)

    @property
    def size(self) -> int:
        return len(self.members)

    def __repr__(self) -> str:
        names = ",".join(m.short() for m in self.members[:4])
        more = f",+{self.size - 4}" if self.size > 4 else ""
        return f"<{self.kind.value}#{self.group_id} [{names}{more}]>"


class FusionPlan:
    """A total partition of a graph's compute nodes into fusion groups."""

    def __init__(self, graph: Graph, groups: list[FusionGroup]) -> None:
        self.graph = graph
        self.groups = groups
        self.group_of: dict[Node, FusionGroup] = {}
        for group in groups:
            for member in group.members:
                if member in self.group_of:
                    raise ValueError(
                        f"{member.short()} assigned to two groups")
                self.group_of[member] = group

    def kernel_groups(self) -> list[FusionGroup]:
        """Groups that launch a device kernel."""
        launching = (FusionKind.LOOP, FusionKind.INPUT, FusionKind.STITCH,
                     FusionKind.LIBRARY, FusionKind.SINGLETON)
        return [g for g in self.groups if g.kind in launching]

    def num_kernels(self) -> int:
        return len(self.kernel_groups())

    def fused_op_count(self) -> int:
        """Compute ops covered by multi-op fused kernels."""
        return sum(g.size for g in self.groups
                   if g.kind in (FusionKind.LOOP, FusionKind.INPUT,
                                 FusionKind.STITCH) and g.size > 1)

    def ordered_groups(self) -> list[FusionGroup]:
        """Groups in a topological execution order.

        Kahn's algorithm over the group-contracted graph (which the
        planner's merge-time cycle checks guarantee is acyclic).  Ties are
        broken by first-member position so the order is deterministic and
        close to program order.
        """
        from collections import deque

        first_position: dict[int, int] = {}
        for position, node in enumerate(self.graph.nodes):
            group = self.group_of.get(node)
            if group is not None:
                first_position.setdefault(group.group_id, position)

        successors: dict[int, set] = {g.group_id: set()
                                      for g in self.groups}
        indegree: dict[int, int] = {g.group_id: 0 for g in self.groups}
        for node in self.graph.nodes:
            consumer = self.group_of.get(node)
            if consumer is None:
                continue
            for operand in node.inputs:
                producer = self.group_of.get(operand)
                if producer is None or producer is consumer:
                    continue
                if consumer.group_id not in successors[producer.group_id]:
                    successors[producer.group_id].add(consumer.group_id)
                    indegree[consumer.group_id] += 1

        by_id = {g.group_id: g for g in self.groups}
        ready = sorted((gid for gid, deg in indegree.items() if deg == 0),
                       key=lambda gid: first_position.get(gid, -1))
        queue = deque(ready)
        order: list[FusionGroup] = []
        while queue:
            gid = queue.popleft()
            order.append(by_id[gid])
            unlocked = []
            for succ in successors[gid]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    unlocked.append(succ)
            for succ in sorted(unlocked,
                               key=lambda g: first_position.get(g, -1)):
                queue.append(succ)
        if len(order) != len(self.groups):
            raise RuntimeError("fusion plan contains a group cycle")
        return order

    def stats(self) -> dict:
        by_kind: dict[str, int] = {}
        for group in self.groups:
            by_kind[group.kind.value] = by_kind.get(group.kind.value, 0) + 1
        return {
            "groups": len(self.groups),
            "kernels": self.num_kernels(),
            "fused_ops": self.fused_op_count(),
            "by_kind": by_kind,
        }
