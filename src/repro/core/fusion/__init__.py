"""Dynamic-shape fusion based on shape information propagation."""

from .kinds import FusionConfig, FusionGroup, FusionKind, FusionPlan
from .legality import (is_last_axis_reduce, is_loop_fusible,
                       loop_edge_compatible, reduce_row_space,
                       stitch_member_role)
from .planner import plan_fusion

__all__ = [
    "FusionConfig", "FusionGroup", "FusionKind", "FusionPlan",
    "is_last_axis_reduce", "is_loop_fusible", "loop_edge_compatible",
    "reduce_row_space", "stitch_member_role",
    "plan_fusion",
]
