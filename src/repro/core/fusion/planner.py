"""The shape-propagation-based fusion planner.

Given a lowered graph and its :class:`ShapeAnalysis`, the planner partitions
all compute nodes into fusion groups in four phases:

1. **kStitch** — grow clusters around last-axis reductions that share a row
   space; a cluster with two or more reductions becomes a stitch kernel
   (softmax, layer-norm, attention-score normalisation, ...).
2. **kInput** — remaining reductions absorb the elementwise producers that
   feed them (one pass over the reduce's input domain).
3. **kLoop** — remaining elementwise/broadcast/reshape nodes merge greedily
   along producer→consumer edges whenever their iteration domains are
   *provably* equal under the symbolic constraints.
4. **Singletons** — whatever is left becomes a library call (``dot``,
   ``conv2d``), a standalone kernel, a free metadata op (lone ``reshape``)
   or a host computation.

Every merge is guarded by an acyclicity check on the group-contracted
graph, so :meth:`FusionPlan.ordered_groups` is always executable.
"""

from __future__ import annotations

from ...ir.graph import Graph
from ...ir.node import Node
from ...ir.ops import OpCategory
from ..symbolic import ShapeAnalysis
from .kinds import FusionConfig, FusionGroup, FusionKind, FusionPlan
from .legality import (is_last_axis_reduce, is_loop_fusible,
                       loop_edge_compatible, reduce_row_space,
                       stitch_member_role)

__all__ = ["plan_fusion"]


def plan_fusion(graph: Graph, analysis: ShapeAnalysis,
                config: FusionConfig | None = None) -> FusionPlan:
    """Partition ``graph`` into fusion groups under ``config``."""
    config = config or FusionConfig()
    planner = _Planner(graph, analysis, config)
    return planner.run()


class _Planner:
    def __init__(self, graph: Graph, analysis: ShapeAnalysis,
                 config: FusionConfig) -> None:
        self.graph = graph
        self.analysis = analysis
        self.config = config
        self.users = graph.users()
        self.assigned: dict[Node, int] = {}
        self.members: dict[int, list[Node]] = {}
        self.kinds: dict[int, FusionKind] = {}
        self._next_group = 0

    # -- bookkeeping -----------------------------------------------------

    def _new_group(self, kind: FusionKind, nodes: list[Node]) -> int:
        gid = self._next_group
        self._next_group += 1
        self.members[gid] = list(nodes)
        self.kinds[gid] = kind
        for node in nodes:
            self.assigned[node] = gid
        return gid

    def _merge_groups(self, into: int, other: int) -> None:
        for node in self.members[other]:
            self.assigned[node] = into
        self.members[into].extend(self.members[other])
        del self.members[other]
        del self.kinds[other]

    def _would_cycle(self, a_members: set, b_members: set) -> bool:
        """True iff fusing ``a_members | b_members`` into one group would
        cycle the group-contracted graph: some path leaves the union and
        re-enters it.  Intermediate nodes already assigned to a group
        are expanded to their whole group — two co-members are mutually
        reachable in the contracted graph without any edge between them,
        which a plain node-level reachability check cannot see.
        """
        union = a_members | b_members
        stack: list = []
        for node in union:
            for user in self.users.get(node, ()):
                if user not in union:
                    stack.append(user)
        seen: set = set()
        while stack:
            node = stack.pop()
            if node in union:
                return True
            if node in seen:
                continue
            gid = self.assigned.get(node)
            group = self.members[gid] if gid is not None else (node,)
            for peer in group:
                if peer in union:
                    return True
                if peer in seen:
                    continue
                seen.add(peer)
                stack.extend(self.users.get(peer, ()))
        return False

    # -- driver ------------------------------------------------------------

    def run(self) -> FusionPlan:
        if self.config.enable_stitch:
            self._plan_stitch()
        if self.config.enable_input:
            self._plan_input()
        if self.config.enable_loop:
            self._plan_loop()
        self._plan_singletons()
        groups = [FusionGroup(gid, self.kinds[gid],
                              self._in_topo_order(nodes))
                  for gid, nodes in self.members.items()]
        return FusionPlan(self.graph, groups)

    def _in_topo_order(self, nodes: list[Node]) -> list[Node]:
        position = {n: i for i, n in enumerate(self.graph.nodes)}
        return sorted(nodes, key=lambda n: position[n])

    # -- phase 1: kStitch ---------------------------------------------------

    def _plan_stitch(self) -> None:
        for seed in self.graph.nodes:
            if seed in self.assigned or not is_last_axis_reduce(seed):
                continue
            rows, reduced = reduce_row_space(seed)
            cluster: set[Node] = {seed}
            reduce_count = 1
            grew = True
            while grew and len(cluster) < self.config.max_group_size:
                grew = False
                for candidate in self._neighbors(cluster):
                    if candidate in self.assigned or candidate in cluster:
                        continue
                    role = stitch_member_role(candidate, rows, reduced,
                                              self.analysis)
                    if role is None:
                        continue
                    if role == "reduce" and reduce_count >= \
                            self.config.max_stitch_reductions:
                        continue
                    if len(cluster) >= self.config.max_group_size:
                        break
                    if self._would_cycle(cluster, {candidate}):
                        continue
                    cluster.add(candidate)
                    if role == "reduce":
                        reduce_count += 1
                    grew = True
            if reduce_count >= 2:
                self._new_group(FusionKind.STITCH, list(cluster))
            # A cluster with a single reduce is better served by kInput
            # fusion (phase 2); leave its nodes unassigned.

    def _neighbors(self, cluster: set) -> list[Node]:
        found: list[Node] = []
        seen: set[Node] = set()
        for node in cluster:
            for operand in node.inputs:
                if operand not in cluster and operand not in seen:
                    seen.add(operand)
                    found.append(operand)
            for user in self.users.get(node, ()):
                if user not in cluster and user not in seen:
                    seen.add(user)
                    found.append(user)
        return found

    # -- phase 2: kInput -------------------------------------------------------

    def _plan_input(self) -> None:
        for root in self.graph.nodes:
            if root in self.assigned or not root.is_reduction:
                continue
            domain = root.inputs[0].shape
            group: set[Node] = {root}
            frontier = [op for op in root.inputs]
            while frontier and len(group) < self.config.max_group_size:
                candidate = frontier.pop()
                if candidate in self.assigned or candidate in group:
                    continue
                if not is_loop_fusible(
                        candidate, self.config.loop_include_reshape):
                    continue
                compatible = (
                    candidate.category is OpCategory.BROADCAST
                    or self.analysis.same_num_elements(candidate.shape,
                                                       domain))
                if not compatible:
                    continue
                if self._would_cycle(group, {candidate}):
                    continue
                group.add(candidate)
                frontier.extend(candidate.inputs)
            if len(group) >= 2:
                self._new_group(FusionKind.INPUT, list(group))
            # A bare reduce stays unassigned; phase 4 makes it a singleton.

    # -- phase 3: kLoop --------------------------------------------------------

    def _plan_loop(self) -> None:
        # Greedy edge contraction in topological order.  Group identity is
        # tracked through self.assigned; unassigned fusible nodes start as
        # fresh single-member loop groups on first touch.
        include_reshape = self.config.loop_include_reshape
        for node in self.graph.nodes:
            if not is_loop_fusible(node, include_reshape) \
                    or node in self.assigned:
                continue
            self._new_group(FusionKind.LOOP, [node])
        for producer in self.graph.nodes:
            gid_p = self.assigned.get(producer)
            if gid_p is None or self.kinds.get(gid_p) is not FusionKind.LOOP:
                continue
            for consumer in self.users.get(producer, ()):
                gid_p = self.assigned[producer]  # may change as we merge
                gid_c = self.assigned.get(consumer)
                if gid_c is None or gid_c == gid_p:
                    continue
                if self.kinds.get(gid_c) is not FusionKind.LOOP:
                    continue
                if not loop_edge_compatible(producer, consumer,
                                            self.analysis,
                                            include_reshape):
                    continue
                size = len(self.members[gid_p]) + len(self.members[gid_c])
                if size > self.config.max_group_size:
                    continue
                a = set(self.members[gid_p])
                b = set(self.members[gid_c])
                if self._would_cycle(a, b):
                    continue
                self._merge_groups(gid_p, gid_c)
        # Loop groups that contain only metadata ops need no kernel.
        for gid, nodes in self.members.items():
            if self.kinds[gid] is not FusionKind.LOOP:
                continue
            if all(n.category is OpCategory.RESHAPE for n in nodes):
                self.kinds[gid] = FusionKind.METADATA

    # -- phase 4: singletons ------------------------------------------------------

    def _plan_singletons(self) -> None:
        for node in self.graph.nodes:
            if node in self.assigned:
                continue
            if node.op in ("parameter", "constant"):
                continue  # sources are not executed
            if node.attrs.get("_placement") == "host":
                self._new_group(FusionKind.HOST, [node])
            elif node.category is OpCategory.SHAPE:
                self._new_group(FusionKind.HOST, [node])
            elif node.category in (OpCategory.DOT, OpCategory.CONV):
                self._new_group(FusionKind.LIBRARY, [node])
            elif node.category is OpCategory.RESHAPE or self._is_view(node):
                self._new_group(FusionKind.METADATA, [node])
            else:
                self._new_group(FusionKind.SINGLETON, [node])

    @staticmethod
    def _is_view(node: Node) -> bool:
        """Ops every stack implements as zero-copy views / folds into the
        consuming GEMM (strided batched matmul): transpose and full-dim
        slices.  Charging them as kernels would penalise every executor
        identically and only add noise."""
        return node.category is OpCategory.TRANSPOSE or node.op == "slice"
