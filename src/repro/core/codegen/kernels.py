"""Fused-kernel compilation: IR fusion groups -> executable Python kernels.

:func:`compile_group` turns one :class:`FusionGroup` into a
:class:`CompiledKernel`:

- **compile time** (here, once per graph): emit Python source computing the
  group's members in topological order, ``exec`` it into a callable, and
  build a :class:`CostRecipe` — symbolic formulas for the kernel's bytes
  moved and flops.
- **run time** (per call, any shape): the callable executes with the
  concrete arrays plus the ``dims`` bindings; the recipe and the selected
  schedule variant instantiate a :class:`KernelSpec` for the device cost
  model.  Nothing is recompiled when shapes change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ...device.cost import KernelSpec, library_efficiency
from ...ir.node import Node
from ...ir.ops import OpCategory, op_info
from ..fusion.kinds import FusionGroup, FusionKind
from ..fusion.legality import is_last_axis_reduce
from .exprs import emit_statement, serialize_shape
from .schedules import HEURISTIC_SELECTOR, Schedule, ScheduleSelector
from .support import SUPPORT_NAMESPACE, _shape

__all__ = ["CompiledKernel", "CostRecipe", "compile_group"]


@dataclass
class CostRecipe:
    """Symbolic byte/flop formulas, evaluated per call against ``dims``."""

    #: (serialized shape, dtype size) per external input read.
    reads: list = field(default_factory=list)
    #: (serialized shape, dtype size) per escaping output written.
    writes: list = field(default_factory=list)
    #: flop terms: ("map", shape, per_element) | ("dot", a, b) |
    #: ("conv", x, w, strides)
    flop_terms: list = field(default_factory=list)
    #: ("loop", root shape) or ("rows", row shape, col dim) or None.
    domain: tuple | None = None

    def eval_bytes(self, dims: dict) -> tuple:
        read = sum(int(np.prod(_shape(s, dims), initial=1)) * size
                   for s, size in self.reads)
        written = sum(int(np.prod(_shape(s, dims), initial=1)) * size
                      for s, size in self.writes)
        return read, written

    def eval_flops(self, dims: dict) -> float:
        total = 0.0
        for term in self.flop_terms:
            kind = term[0]
            if kind == "map":
                __, shape, per_element = term
                total += np.prod(_shape(shape, dims), initial=1) * \
                    per_element
            elif kind == "dot":
                __, a, b = term
                ca = _shape(a, dims)
                cb = _shape(b, dims)
                m, k = ca[-2], ca[-1]
                n = cb[-1]
                batch = int(np.prod(ca[:-2], initial=1))
                batch = max(batch, int(np.prod(cb[:-2], initial=1)))
                total += 2.0 * batch * m * k * n
            elif kind == "conv":
                __, x, w, strides = term
                cx = _shape(x, dims)
                kh, kw, cin, cout = w
                n, h, wd = cx[0], cx[1], cx[2]
                oh = -(-h // strides[0])
                ow = -(-wd // strides[1])
                total += 2.0 * n * oh * ow * kh * kw * cin * cout
            else:
                raise ValueError(f"unknown flop term kind {kind!r}")
        return float(total)


@dataclass
class CompiledKernel:
    """One compiled kernel: callable + cost recipe + schedule set."""

    name: str
    kind: FusionKind
    members: list
    input_nodes: list
    output_nodes: list
    source: str
    fn: Callable
    recipe: CostRecipe
    #: the matmul shapes when kind is LIBRARY (drives library efficiency).
    library_dims: tuple | None = None

    def execute(self, args: Sequence[np.ndarray],
                dims: dict) -> tuple:
        """Run the generated code; returns output arrays (a tuple)."""
        return self.fn(list(args), dims)

    # -- runtime schedule selection + costing --------------------------------

    def domain_extents(self, dims: dict) -> tuple | None:
        """Concrete iteration-domain extents of one launch.

        ``("loop", total, innermost)`` for elementwise kernels,
        ``("rows", rows, cols)`` for row-space reductions, None for
        kernels with no schedulable domain (library, host, metadata).
        The schedule selectors and the autotuner's strategy space both
        work from these extents.
        """
        if self.recipe.domain is None:
            return None
        kind = self.recipe.domain[0]
        if kind == "loop":
            shape = _shape(self.recipe.domain[1], dims)
            total = int(np.prod(shape, initial=1))
            innermost = int(shape[-1]) if shape else 1
            return ("loop", total, innermost)
        if kind == "rows":
            rows = int(np.prod(_shape(self.recipe.domain[1], dims),
                               initial=1))
            cols = int(_shape((self.recipe.domain[2],), dims)[0])
            return ("rows", rows, cols)
        return None

    def select_schedule(self, dims: dict,
                        selector: ScheduleSelector | None = None
                        ) -> Schedule | None:
        """The dispatch stub: pick a variant from the concrete shapes.

        ``selector`` is the selection seam — None means the generic
        shape-threshold heuristics; the autotuner installs per-kernel
        winners through it.
        """
        extents = self.domain_extents(dims)
        if extents is None:
            return None
        if selector is None:
            selector = HEURISTIC_SELECTOR
        kind, major, minor = extents
        if kind == "loop":
            return selector.elementwise(self, major, minor)
        return selector.reduction(self, major, minor)

    def resolve_schedule(self, dims: dict,
                         forced: Schedule | None = None,
                         selector: ScheduleSelector | None = None
                         ) -> Schedule | None:
        """Plan-freezing hook: the variant one launch will actually use.

        With ``forced`` (the E9 ablation) the forced variant is used
        unless its schedule family does not fit this kernel's iteration
        domain — a forced elementwise schedule makes no sense on a
        row-space kernel and vice versa; the selector decides there.
        Both the legacy per-call engine and the launch-plan recorder go
        through this method, so a frozen plan can never disagree with
        what per-call selection would have picked.
        """
        if forced is None:
            return self.select_schedule(dims, selector)
        if self.recipe.domain is not None:
            domain_kind = self.recipe.domain[0]
            if (domain_kind == "rows") != forced.row_space:
                return self.select_schedule(dims, selector)
        return forced

    def cost_spec(self, dims: dict, schedule: Schedule | None,
                  base_efficiency: float = 1.0) -> KernelSpec:
        """Instantiate the cost-model spec for one launch."""
        read, written = self.recipe.eval_bytes(dims)
        flops = self.recipe.eval_flops(dims)
        efficiency = base_efficiency
        extra_launches = 0
        occupancy_exempt = self.kind is FusionKind.LIBRARY
        parallel = max(1, written // 4)
        if self.kind is FusionKind.LIBRARY and self.library_dims:
            a, b = self.library_dims
            ca = _shape(a, dims)
            cb = _shape(b, dims)
            batch = max(int(np.prod(ca[:-2], initial=1)),
                        int(np.prod(cb[:-2], initial=1)))
            m, k, n = ca[-2], ca[-1], cb[-1]
            efficiency = base_efficiency * library_efficiency(
                batch * m, n, k) / 0.85
            parallel = batch * m * n
            occupancy_exempt = True
        elif schedule is not None and self.recipe.domain is not None:
            if self.recipe.domain[0] == "loop":
                shape = _shape(self.recipe.domain[1], dims)
                total = int(np.prod(shape, initial=1))
                eff, parallel = schedule.elementwise_profile(total)
                efficiency = base_efficiency * eff
            else:
                rows = int(np.prod(_shape(self.recipe.domain[1], dims),
                                   initial=1))
                cols = int(_shape((self.recipe.domain[2],), dims)[0])
                eff, parallel = schedule.reduction_profile(rows, cols)
                efficiency = base_efficiency * eff
            extra_launches = schedule.extra_launches
        return KernelSpec(
            name=self.name,
            bytes_read=read,
            bytes_written=written,
            flops=flops,
            parallel_elements=int(parallel),
            efficiency=efficiency,
            extra_launches=extra_launches,
            occupancy_exempt=occupancy_exempt,
        )


# ---------------------------------------------------------------------------
# compilation
# ---------------------------------------------------------------------------

def compile_group(group: FusionGroup, users: dict,
                  graph_outputs: Sequence[Node]) -> CompiledKernel:
    """Emit, compile and cost-annotate one fusion group."""
    members = list(group.members)
    input_nodes = group.inputs()
    output_nodes = group.outputs(users, graph_outputs)
    name = f"{group.kind.value}_{group.group_id}"

    names: dict[Node, str] = {}
    for node in input_nodes + members:
        names[node] = f"v{node.id}"

    lines = [f"def {name}(args, dims):"]
    if input_nodes:
        unpack = ", ".join(names[n] for n in input_nodes)
        trailing = "," if len(input_nodes) == 1 else ""
        lines.append(f"    ({unpack}{trailing}) = args")
    for node in members:
        lines.append("    " + emit_statement(node, names))
    returns = ", ".join(names[n] for n in output_nodes)
    trailing = "," if len(output_nodes) == 1 else ""
    lines.append(f"    return ({returns}{trailing})")
    source = "\n".join(lines)

    namespace = dict(SUPPORT_NAMESPACE)
    exec(compile(source, f"<kernel {name}>", "exec"), namespace)
    fn = namespace[name]

    recipe = _build_recipe(group, members, input_nodes, output_nodes)
    library_dims = None
    if group.kind is FusionKind.LIBRARY and members[0].op == "dot":
        a, b = members[0].inputs
        library_dims = (serialize_shape(a.shape), serialize_shape(b.shape))

    return CompiledKernel(
        name=name,
        kind=group.kind,
        members=members,
        input_nodes=input_nodes,
        output_nodes=output_nodes,
        source=source,
        fn=fn,
        recipe=recipe,
        library_dims=library_dims,
    )


def _build_recipe(group: FusionGroup, members: list, input_nodes: list,
                  output_nodes: list) -> CostRecipe:
    recipe = CostRecipe()
    for node in input_nodes:
        uses = [(member, i) for member in members
                for i, operand in enumerate(member.inputs)
                if operand is node]
        if uses and all(member.op == "gather" and i == 0
                        for member, i in uses):
            # A table only ever indexed by gathers: the kernel touches the
            # gathered rows, not the whole (potentially huge) table.
            for member, __ in uses:
                recipe.reads.append((serialize_shape(member.shape),
                                     node.dtype.size))
        else:
            recipe.reads.append((serialize_shape(node.shape),
                                 node.dtype.size))
    for node in output_nodes:
        recipe.writes.append((serialize_shape(node.shape), node.dtype.size))
    for node in members:
        info = op_info(node.op)
        category = node.category
        if category is OpCategory.ELEMENTWISE:
            recipe.flop_terms.append(
                ("map", serialize_shape(node.shape),
                 info.flops_per_element))
        elif category is OpCategory.REDUCTION:
            recipe.flop_terms.append(
                ("map", serialize_shape(node.inputs[0].shape), 1.0))
        elif category is OpCategory.DOT:
            a, b = node.inputs
            recipe.flop_terms.append(
                ("dot", serialize_shape(a.shape), serialize_shape(b.shape)))
        elif category is OpCategory.CONV:
            x, w = node.inputs
            recipe.flop_terms.append(
                ("conv", serialize_shape(x.shape),
                 tuple(int(d) for d in w.shape),
                 tuple(node.attrs.get("strides", (1, 1)))))
        elif category is OpCategory.COMPOSITE:
            per_element = {"softmax": 8.0, "layer_norm": 10.0,
                           "gelu": 12.0}.get(node.op, 4.0)
            recipe.flop_terms.append(
                ("map", serialize_shape(node.shape), per_element))
        elif category in (OpCategory.DATA_MOVEMENT, OpCategory.TRANSPOSE):
            recipe.flop_terms.append(
                ("map", serialize_shape(node.shape), 0.5))
        # broadcast/reshape/shape ops: no flops.
    recipe.domain = _schedule_domain(group, members)
    return recipe


def _schedule_domain(group: FusionGroup, members: list) -> tuple | None:
    """What iteration space drives schedule selection for this kernel."""
    if group.kind in (FusionKind.INPUT, FusionKind.STITCH):
        for node in members:
            if is_last_axis_reduce(node):
                in_shape = node.inputs[0].shape
                return ("rows", serialize_shape(in_shape[:-1]),
                        serialize_shape((in_shape[-1],))[0])
        # A kInput group whose reduce is not last-axis: schedule over the
        # reduce's input domain as a flat loop.
        for node in members:
            if node.is_reduction:
                return ("loop", serialize_shape(node.inputs[0].shape))
    if group.kind in (FusionKind.LOOP, FusionKind.SINGLETON):
        root = members[-1]
        if root.shape:
            return ("loop", serialize_shape(root.shape))
        return ("loop", (1,))
    return None
