"""Per-op Python expression emission for generated kernels.

:func:`emit_statement` renders one IR node as a Python assignment over
previously-defined value names.  Symbolic shapes in attributes are
serialized as tuples of ``int | str`` (symbol name) and resolved by the
support library against the per-call ``dims`` bindings.
"""

from __future__ import annotations

from ...ir.node import Node
from ...ir.shapes import Dim, SymDim

__all__ = ["emit_statement", "serialize_shape"]


def serialize_shape(shape) -> tuple:
    """Symbolic shape -> literal tuple of ints and symbol-name strings."""
    return tuple(d.name if isinstance(d, SymDim) else int(d) for d in shape)


_INFIX = {"add": "+", "sub": "-", "mul": "*", "pow": "**"}
_COMPARE = {"eq": "==", "ne": "!=", "lt": "<", "le": "<=", "gt": ">",
            "ge": ">="}
_NP_UNARY = {"neg": "np.negative", "abs": "np.abs", "exp": "np.exp",
             "log": "np.log", "sqrt": "np.sqrt", "tanh": "np.tanh",
             "floor": "np.floor", "sign": "np.sign"}
_SUPPORT_UNARY = {"erf": "_erf", "sigmoid": "_sigmoid", "rsqrt": "_rsqrt",
                  "relu": "_relu"}
_REDUCE_FN = {"sum": "np.sum", "max": "np.max", "min": "np.min",
              "mean": "np.mean", "prod": "np.prod",
              "argmax": "np.argmax", "argmin": "np.argmin"}


class EmitError(ValueError):
    """An op reached codegen that has no expression form."""


def emit_statement(node: Node, names: dict[Node, str]) -> str:
    """Render ``node`` as ``<out> = <expr>`` given operand value names."""
    out = names[node]
    args = [names[operand] for operand in node.inputs]
    expr = _emit_expr(node, args)
    return f"{out} = {expr}"


def _emit_expr(node: Node, args: list[str]) -> str:
    op = node.op
    if op in _INFIX:
        return f"({args[0]} {_INFIX[op]} {args[1]})"
    if op in _COMPARE:
        return f"({args[0]} {_COMPARE[op]} {args[1]})"
    if op in _NP_UNARY:
        return f"{_NP_UNARY[op]}({args[0]})"
    if op in _SUPPORT_UNARY:
        return f"{_SUPPORT_UNARY[op]}({args[0]})"
    if op == "div":
        return f"_div({args[0]}, {args[1]})"
    if op == "maximum":
        return f"np.maximum({args[0]}, {args[1]})"
    if op == "minimum":
        return f"np.minimum({args[0]}, {args[1]})"
    if op == "select":
        return f"np.where({args[0]}, {args[1]}, {args[2]})"
    if op == "cast":
        return f"{args[0]}.astype(np.{node.attrs['dtype'].np_dtype.name})"
    if op == "broadcast_in_dim":
        shape = serialize_shape(node.attrs["out_shape"])
        bdims = tuple(node.attrs["broadcast_dims"])
        return f"_broadcast({args[0]}, {shape!r}, {bdims!r}, dims)"
    if op == "reshape":
        shape = serialize_shape(node.attrs["new_shape"])
        return f"_reshape({args[0]}, {shape!r}, dims)"
    if op == "transpose":
        return f"np.ascontiguousarray(np.transpose({args[0]}, " \
               f"{tuple(node.attrs['perm'])!r}))"
    if op == "slice":
        starts = tuple(node.attrs["starts"])
        limits = serialize_shape(node.attrs["limits"])
        strides = tuple(node.attrs.get("strides")
                        or (1,) * len(node.inputs[0].shape))
        return (f"_slice({args[0]}, {starts!r}, {limits!r}, {strides!r}, "
                f"dims)")
    if op == "concat":
        joined = ", ".join(args)
        return f"np.concatenate(({joined},), axis={node.attrs['axis']})"
    if op == "gather":
        axis = node.attrs.get("axis", 0)
        return f"_gather({args[0]}, {args[1]}, {axis})"
    if op == "reduce":
        kind = node.attrs["kind"]
        fn = _REDUCE_FN[kind]
        axes = tuple(node.attrs["axes"])
        keepdims = bool(node.attrs.get("keepdims", False))
        np_name = node.dtype.np_dtype.name
        axis_arg = axes[0] if kind in ("argmax", "argmin") else axes
        return (f"np.asarray({fn}({args[0]}, axis={axis_arg!r}, "
                f"keepdims={keepdims}), dtype=np.{np_name})")
    if op == "pad":
        pads = tuple(tuple(p) for p in node.attrs["pads"])
        value = node.attrs.get("value", 0)
        return f"np.pad({args[0]}, {pads!r}, constant_values={value!r})"
    if op == "dot":
        return f"np.matmul({args[0]}, {args[1]})"
    if op == "conv2d":
        strides = tuple(node.attrs.get("strides", (1, 1)))
        padding = node.attrs.get("padding", "same")
        return f"_conv2d({args[0]}, {args[1]}, {strides!r}, {padding!r})"
    if op == "iota":
        shape = serialize_shape(node.attrs["shape"])
        dtype = node.attrs.get("dtype")
        np_name = dtype.np_dtype.name if dtype is not None else "int64"
        return f"_iota({shape!r}, {node.attrs['axis']}, np.{np_name}, dims)"
    if op == "softmax":
        return f"_softmax({args[0]}, {node.attrs.get('axis', -1)})"
    if op == "layer_norm":
        eps = node.attrs.get("eps", 1e-5)
        return f"_layer_norm({args[0]}, {args[1]}, {args[2]}, {eps!r})"
    if op == "gelu":
        return f"_gelu({args[0]})"
    if op == "shape_of":
        return f"np.asarray({args[0]}.shape, dtype=np.int64)"
    if op == "dim_size":
        return (f"np.asarray({args[0]}.shape[{node.attrs['axis']}], "
                f"dtype=np.int64)")
    raise EmitError(f"no expression form for op {op!r} "
                    f"(composites must be lowered before codegen)")
