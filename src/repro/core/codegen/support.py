"""Runtime support library linked into every generated kernel.

Generated kernel source is plain Python over numpy, produced once at
compile time.  Anything shape-dependent is deferred to these helpers, which
take the per-call ``dims`` bindings (symbol name -> int) — this is the
"runtime half" of the paper's compile-time/runtime combined codegen: the
kernel *structure* is fixed at compile time, while extents, broadcast
shapes and reshape targets are resolved per invocation.

``_reshape`` may *bind* a previously unseen symbol (solved from the element
count), extending ``dims`` for later statements in the same executable.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import special as _special

__all__ = ["SUPPORT_NAMESPACE"]


def _dim(value, dims: dict) -> int:
    """Resolve one serialized dim: an int, or a symbol name in ``dims``."""
    if isinstance(value, str):
        return int(dims[value])
    return int(value)


def _shape(template, dims: dict) -> tuple:
    return tuple(_dim(d, dims) for d in template)


def _broadcast(x: np.ndarray, out_template, broadcast_dims,
               dims: dict) -> np.ndarray:
    out_shape = _shape(out_template, dims)
    expand = [1] * len(out_shape)
    for in_pos, out_pos in enumerate(broadcast_dims):
        expand[out_pos] = x.shape[in_pos]
    return np.broadcast_to(x.reshape(expand), out_shape)


def _reshape(x: np.ndarray, new_template, dims: dict) -> np.ndarray:
    known = 1
    unknown = None
    resolved = []
    for d in new_template:
        if isinstance(d, str) and d not in dims:
            if unknown is not None:
                raise ValueError(
                    f"reshape target {new_template} has two unbound "
                    f"symbols")
            unknown = d
            resolved.append(-1)
            continue
        value = _dim(d, dims)
        known *= value
        resolved.append(value)
    if unknown is not None:
        total = x.size
        if known == 0 or total % known != 0:
            raise ValueError(
                f"cannot solve {unknown}: {total} elements vs known "
                f"extent {known}")
        dims[unknown] = total // known
        resolved = [dims[unknown] if r == -1 else r for r in resolved]
    return np.reshape(x, tuple(resolved))


def _iota(shape_template, axis: int, np_dtype, dims: dict) -> np.ndarray:
    shape = _shape(shape_template, dims)
    vec = np.arange(shape[axis], dtype=np_dtype)
    expand = [1] * len(shape)
    expand[axis] = shape[axis]
    return np.broadcast_to(vec.reshape(expand), shape).copy()


def _erf(x: np.ndarray) -> np.ndarray:
    return _special.erf(x).astype(x.dtype, copy=False)


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return _special.expit(x).astype(x.dtype, copy=False)


def _rsqrt(x: np.ndarray) -> np.ndarray:
    return (1.0 / np.sqrt(x)).astype(x.dtype, copy=False)


def _relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, np.asarray(0, dtype=x.dtype))


def _div(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    if np.issubdtype(a.dtype, np.integer) and np.issubdtype(
            b.dtype, np.integer):
        return a // b
    return a / b


def _softmax(x: np.ndarray, axis: int) -> np.ndarray:
    shifted = x - np.max(x, axis=axis, keepdims=True)
    e = np.exp(shifted)
    return (e / np.sum(e, axis=axis, keepdims=True)).astype(
        x.dtype, copy=False)


def _layer_norm(x, scale, bias, eps):
    mean = np.mean(x, axis=-1, keepdims=True)
    var = np.mean((x - mean) ** 2, axis=-1, keepdims=True)
    normed = (x - mean) / np.sqrt(var + eps)
    return (normed * scale + bias).astype(x.dtype, copy=False)


def _gelu(x: np.ndarray) -> np.ndarray:
    return (x * 0.5 * (1.0 + _special.erf(
        x / math.sqrt(2.0)))).astype(x.dtype, copy=False)


def _conv2d(x, w, strides, padding):
    from ...numerics.kernels import _k_conv2d
    return _k_conv2d([x, w], {"strides": strides, "padding": padding})


def _gather(operand, indices, axis):
    return np.take(operand, indices.astype(np.int64), axis=axis)


def _slice(x, starts, limits, strides, dims):
    resolved_limits = tuple(_dim(h, dims) for h in limits)
    index = tuple(slice(int(lo), int(hi), int(st))
                  for lo, hi, st in zip(starts, resolved_limits, strides))
    return x[index]


#: Names injected into the namespace every generated kernel executes in.
SUPPORT_NAMESPACE = {
    "np": np,
    "math": math,
    "_broadcast": _broadcast,
    "_reshape": _reshape,
    "_iota": _iota,
    "_erf": _erf,
    "_softmax": _softmax,
    "_layer_norm": _layer_norm,
    "_gelu": _gelu,
    "_sigmoid": _sigmoid,
    "_rsqrt": _rsqrt,
    "_relu": _relu,
    "_div": _div,
    "_conv2d": _conv2d,
    "_gather": _gather,
    "_slice": _slice,
    "_shape": _shape,
}
