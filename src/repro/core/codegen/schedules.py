"""Schedule variants and runtime schedule selection.

A static-shape compiler bakes one schedule (tiling, vectorisation, launch
dims) into each kernel, chosen from the concrete shape.  With unknown
shapes BladeDISC instead emits a *small set* of schedule variants per
kernel at compile time and selects among them at run time from the actual
shapes — a few integer comparisons per launch, no recompilation.

The variants modelled here are the ones the paper's kernels need:

- elementwise kernels: a flat thread-per-element schedule, plus a
  vectorised (``float4``) one applicable when the innermost extent is a
  multiple of 4;
- reduction/stitch kernels over row spaces: ``row_per_warp`` (one warp per
  row — best for many short rows), ``row_per_block`` (one thread block per
  row — best for long rows) and ``two_pass`` (grid-wide tree reduction for
  extreme rows, costing one extra launch).

Each variant supplies the cost model with an efficiency factor and the
parallelism it exposes; the *selector* chooses using the same shape
thresholds a generated kernel's dispatch stub would use.  Experiment E9
verifies the selector tracks the per-shape best variant.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Schedule", "ELEMENTWISE_SCHEDULES", "REDUCTION_SCHEDULES",
           "select_elementwise", "select_reduction", "schedule_named"]


@dataclass(frozen=True)
class Schedule:
    """One generated schedule variant of a kernel."""

    name: str
    #: extra kernel launches this schedule needs beyond the first.
    extra_launches: int = 0

    @property
    def row_space(self) -> bool:
        """True for schedules over a row space (reduction family).

        The launch planner and the E9 forced-schedule ablation both need
        to know whether a variant is applicable to a kernel's iteration
        domain; keying on the family here keeps that decision in one
        place instead of hard-coded name lists at the call sites.
        """
        return self.name in ("row_per_warp", "row_per_block", "two_pass")

    # Efficiency / parallelism are functions of the *concrete* iteration
    # space, evaluated at run time when the shapes are known.

    def elementwise_profile(self, total_elements: int) -> tuple:
        """(efficiency, parallel_elements) for a flat loop kernel."""
        if self.name == "vectorized4":
            return 1.0, total_elements
        if self.name == "flat":
            return 0.82, total_elements
        raise ValueError(f"{self.name} is not an elementwise schedule")

    def reduction_profile(self, rows: int, cols: int) -> tuple:
        """(efficiency, parallel_elements) for a row-space kernel."""
        if self.name == "row_per_warp":
            # One 32-lane warp per row: great while rows supply enough
            # warps and the row fits in-register; collapses on long rows.
            eff = 0.95 if cols <= 2048 else 0.30
            return eff, rows * 32
        if self.name == "row_per_block":
            # One 256-thread block per row: wins on long rows, wastes the
            # block on short ones.
            eff = 0.90 if cols > 256 else 0.45
            return eff, rows * 256
        if self.name == "two_pass":
            # Grid-wide tree reduction: full parallelism, extra launch,
            # intermediate traffic folded into a lower efficiency.
            return 0.70, rows * cols
        raise ValueError(f"{self.name} is not a reduction schedule")


FLAT = Schedule("flat")
VECTORIZED4 = Schedule("vectorized4")
ROW_PER_WARP = Schedule("row_per_warp")
ROW_PER_BLOCK = Schedule("row_per_block")
TWO_PASS = Schedule("two_pass", extra_launches=1)

ELEMENTWISE_SCHEDULES = (VECTORIZED4, FLAT)
REDUCTION_SCHEDULES = (ROW_PER_WARP, ROW_PER_BLOCK, TWO_PASS)

_BY_NAME = {s.name: s for s in ELEMENTWISE_SCHEDULES + REDUCTION_SCHEDULES}


def schedule_named(name: str) -> Schedule:
    return _BY_NAME[name]


def select_elementwise(total_elements: int, innermost: int) -> Schedule:
    """Runtime dispatch stub for elementwise kernels."""
    if innermost % 4 == 0 and total_elements >= 4:
        return VECTORIZED4
    return FLAT


def select_reduction(rows: int, cols: int) -> Schedule:
    """Runtime dispatch stub for reduction/stitch kernels.

    Thresholds mirror the efficiency cliffs above: warp-per-row for many
    short rows, block-per-row once rows alone provide enough blocks to
    fill the device, two-pass when rows are too few for row-parallel
    schedules to reach occupancy.
    """
    if cols <= 256 and rows >= 4096:
        # Short rows in bulk: one warp per row supplies enough warps to
        # fill the device, and a block per row would waste 7/8 of it.
        return ROW_PER_WARP
    if rows >= 512 or cols <= 1024:
        return ROW_PER_BLOCK
    return TWO_PASS
