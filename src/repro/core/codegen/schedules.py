"""Schedule variants, runtime schedule selection, and the selection seam.

A static-shape compiler bakes one schedule (tiling, vectorisation, launch
dims) into each kernel, chosen from the concrete shape.  With unknown
shapes BladeDISC instead emits a *small set* of schedule variants per
kernel at compile time and selects among them at run time from the actual
shapes — a few integer comparisons per launch, no recompilation.

The variants modelled here come in two populations:

- the **generic dispatch variants** every kernel ships: a flat
  thread-per-element elementwise schedule plus a vectorised (``float4``)
  one, and three row-space reduction schedules (``row_per_warp``,
  ``row_per_block``, ``two_pass``).  Their dispatch stub is the pair of
  heuristics :func:`select_elementwise` / :func:`select_reduction`;
- the **tuned variants** the schedule autotuner (:mod:`repro.tuning`)
  specialises per signature: a parameterised row-tile family
  (``row_tile_t{threads}v{vector}[s{split}]`` — block size, per-lane
  vector width, optional column-space split paying one combine launch)
  and parameterised elementwise vector widths (``ew_vec{width}``).
  Because a tuned variant is generated for *one* concrete tile, its
  profile tops out closer to peak than the generic variants, whose
  efficiency cliffs price in their shape-agnostic dispatch.

Each variant supplies the cost model with an efficiency factor and the
parallelism it exposes.  :class:`ScheduleSelector` is the selection seam:
the engines never call the heuristic functions directly, they ask a
selector, so an autotuned (or adversarial) policy can replace the
heuristics per kernel without touching the engines.  Experiment E9
verifies the selector tracks the per-shape best variant and measures the
tuned variants against it.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

__all__ = ["Schedule", "ELEMENTWISE_SCHEDULES", "EW_VECTOR_WIDTHS",
           "REDUCTION_SCHEDULES", "ROW_TILE_VECTOR_WIDTHS",
           "ScheduleSelector", "HEURISTIC_SELECTOR", "elementwise_vec",
           "row_tile", "select_elementwise", "select_reduction",
           "schedule_named"]


#: efficiency of a tuned elementwise kernel by vector width.  Width 1
#: matches the generic flat schedule; width 4 the float4 one; width 8
#: trades register pressure for wider loads and lands just under.
_EW_VEC_EFF = {1: 0.82, 2: 0.90, 4: 1.0, 8: 0.97}

#: memory-stream efficiency of a tuned row tile by vector width, before
#: the utilisation and split penalties below.  A perfectly-utilised
#: float4 tile is a single streaming pass — it reaches the same peak as
#: the vectorised elementwise schedule; narrower accesses trail it.
_ROW_VEC_EFF = {1: 0.90, 2: 0.96, 4: 1.0}

#: the vector widths each tuned family can be generated for — the
#: autotuner's strategy space intersects its width grid with these.
EW_VECTOR_WIDTHS = tuple(sorted(_EW_VEC_EFF))
ROW_TILE_VECTOR_WIDTHS = tuple(sorted(_ROW_VEC_EFF))


@dataclass(frozen=True)
class Schedule:
    """One generated schedule variant of a kernel.

    The generic dispatch variants are identified by name alone (all the
    parameter fields at their defaults, exactly as before the tuner
    existed).  Tuned variants carry their tile parameters: ``block_threads``
    lanes per row block, ``vector_width`` elements per lane access, and
    ``col_split`` column-space segments (``> 1`` adds a combine launch).
    """

    name: str
    #: extra kernel launches this schedule needs beyond the first.
    extra_launches: int = 0
    #: tuned row tile: threads per block (0 = not a tuned row tile).
    block_threads: int = 0
    #: tuned vector width in elements (0 = not a tuned variant).
    vector_width: int = 0
    #: tuned column-space split factor (1 = whole row per block).
    col_split: int = 1

    @property
    def row_space(self) -> bool:
        """True for schedules over a row space (reduction family).

        The launch planner and the E9 forced-schedule ablation both need
        to know whether a variant is applicable to a kernel's iteration
        domain; keying on the family here keeps that decision in one
        place instead of hard-coded name lists at the call sites.
        """
        return self.block_threads > 0 or \
            self.name in ("row_per_warp", "row_per_block", "two_pass")

    @property
    def tuned(self) -> bool:
        """True for autotuner-generated variants (parameterised tiles)."""
        return self.block_threads > 0 or self.vector_width > 0

    # Efficiency / parallelism are functions of the *concrete* iteration
    # space, evaluated at run time when the shapes are known.

    def elementwise_profile(self, total_elements: int) -> tuple:
        """(efficiency, parallel_elements) for a flat loop kernel."""
        if self.name == "vectorized4":
            return 1.0, total_elements
        if self.name == "flat":
            return 0.82, total_elements
        if self.vector_width and not self.block_threads:
            return _EW_VEC_EFF[self.vector_width], total_elements
        raise ValueError(f"{self.name} is not an elementwise schedule")

    def reduction_profile(self, rows: int, cols: int) -> tuple:
        """(efficiency, parallel_elements) for a row-space kernel."""
        if self.name == "row_per_warp":
            # One 32-lane warp per row: great while rows supply enough
            # warps and the row fits in-register; collapses on long rows.
            eff = 0.95 if cols <= 2048 else 0.30
            return eff, rows * 32
        if self.name == "row_per_block":
            # One 256-thread block per row: wins on long rows, wastes the
            # block on short ones.
            eff = 0.90 if cols > 256 else 0.45
            return eff, rows * 256
        if self.name == "two_pass":
            # Grid-wide tree reduction: full parallelism, extra launch,
            # intermediate traffic folded into a lower efficiency.
            return 0.70, rows * cols
        if self.block_threads:
            # Tuned row tile: each of ``col_split`` segments of a row is
            # handled by one ``block_threads``-lane block issuing
            # ``vector_width``-wide accesses.  Idle lanes (tile overshoots
            # the segment) waste block slots the same way row_per_block's
            # cliff does, just continuously; splitting pays combine
            # traffic.  Parallelism counts every launched lane times its
            # vector width — the same launched-work convention the
            # generic row schedules use (``row_per_block`` claims
            # ``rows * 256`` even on short rows); the overshoot pruning
            # rule bounds how much idle-lane credit a tile can claim.
            threads, width = self.block_threads, self.vector_width
            split = self.col_split
            segment = -(-cols // split)
            active = min(threads, -(-segment // width))
            utilisation = active / threads
            eff = _ROW_VEC_EFF[width] * (0.55 + 0.45 * utilisation)
            if split > 1:
                eff *= 0.92
            parallel = max(1, rows * split * threads * width)
            return eff, parallel
        raise ValueError(f"{self.name} is not a reduction schedule")


def elementwise_vec(width: int) -> Schedule:
    """The tuned elementwise variant with ``width``-element vector lanes."""
    if width not in _EW_VEC_EFF:
        raise ValueError(f"unsupported elementwise vector width {width}; "
                         f"supported: {sorted(_EW_VEC_EFF)}")
    return Schedule(f"ew_vec{width}", vector_width=width)


def row_tile(threads: int, width: int = 1, split: int = 1) -> Schedule:
    """The tuned row-tile reduction variant ``(threads, width, split)``."""
    if threads < 1 or width not in _ROW_VEC_EFF or split < 1:
        raise ValueError(
            f"unsupported row tile t={threads} v={width} s={split}; "
            f"vector widths: {sorted(_ROW_VEC_EFF)}")
    name = f"row_tile_t{threads}v{width}"
    if split > 1:
        name += f"s{split}"
    return Schedule(name, extra_launches=1 if split > 1 else 0,
                    block_threads=threads, vector_width=width,
                    col_split=split)


FLAT = Schedule("flat")
VECTORIZED4 = Schedule("vectorized4")
ROW_PER_WARP = Schedule("row_per_warp")
ROW_PER_BLOCK = Schedule("row_per_block")
TWO_PASS = Schedule("two_pass", extra_launches=1)

ELEMENTWISE_SCHEDULES = (VECTORIZED4, FLAT)
REDUCTION_SCHEDULES = (ROW_PER_WARP, ROW_PER_BLOCK, TWO_PASS)

_BY_NAME = {s.name: s for s in ELEMENTWISE_SCHEDULES + REDUCTION_SCHEDULES}

_ROW_TILE_RE = re.compile(r"row_tile_t(\d+)v(\d+)(?:s(\d+))?\Z")
_EW_VEC_RE = re.compile(r"ew_vec(\d+)\Z")


def schedule_named(name: str) -> Schedule:
    """Look up a variant by name.

    Generic variants resolve to their interned instances; tuned-family
    names (``row_tile_t{t}v{v}[s{s}]``, ``ew_vec{w}``) are parsed back
    into parameterised schedules, so a schedule name recorded in a
    ``RunStats``/``LaunchPlan`` always round-trips.
    """
    schedule = _BY_NAME.get(name)
    if schedule is not None:
        return schedule
    match = _ROW_TILE_RE.fullmatch(name)
    if match is not None:
        return row_tile(int(match.group(1)), int(match.group(2)),
                        int(match.group(3) or 1))
    match = _EW_VEC_RE.fullmatch(name)
    if match is not None:
        return elementwise_vec(int(match.group(1)))
    raise KeyError(
        f"unknown schedule {name!r}; valid names: {sorted(_BY_NAME)}, "
        f"plus the tuned families 'row_tile_t<threads>v<width>[s<split>]' "
        f"and 'ew_vec<width>'")


def select_elementwise(total_elements: int, innermost: int) -> Schedule:
    """Runtime dispatch stub for elementwise kernels."""
    if innermost % 4 == 0 and total_elements >= 4:
        return VECTORIZED4
    return FLAT


def select_reduction(rows: int, cols: int) -> Schedule:
    """Runtime dispatch stub for reduction/stitch kernels.

    Thresholds mirror the efficiency cliffs above: warp-per-row for many
    short rows, block-per-row once rows alone provide enough blocks to
    fill the device, two-pass when rows are too few for row-parallel
    schedules to reach occupancy.
    """
    if cols <= 256 and rows >= 4096:
        # Short rows in bulk: one warp per row supplies enough warps to
        # fill the device, and a block per row would waste 7/8 of it.
        return ROW_PER_WARP
    if rows >= 512 or cols <= 1024:
        return ROW_PER_BLOCK
    return TWO_PASS


class ScheduleSelector:
    """The schedule-selection seam.

    Engines hand every schedulable kernel's concrete iteration domain to
    a selector; this base class implements the generic dispatch-stub
    heuristics, and richer policies (the autotuner's per-kernel winners,
    the E9 adversarial worst-case) subclass it.  ``kernel`` is the
    :class:`~repro.core.codegen.kernels.CompiledKernel` being launched,
    so per-kernel policies can key on its identity.
    """

    def elementwise(self, kernel, total_elements: int,
                    innermost: int) -> Schedule:
        return select_elementwise(total_elements, innermost)

    def reduction(self, kernel, rows: int, cols: int) -> Schedule:
        return select_reduction(rows, cols)


#: the default policy: the shape-threshold dispatch stubs above.
HEURISTIC_SELECTOR = ScheduleSelector()
