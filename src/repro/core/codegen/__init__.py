"""Compile-time + runtime combined code generation."""

from .exprs import emit_statement, serialize_shape
from .kernels import CompiledKernel, CostRecipe, compile_group
from .schedules import (ELEMENTWISE_SCHEDULES, HEURISTIC_SELECTOR,
                        REDUCTION_SCHEDULES, Schedule, ScheduleSelector,
                        elementwise_vec, row_tile, schedule_named,
                        select_elementwise, select_reduction)
from .support import SUPPORT_NAMESPACE

__all__ = [
    "emit_statement", "serialize_shape",
    "CompiledKernel", "CostRecipe", "compile_group",
    "ELEMENTWISE_SCHEDULES", "HEURISTIC_SELECTOR", "REDUCTION_SCHEDULES",
    "Schedule", "ScheduleSelector", "elementwise_vec", "row_tile",
    "schedule_named", "select_elementwise", "select_reduction",
    "SUPPORT_NAMESPACE",
]
