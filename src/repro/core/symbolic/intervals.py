"""Interval abstract domain over symbolic shape dims.

Everything the runtime freezes per signature — launch plans, memory
plans, batch plans — must be correct for *every* shape in the signature
class, not just the concrete shapes that happened to be recorded or
fuzzed.  This module is the prover those whole-class claims rest on:

- :class:`Interval` — a sound ``[lo, hi]`` range (either side may be
  unbounded) with the arithmetic the derived-dim semantics of
  ``numerics/resolve.py`` need: sums (concat), offsets (pad), ceil/floor
  division (conv2d, reshape solving) and products (element counts,
  byte sizes);
- :class:`IntervalFact` — an interval plus the blame chain of
  constraint-store facts and derivations that produced it;
- :func:`derive_intervals` — seeds one fact per symbol from the
  constraint store (class constants, explicit ``assume_range`` facts,
  the default extent domain ``v >= 1``) and then runs a forward
  abstract interpreter over the graph, mirroring the derivations of
  ``DimResolutionPlan`` (reshape solving with product-term
  cancellation, concat sums, pad offsets, conv2d spatial arithmetic);
- :func:`check_dynamic_bindings` — the dynamic cross-check the fuzz
  oracle runs: every concretely resolved symbol must lie inside its
  statically derived interval.

Likely-value hints (``SymDim.hint`` / ``note_likely_value``) are
deliberately *not* bounds: they ride along as annotations on each fact
(witness selection, waste estimates) but never narrow an interval —
only class constants and explicit ``assume_range`` facts are proven.

The ``repro.lint`` L6xx analyzers (``lint/interval_checks.py``) consume
the map: empty intervals (L601), symbolic memory-plan overlap (L602),
launch-plan signature coverage (L603), batch-bucket ceilings (L604) and
possible zero/negative extents reaching division sites (L605).
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass

from ...ir.shapes import SymDim, format_shape
from .analysis import collect_node_facts
from .constraints import ConstraintStore

__all__ = [
    "Interval",
    "IntervalFact",
    "Hazard",
    "IntervalMap",
    "derive_intervals",
    "check_dynamic_bindings",
]


def _num(bound, sign: float) -> float:
    """A bound as a number; ``None`` maps to ``sign * inf``."""
    return sign * math.inf if bound is None else float(bound)


def _bound(value: float) -> int | None:
    """A number back to a bound; infinities map to ``None``."""
    if math.isinf(value):
        return None
    return int(value)


def _mul(a: float, b: float) -> float:
    """Product with the convention ``0 * inf == 0``.

    Sound for interval endpoints: the other factor is always finite at
    any concrete shape, so the concrete product is exactly 0.
    """
    if a == 0 or b == 0:
        return 0.0
    return a * b


@dataclass(frozen=True)
class Interval:
    """A closed integer range; ``None`` means unbounded on that side."""

    lo: int | None
    hi: int | None

    # -- constructors ------------------------------------------------------

    @staticmethod
    def point(value: int) -> "Interval":
        return Interval(int(value), int(value))

    @staticmethod
    def at_least(lo: int) -> "Interval":
        return Interval(int(lo), None)

    @staticmethod
    def top() -> "Interval":
        return Interval(None, None)

    @staticmethod
    def empty() -> "Interval":
        return Interval(1, 0)

    # -- predicates --------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return self.lo is not None and self.hi is not None \
            and self.lo > self.hi

    @property
    def is_point(self) -> bool:
        return self.lo is not None and self.lo == self.hi

    def contains(self, value: int) -> bool:
        if self.is_empty:
            return False
        if self.lo is not None and value < self.lo:
            return False
        if self.hi is not None and value > self.hi:
            return False
        return True

    def can_be_nonpositive(self) -> bool:
        """True when some member of the range is <= 0."""
        return not self.is_empty and (self.lo is None or self.lo <= 0)

    def can_be_positive(self) -> bool:
        """True when some member of the range is > 0."""
        return not self.is_empty and (self.hi is None or self.hi > 0)

    # -- lattice -----------------------------------------------------------

    def join(self, other: "Interval") -> "Interval":
        """Union hull: the smallest interval containing both."""
        if self.is_empty:
            return other
        if other.is_empty:
            return self
        lo = None if self.lo is None or other.lo is None \
            else min(self.lo, other.lo)
        hi = None if self.hi is None or other.hi is None \
            else max(self.hi, other.hi)
        return Interval(lo, hi)

    def meet(self, other: "Interval") -> "Interval":
        """Intersection; may be empty."""
        if self.is_empty or other.is_empty:
            return Interval.empty()
        lo = other.lo if self.lo is None else (
            self.lo if other.lo is None else max(self.lo, other.lo))
        hi = other.hi if self.hi is None else (
            self.hi if other.hi is None else min(self.hi, other.hi))
        return Interval(lo, hi)

    def widen(self, newer: "Interval") -> "Interval":
        """Standard widening: drop any bound the new value moved past."""
        if self.is_empty:
            return newer
        if newer.is_empty:
            return self
        lo = self.lo if self.lo is not None and newer.lo is not None \
            and newer.lo >= self.lo else None
        hi = self.hi if self.hi is not None and newer.hi is not None \
            and newer.hi <= self.hi else None
        return Interval(lo, hi)

    # -- arithmetic (all sound over-approximations) ------------------------

    def add(self, other: "Interval") -> "Interval":
        if self.is_empty or other.is_empty:
            return Interval.empty()
        return Interval(
            _bound(_num(self.lo, -1) + _num(other.lo, -1)),
            _bound(_num(self.hi, 1) + _num(other.hi, 1)))

    def add_const(self, delta: int) -> "Interval":
        return self.add(Interval.point(delta))

    def sub(self, other: "Interval") -> "Interval":
        if self.is_empty or other.is_empty:
            return Interval.empty()
        return Interval(
            _bound(_num(self.lo, -1) - _num(other.hi, 1)),
            _bound(_num(self.hi, 1) - _num(other.lo, -1)))

    def mul(self, other: "Interval") -> "Interval":
        if self.is_empty or other.is_empty:
            return Interval.empty()
        products = [
            _mul(a, b)
            for a in (_num(self.lo, -1), _num(self.hi, 1))
            for b in (_num(other.lo, -1), _num(other.hi, 1))]
        return Interval(_bound(min(products)), _bound(max(products)))

    def floordiv(self, other: "Interval") -> "Interval":
        """Floor division by a strictly positive divisor range.

        Callers must clamp ``other`` away from zero first (the interval
        engine does, emitting an L605 hazard when the clamp was needed).
        """
        if self.is_empty or other.is_empty:
            return Interval.empty()
        assert other.lo is not None and other.lo >= 1, \
            f"floordiv by a range not proven positive: {other}"
        quotients = []
        for a in (_num(self.lo, -1), _num(self.hi, 1)):
            for b in (float(other.lo), _num(other.hi, 1)):
                if math.isinf(a):
                    quotients.append(a if not math.isinf(b)
                                     else math.copysign(0.0, a))
                elif math.isinf(b):
                    # a finite / b -> inf tends to 0 from the a-sign side.
                    quotients.append(float(int(a) // int(_LARGE))
                                     if abs(a) >= _LARGE else
                                     float(int(a) // _LARGE))
                else:
                    quotients.append(float(int(a) // int(b)))
        return Interval(_bound(min(quotients)), _bound(max(quotients)))

    def floordiv_const(self, k: int) -> "Interval":
        return self.floordiv(Interval.point(k))

    def ceildiv_const(self, k: int) -> "Interval":
        """Ceiling division by a positive constant (conv2d "same")."""
        assert k >= 1
        if self.is_empty:
            return Interval.empty()
        lo = None if self.lo is None else -(-self.lo // k)
        hi = None if self.hi is None else -(-self.hi // k)
        return Interval(lo, hi)

    def clamp_lo(self, lo: int) -> "Interval":
        """Raise the lower bound to at least ``lo`` (used to guard
        division); may produce an empty interval."""
        return self.meet(Interval.at_least(lo))

    def __str__(self) -> str:
        if self.is_empty:
            return "[empty]"
        lo = "-inf" if self.lo is None else str(self.lo)
        hi = "+inf" if self.hi is None else str(self.hi)
        return f"[{lo}, {hi}]"


#: Divisor stand-in for an unbounded bound in floordiv: any finite
#: numerator divided by an arbitrarily large divisor lands in {-1, 0}
#: (floor semantics), which ``a // _LARGE`` reproduces exactly.
_LARGE = 10 ** 30


@dataclass(frozen=True)
class IntervalFact:
    """An interval plus the chain of facts that produced it.

    ``chain`` is blame-style provenance, seed-first: each entry names one
    constraint-store fact or one derivation step.  ``hint`` is the
    likely-value annotation — heuristic only, never a bound.

    ``proven`` distinguishes fact-backed intervals (class constants,
    ``assume_range``, derivations) from the *default extent domain*
    seeded onto symbols with no facts at all.  The default ``v >= 1``
    is a convention about free input dims; it must never launder a
    derived quantity's possible zero into positivity, so derivations
    meet only against proven base facts.
    """

    interval: Interval
    chain: tuple = ()
    hint: int | None = None
    proven: bool = True

    def proven_interval(self) -> Interval:
        """The interval backed by facts alone (TOP when defaulted)."""
        return self.interval if self.proven else Interval.top()

    def extend(self, interval: Interval, step: str) -> "IntervalFact":
        return IntervalFact(interval, self.chain + (step,), self.hint)

    def describe(self) -> str:
        chain = " <- ".join(reversed(self.chain)) if self.chain \
            else "no facts"
        return f"{self.interval} ({chain})"


@dataclass(frozen=True)
class Hazard:
    """One possible-zero/negative-extent finding (lint code L605)."""

    node: object
    message: str
    fact: IntervalFact


class IntervalMap:
    """Per-symbol interval facts for one graph, plus derived metadata.

    - :attr:`env` — symbol name -> :class:`IntervalFact`;
    - :attr:`determined` — symbols whose launch value is a function of
      the call signature: parameter-shape symbols, class constants /
      point ranges, and symbols the forward pass derived (exactly the
      closure ``DimResolutionPlan`` can solve);
    - :attr:`hazards` — possible zero/negative extents at division or
      reshape sites (L605 evidence);
    - :attr:`contradictions` — ``(symbol, node, fact)`` entries whose
      interval became empty (L601 evidence); ``node`` is ``None`` when
      the seed facts alone were contradictory.
    """

    def __init__(self, graph, store: ConstraintStore) -> None:
        self.graph = graph
        self.store = store
        self.env: dict[str, IntervalFact] = {}
        self.determined: set[str] = set()
        self.hazards: list[Hazard] = []
        self.contradictions: list[tuple] = []
        #: derived symbol -> product term over free symbols
        #: (coeff, Counter of names), for reshape-solve cancellation.
        self._terms: dict[str, tuple] = {}

    # -- queries -----------------------------------------------------------

    def fact_of(self, dim) -> IntervalFact:
        """The fact for one dim; ints are exact, unknown symbols TOP."""
        if isinstance(dim, int):
            return IntervalFact(Interval.point(dim),
                                (f"static dim {dim}",))
        name = dim.name if isinstance(dim, SymDim) else str(dim)
        fact = self.env.get(name)
        if fact is None:
            fact = IntervalFact(Interval.at_least(1),
                                (f"{name} >= 1 (default extent domain)",),
                                proven=False)
            self.env[name] = fact
        return fact

    def interval_of(self, dim) -> Interval:
        return self.fact_of(dim).interval

    def shape_intervals(self, shape) -> list:
        return [self.interval_of(d) for d in shape]

    def product_fact(self, shape) -> IntervalFact:
        """Interval of a shape's element count, with merged provenance."""
        interval = Interval.point(1)
        chain: list = []
        for dim in shape:
            fact = self.fact_of(dim)
            interval = interval.mul(fact.interval)
            if not isinstance(dim, int):
                chain.extend(fact.chain)
        return IntervalFact(
            interval,
            (f"|{format_shape(shape)}| in {interval}",) + tuple(chain))

    def size_fact(self, serialized_shape, dtype_size: int) -> IntervalFact:
        """Byte-size interval of a *serialized* shape (ints and symbol
        names), the representation buffer plans and cost recipes carry."""
        interval = Interval.point(1)
        chain: list = []
        for entry in serialized_shape:
            if isinstance(entry, str):
                fact = self.fact_of(SymDim(entry))
                interval = interval.mul(fact.interval)
                chain.extend(fact.chain)
            else:
                interval = interval.mul(Interval.point(int(entry)))
        interval = interval.mul(Interval.point(int(dtype_size)))
        return IntervalFact(
            interval,
            (f"bytes({tuple(serialized_shape)}) * {dtype_size} "
             f"in {interval}",) + tuple(chain))

    def empty_symbols(self) -> list:
        """Symbols whose final interval is empty (beyond the per-node
        contradictions recorded during propagation)."""
        return [(name, fact) for name, fact in sorted(self.env.items())
                if fact.interval.is_empty]

    # -- internal recording ------------------------------------------------

    def _record(self, name: str, fact: IntervalFact, node) -> None:
        self.env[name] = fact
        self.determined.add(name)
        if fact.interval.is_empty:
            self.contradictions.append((name, node, fact))

    def _hazard(self, node, message: str, fact: IntervalFact) -> None:
        self.hazards.append(Hazard(node, message, fact))


def _expand_term(shape, terms: dict) -> tuple:
    """A shape's element count as ``(coeff, Counter)`` over *free*
    symbols: derived symbols are substituted by their own product terms
    so reshape solving can cancel exactly."""
    coeff = 1
    syms: Counter = Counter()
    for dim in shape:
        if isinstance(dim, int):
            coeff *= dim
            continue
        sub = terms.get(dim.name)
        if sub is not None:
            coeff *= sub[0]
            syms.update(sub[1])
        else:
            syms[dim.name] += 1
    return coeff, syms


def _seed_symbol(store: ConstraintStore, sym: SymDim) -> IntervalFact:
    """One symbol's seed fact from the constraint store.

    Proven sources only: the class constant and ``assume_range`` facts.
    With neither, the default extent domain ``v >= 1`` applies (the
    repo-wide shape convention: extents are positive; record an explicit
    ``assume_range(s, 0, ...)`` to model possibly-empty axes).  The
    likely-value hint is attached as an annotation, never as a bound.
    """
    facts = store.range_facts(sym)
    hint = store.likely_value(sym)
    if not facts:
        return IntervalFact(
            Interval.at_least(1),
            (f"{sym.name} >= 1 (default extent domain)",), hint,
            proven=False)
    interval = Interval.top()
    chain: list = []
    for fact in facts:
        if fact[0] == "constant":
            interval = interval.meet(Interval.point(fact[1]))
            chain.append(f"{sym.name} = {fact[1]} (class constant)")
        else:
            __, key, lo, hi = fact
            interval = interval.meet(Interval(lo, hi))
            chain.append(f"{key} in {Interval(lo, hi)} (assume_range)")
    return IntervalFact(interval, tuple(chain), hint)


def _graph_symbols(graph) -> list:
    """Every symbol the graph mentions: the symbol table plus any
    symbols appearing only in shapes or shape-valued attrs."""
    symbols: dict[str, SymDim] = {
        sym.name: sym for sym in graph.symtab.symbols()}

    def note(dim) -> None:
        if isinstance(dim, SymDim):
            symbols.setdefault(dim.name, dim)

    for node in graph.nodes:
        for dim in node.shape:
            note(dim)
        for key in ("new_shape", "out_shape", "shape", "starts",
                    "limits", "strides"):
            spec = node.attrs.get(key)
            if isinstance(spec, (tuple, list)):
                for dim in spec:
                    note(dim)
    return list(symbols.values())


def derive_intervals(graph, assume_ranges=None,
                     store: ConstraintStore | None = None) -> IntervalMap:
    """Seed per-symbol intervals and forward-propagate through ``graph``.

    ``assume_ranges`` maps symbol names to ``(lo, hi)`` facts recorded
    into the (fresh or supplied) constraint store before seeding.  The
    walk is defensive: a structurally broken node contributes nothing
    rather than aborting the analysis — the structural analyzers own
    those findings.
    """
    if store is None:
        store = ConstraintStore()
        for node in graph.nodes:
            try:
                collect_node_facts(node, store, full=True)
                for dim in node.shape:
                    if isinstance(dim, SymDim):
                        store.note_likely_value(dim)
            except Exception:  # noqa: BLE001 - L101/L00x territory
                continue
    for name, bounds in (assume_ranges or {}).items():
        lo, hi = bounds
        store.assume_range(name, lo, hi)

    imap = IntervalMap(graph, store)
    for sym in _graph_symbols(graph):
        fact = _seed_symbol(store, sym)
        imap.env[sym.name] = fact
        if fact.interval.is_empty:
            imap.contradictions.append((sym.name, None, fact))
        if fact.interval.is_point:
            imap.determined.add(sym.name)
    for param in graph.params:
        for dim in param.shape:
            if isinstance(dim, SymDim):
                imap.determined.add(dim.name)

    for node in graph.nodes:
        try:
            _propagate_node(node, imap)
        except Exception:  # noqa: BLE001 - malformed node; keep walking
            continue
    return imap


def _propagate_node(node, imap: IntervalMap) -> None:
    op = node.op
    if op == "reshape":
        _propagate_reshape(node, imap)
    elif op == "concat":
        _propagate_concat(node, imap)
    elif op == "pad":
        _propagate_pad(node, imap)
    elif op == "conv2d":
        _propagate_conv(node, imap)
    elif op == "reduce" and node.attrs.get("kind") == "mean":
        divisor = imap.product_fact(
            [node.inputs[0].shape[a] for a in node.attrs["axes"]])
        if divisor.interval.can_be_nonpositive():
            imap._hazard(
                node,
                f"mean reduces over extents whose product "
                f"{divisor.interval} can be 0 (division by zero for some "
                f"shape in the class)", divisor)


def _propagate_reshape(node, imap: IntervalMap) -> None:
    targets = node.attrs["new_shape"]
    unknown = [d for d in targets
               if isinstance(d, SymDim) and d.name not in imap.determined]
    if len(unknown) != 1:
        # 0 unknowns: nothing to solve.  >= 2: underivable from the
        # signature — the L603 coverage check reports it.
        return
    sym = unknown[0]
    operand = node.inputs[0].shape
    total_coeff, total_syms = _expand_term(operand, imap._terms)
    known_coeff, known_syms = _expand_term(
        [d for d in targets if not (isinstance(d, SymDim)
                                    and d.name == sym.name)], imap._terms)

    base = imap.fact_of(sym)
    if known_coeff > 0 and total_coeff % known_coeff == 0 and \
            not (known_syms - total_syms):
        # Exact cancellation: sym = coeff * product(remaining free syms).
        coeff = total_coeff // known_coeff
        remaining = total_syms - known_syms
        solved = Interval.point(coeff)
        for name, power in sorted(remaining.items()):
            for __ in range(power):
                solved = solved.mul(imap.fact_of(SymDim(name)).interval)
        term_desc = " * ".join(
            [str(coeff)] + [name for name, p in sorted(remaining.items())
                            for __ in range(p)])
        step = (f"{sym.name} = {term_desc} solved at reshape "
                f"{node.short()} -> {solved}")
        imap._terms[sym.name] = (coeff, remaining)
    else:
        # No clean cancellation; fall back to interval division.
        total = imap.product_fact(operand)
        known = imap.product_fact(
            [d for d in targets if not (isinstance(d, SymDim)
                                        and d.name == sym.name)])
        divisor = known.interval
        if divisor.can_be_nonpositive():
            imap._hazard(
                node,
                f"solving {sym.name} divides by known target extent "
                f"{divisor} which can be 0 for some shape in the class",
                known)
        divisor = divisor.clamp_lo(1)
        if divisor.is_empty:
            return
        solved = total.interval.floordiv(divisor)
        step = (f"{sym.name} = |{format_shape(operand)}| // {divisor} "
                f"solved at reshape {node.short()} -> {solved}")
    met = base.proven_interval().meet(solved)
    fact = base.extend(met, step)
    imap._record(sym.name, fact, node)
    if met.can_be_nonpositive():
        imap._hazard(
            node,
            f"solved reshape extent {sym.name} in {met} can be <= 0 for "
            f"some shape in the class", fact)


def _propagate_concat(node, imap: IntervalMap) -> None:
    axis = node.attrs["axis"]
    out = node.shape[axis]
    if not isinstance(out, SymDim) or out.name in imap.determined:
        return
    total = Interval.point(0)
    chain: list = []
    for operand in node.inputs:
        fact = imap.fact_of(operand.shape[axis])
        total = total.add(fact.interval)
        if isinstance(operand.shape[axis], SymDim):
            chain.extend(fact.chain)
    base = imap.fact_of(out)
    met = base.proven_interval().meet(total)
    step = (f"{out.name} = sum of concat operand extents at "
            f"{node.short()} -> {total}")
    imap._record(out.name, IntervalFact(
        met, base.chain + tuple(chain) + (step,), base.hint), node)


def _propagate_pad(node, imap: IntervalMap) -> None:
    for axis, (lo, hi) in enumerate(node.attrs["pads"]):
        out = node.shape[axis]
        if not isinstance(out, SymDim) or out.name in imap.determined:
            continue
        src = imap.fact_of(node.inputs[0].shape[axis])
        derived = src.interval.add_const(int(lo) + int(hi))
        base = imap.fact_of(out)
        met = base.proven_interval().meet(derived)
        step = (f"{out.name} = input extent + {lo} + {hi} at pad "
                f"{node.short()} -> {derived}")
        imap._record(out.name, IntervalFact(
            met, base.chain + src.chain + (step,), base.hint), node)


def _propagate_conv(node, imap: IntervalMap) -> None:
    strides = node.attrs.get("strides", (1, 1))
    same = node.attrs.get("padding", "same") == "same"
    for spatial, stride in ((1, strides[0]), (2, strides[1])):
        out = node.shape[spatial]
        if not isinstance(out, SymDim) or out.name in imap.determined:
            continue
        src = imap.fact_of(node.inputs[0].shape[spatial])
        kernel = int(node.inputs[1].shape[spatial - 1])
        if same:
            derived = src.interval.ceildiv_const(stride)
            step = (f"{out.name} = ceil(input / {stride}) at conv2d "
                    f"{node.short()} -> {derived}")
        else:
            derived = src.interval.add_const(-kernel) \
                .floordiv_const(stride).add_const(1)
            step = (f"{out.name} = (input - {kernel}) // {stride} + 1 "
                    f"at conv2d {node.short()} -> {derived}")
        base = imap.fact_of(out)
        met = base.proven_interval().meet(derived)
        fact = IntervalFact(met, base.chain + src.chain + (step,),
                            base.hint)
        imap._record(out.name, fact, node)
        if met.can_be_nonpositive():
            imap._hazard(
                node,
                f"conv2d 'valid' output extent {out.name} in {met} can "
                f"be <= 0 (input extent can be smaller than the "
                f"{kernel}-wide kernel)", fact)


def check_dynamic_bindings(graph, bindings) -> list:
    """Dynamic-vs-static cross-check (the fuzz ``--lint`` oracle).

    Resolves every derivable symbol from ``bindings`` exactly as the
    runtime does, then asserts each concrete value lies inside the
    statically derived interval.  Returns violation descriptions (empty
    when the abstraction is sound for this case).
    """
    from ...numerics.resolve import resolve_all_dims

    full = dict(bindings)
    resolve_all_dims(graph.nodes, full)
    imap = derive_intervals(graph)
    violations = []
    for name, value in sorted(full.items()):
        fact = imap.env.get(name)
        if fact is None:
            continue
        if not fact.interval.contains(int(value)):
            violations.append(
                f"symbol {name}={value} falls outside its static "
                f"interval {fact.describe()}")
    return violations
