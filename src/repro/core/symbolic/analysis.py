"""Cross-level symbolic shape analysis.

One pass over the graph collects, per op, the shape relationships that the
op's semantics *guarantee* — no shape values needed.  The result is a
:class:`ShapeAnalysis` object the fusion planner (and later codegen) queries.
This is the paper's "shape information propagation": shape knowledge flows
along dataflow edges as constraints rather than as concrete numbers.

The analysis supports three strictness levels, which experiment E4 ablates:

- ``NONE`` — no constraint collection; only structural dim identity.
- ``EQUALITY`` — dim-equality facts (union-find) from elementwise ops,
  broadcasts, transposes, reductions, dots.
- ``FULL`` — adds reshape product-equality facts and likely-value hints.
"""

from __future__ import annotations

import time
from enum import Enum

from ...ir.graph import Graph
from ...ir.node import Node
from ...ir.shapes import Dim, SymDim
from .constraints import ConstraintStore

__all__ = ["ConstraintLevel", "ShapeAnalysis", "analyze_shapes",
           "collect_node_facts"]


class ConstraintLevel(Enum):
    """Strictness of the shape-constraint analysis (ablated by E4)."""

    NONE = "none"
    EQUALITY = "equality"
    FULL = "full"


class ShapeAnalysis:
    """The queryable result of running shape analysis over a graph."""

    def __init__(self, graph: Graph, level: ConstraintLevel) -> None:
        self.graph = graph
        self.level = level
        self.store = ConstraintStore()
        self.analysis_time_s = 0.0

    # -- queries used by fusion/codegen ---------------------------------

    def dims_equal(self, a: Dim, b: Dim) -> bool:
        if self.level is ConstraintLevel.NONE:
            return a == b
        return self.store.dims_equal(a, b)

    def shapes_equal(self, a, b) -> bool:
        if self.level is ConstraintLevel.NONE:
            return tuple(a) == tuple(b)
        return self.store.shapes_equal(a, b)

    def same_num_elements(self, a, b) -> bool:
        if self.level is ConstraintLevel.NONE:
            return tuple(a) == tuple(b)
        if self.level is ConstraintLevel.EQUALITY:
            # Without product facts, only directly comparable products of
            # equal shapes can be decided.
            return self.store.shapes_equal(a, b)
        return self.store.same_num_elements(a, b)

    def likely_value(self, dim: Dim) -> int | None:
        if isinstance(dim, int):
            return dim
        if self.level is ConstraintLevel.NONE:
            return dim.hint
        return self.store.likely_value(dim)

    def likely_num_elements(self, shape) -> int:
        """Heuristic element count (1 for unknown symbols)."""
        total = 1
        for dim in shape:
            value = self.likely_value(dim)
            total *= value if value else 1
        return total

    def summary(self) -> dict:
        info = self.store.summary()
        info["level"] = self.level.value
        info["analysis_time_s"] = self.analysis_time_s
        return info


def analyze_shapes(graph: Graph,
                   level: ConstraintLevel = ConstraintLevel.FULL
                   ) -> ShapeAnalysis:
    """Collect shape constraints for ``graph`` at the given level."""
    analysis = ShapeAnalysis(graph, level)
    if level is ConstraintLevel.NONE:
        return analysis
    start = time.perf_counter()
    store = analysis.store
    full = level is ConstraintLevel.FULL
    for node in graph.nodes:
        _collect_node(node, store, full)
        if full:
            for dim in node.shape:
                if isinstance(dim, SymDim):
                    store.note_likely_value(dim)
    analysis.analysis_time_s = time.perf_counter() - start
    return analysis


def collect_node_facts(node: Node, store: ConstraintStore,
                       full: bool = True) -> None:
    """Public entry to per-op fact collection (used by ``repro.lint``).

    The linter re-derives the constraint table from scratch through this
    same per-op semantics, so a contradiction it finds is a property of the
    graph, not of the pipeline's cached analysis object.
    """
    _collect_node(node, store, full)


def _collect_node(node: Node, store: ConstraintStore, full: bool) -> None:
    """Record the shape facts one op guarantees."""
    op = node.op
    if node.is_elementwise:
        # All operands and the result are elementwise-aligned.
        for operand in node.inputs:
            store.assert_shapes_equal(operand.shape, node.shape)
        return
    if op == "broadcast_in_dim":
        (operand,) = node.inputs
        for in_dim, out_pos in zip(operand.shape,
                                   node.attrs["broadcast_dims"]):
            if in_dim != 1:
                store.assert_dims_equal(in_dim, node.shape[out_pos])
        return
    if op == "reshape":
        if full:
            (operand,) = node.inputs
            store.assert_products_equal(operand.shape, node.shape)
        return
    if op == "transpose":
        (operand,) = node.inputs
        for out_pos, in_pos in enumerate(node.attrs["perm"]):
            store.assert_dims_equal(operand.shape[in_pos],
                                    node.shape[out_pos])
        return
    if op == "reduce":
        (operand,) = node.inputs
        axes = set(node.attrs["axes"])
        keepdims = node.attrs.get("keepdims", False)
        out_iter = iter(node.shape)
        for i, in_dim in enumerate(operand.shape):
            if i in axes:
                if keepdims:
                    next(out_iter)  # the kept 1
                continue
            store.assert_dims_equal(in_dim, next(out_iter))
        return
    if op == "dot":
        a, b = node.inputs
        store.assert_dims_equal(a.shape[-1], b.shape[-2])
        store.assert_dims_equal(a.shape[-2], node.shape[-2])
        store.assert_dims_equal(b.shape[-1], node.shape[-1])
        # Batch dims: align right-to-left where neither side is 1.
        batch_out = node.shape[:-2]
        for operand in (a, b):
            batch_in = operand.shape[:-2]
            for off in range(1, len(batch_in) + 1):
                din = batch_in[-off]
                dout = batch_out[-off]
                if din != 1:
                    store.assert_dims_equal(din, dout)
        return
    if op == "concat":
        axis = node.attrs["axis"]
        for operand in node.inputs:
            for i, in_dim in enumerate(operand.shape):
                if i != axis:
                    store.assert_dims_equal(in_dim, node.shape[i])
        return
    if op == "gather":
        operand, indices = node.inputs
        axis = node.attrs.get("axis", 0)
        for i in range(axis):
            store.assert_dims_equal(operand.shape[i], node.shape[i])
        for j, idx_dim in enumerate(indices.shape):
            store.assert_dims_equal(idx_dim, node.shape[axis + j])
        tail = len(operand.shape) - axis - 1
        for k in range(tail):
            store.assert_dims_equal(operand.shape[axis + 1 + k],
                                    node.shape[axis + len(indices.shape) + k])
        return
    if op == "slice":
        (operand,) = node.inputs
        # Full-dim slices of symbolic dims preserve the symbol; inference
        # already reused the same SymDim so only static info remains.
        return
    if op in ("softmax", "layer_norm", "gelu"):
        # Composites are elementwise in their first operand's shape.
        store.assert_shapes_equal(node.inputs[0].shape, node.shape)
        return
    # parameter/constant/iota/conv2d/shape_of/dim_size: nothing portable.
