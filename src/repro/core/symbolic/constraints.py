"""Shape-constraint store: the facts the analysis collects.

Three kinds of facts, mirroring the paper's shape-constraint taxonomy:

- **dim equality** — two dims always hold the same value (e.g. the two
  operands of an ``add``).  Stored in a union-find keyed by symbol name /
  int constant.
- **product equality** — two dim *sets* have the same product (the paper's
  reshape constraint: ``reshape [b, s, h] -> [bs, h]`` proves
  ``b*s == bs``).  Stored as a union-find over canonical product terms.
- **likely values** — per-symbol value hints mined from ``SymDim.hint``;
  heuristic inputs only (schedule variant ordering), never correctness.

The store answers the two queries fusion actually needs — "are these shapes
certainly element-wise identical?" and "do these shapes certainly cover the
same number of elements?" — without ever needing a concrete value.
"""

from __future__ import annotations

from typing import Sequence

from ...ir.shapes import Dim, SymDim
from .unionfind import ContradictionError, UnionFind

__all__ = ["ConstraintStore", "ContradictionError", "product_term"]


def _dim_key(dim: Dim):
    return dim.name if isinstance(dim, SymDim) else int(dim)


def product_term(shape: Sequence[Dim], resolver=None) -> tuple:
    """Canonical product of a shape: ``(coeff, sorted symbol keys)``.

    ``resolver`` optionally maps a symbol key to either an int (the class
    constant) or a canonical representative key, letting the store fold dim
    equalities into product comparison.
    """
    coeff = 1
    syms: list = []
    for dim in shape:
        key = _dim_key(dim)
        if resolver is not None and not isinstance(key, int):
            key = resolver(key)
        if isinstance(key, int):
            coeff *= key
        else:
            syms.append(key)
    return (coeff, tuple(sorted(syms)))


class ConstraintStore:
    """Accumulates and queries shape constraints for one graph."""

    def __init__(self) -> None:
        self._dims = UnionFind()
        self._products = UnionFind()
        self._likely: dict[str, int] = {}
        self.num_dim_facts = 0
        self.num_product_facts = 0

    # -- recording ---------------------------------------------------------

    def assert_dims_equal(self, a: Dim, b: Dim) -> None:
        """Record that two dims are always equal."""
        ka, kb = _dim_key(a), _dim_key(b)
        if ka == kb:
            return
        self._dims.union(ka, kb)
        self.num_dim_facts += 1

    def assert_shapes_equal(self, a: Sequence[Dim], b: Sequence[Dim]) -> None:
        if len(a) != len(b):
            raise ContradictionError(
                f"shapes of different rank asserted equal: {a} vs {b}")
        for da, db in zip(a, b):
            self.assert_dims_equal(da, db)

    def assert_products_equal(self, a: Sequence[Dim],
                              b: Sequence[Dim]) -> None:
        """Record that two shapes cover the same number of elements."""
        ta = product_term(a, self._resolve)
        tb = product_term(b, self._resolve)
        if ta == tb:
            return
        self._products.union(ta, tb)
        self.num_product_facts += 1

    def note_likely_value(self, sym: SymDim) -> None:
        if sym.hint is not None:
            self._likely.setdefault(sym.name, sym.hint)

    # -- queries -----------------------------------------------------------

    def dims_equal(self, a: Dim, b: Dim) -> bool:
        """Certainly-equal: structural, constant-resolved, or unioned."""
        ka, kb = _dim_key(a), _dim_key(b)
        if ka == kb:
            return True
        ca = self._dims.constant_of(ka) if ka in self._dims or isinstance(
            ka, int) else None
        cb = self._dims.constant_of(kb) if kb in self._dims or isinstance(
            kb, int) else None
        if ca is not None and cb is not None:
            return ca == cb
        return self._dims.same(ka, kb)

    def shapes_equal(self, a: Sequence[Dim], b: Sequence[Dim]) -> bool:
        return len(a) == len(b) and all(
            self.dims_equal(da, db) for da, db in zip(a, b))

    def same_num_elements(self, a: Sequence[Dim], b: Sequence[Dim]) -> bool:
        """Certainly-equal element counts, the key fusion query.

        True when the canonical product terms coincide after folding dim
        equalities, or when a reshape fact linked the two terms.
        """
        ta = product_term(a, self._resolve)
        tb = product_term(b, self._resolve)
        if ta == tb:
            return True
        return self._products.same(ta, tb)

    def resolve_dim(self, dim: Dim) -> Dim:
        """Fold a dim to its class constant (int) when one is known."""
        key = _dim_key(dim)
        if isinstance(key, int):
            return key
        const = self._dims.constant_of(key)
        return const if const is not None else dim

    def likely_value(self, dim: Dim) -> int | None:
        """Heuristic magnitude for a dim: constant, class constant or hint."""
        if isinstance(dim, int):
            return dim
        const = self._dims.constant_of(dim.name)
        if const is not None:
            return const
        return self._likely.get(dim.name, dim.hint)

    def dim_classes(self) -> list[list]:
        return self._dims.classes()

    # -- internals -----------------------------------------------------------

    def _resolve(self, key: str):
        """Map a symbol key to its class constant or representative key."""
        const = self._dims.constant_of(key)
        if const is not None:
            return const
        root = self._dims.find(key)
        return root

    def summary(self) -> dict:
        """Counters used by the analysis-overhead experiment (E10)."""
        return {
            "dim_facts": self.num_dim_facts,
            "product_facts": self.num_product_facts,
            "dim_classes": len(self.dim_classes()),
            "likely_values": len(self._likely),
        }
