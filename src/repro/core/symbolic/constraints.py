"""Shape-constraint store: the facts the analysis collects.

Three kinds of facts, mirroring the paper's shape-constraint taxonomy:

- **dim equality** — two dims always hold the same value (e.g. the two
  operands of an ``add``).  Stored in a union-find keyed by symbol name /
  int constant.
- **product equality** — two dim *sets* have the same product (the paper's
  reshape constraint: ``reshape [b, s, h] -> [bs, h]`` proves
  ``b*s == bs``).  Stored as a union-find over canonical product terms.
- **likely values** — per-symbol value hints mined from ``SymDim.hint``;
  heuristic inputs only (schedule variant ordering), never correctness.
- **range facts** — explicit, *proven* per-class bounds recorded with
  :meth:`ConstraintStore.assume_range` (e.g. a serving deployment that
  guarantees ``seqlen <= 512``).  Unlike likely-value hints these are
  facts: the interval engine (``intervals.py``) folds them into the
  abstract value of every class member.

The store answers the two queries fusion actually needs — "are these shapes
certainly element-wise identical?" and "do these shapes certainly cover the
same number of elements?" — without ever needing a concrete value.
"""

from __future__ import annotations

from typing import Sequence

from ...ir.shapes import Dim, SymDim
from .unionfind import ContradictionError, UnionFind

__all__ = ["ConstraintStore", "ContradictionError", "product_term"]


def _dim_key(dim: Dim):
    return dim.name if isinstance(dim, SymDim) else int(dim)


def product_term(shape: Sequence[Dim], resolver=None) -> tuple:
    """Canonical product of a shape: ``(coeff, sorted symbol keys)``.

    ``resolver`` optionally maps a symbol key to either an int (the class
    constant) or a canonical representative key, letting the store fold dim
    equalities into product comparison.
    """
    coeff = 1
    syms: list = []
    for dim in shape:
        key = _dim_key(dim)
        if resolver is not None and not isinstance(key, int):
            key = resolver(key)
        if isinstance(key, int):
            coeff *= key
        else:
            syms.append(key)
    return (coeff, tuple(sorted(syms)))


class ConstraintStore:
    """Accumulates and queries shape constraints for one graph."""

    def __init__(self) -> None:
        self._dims = UnionFind()
        self._products = UnionFind()
        self._likely: dict[str, int] = {}
        #: key -> (lo, hi) proven bounds; hi None means unbounded above.
        self._ranges: dict = {}
        self.num_dim_facts = 0
        self.num_product_facts = 0
        self.num_range_facts = 0

    # -- recording ---------------------------------------------------------

    def assert_dims_equal(self, a: Dim, b: Dim) -> None:
        """Record that two dims are always equal."""
        ka, kb = _dim_key(a), _dim_key(b)
        if ka == kb:
            return
        self._dims.union(ka, kb)
        self.num_dim_facts += 1

    def assert_shapes_equal(self, a: Sequence[Dim], b: Sequence[Dim]) -> None:
        if len(a) != len(b):
            raise ContradictionError(
                f"shapes of different rank asserted equal: {a} vs {b}")
        for da, db in zip(a, b):
            self.assert_dims_equal(da, db)

    def assert_products_equal(self, a: Sequence[Dim],
                              b: Sequence[Dim]) -> None:
        """Record that two shapes cover the same number of elements."""
        ta = product_term(a, self._resolve)
        tb = product_term(b, self._resolve)
        if ta == tb:
            return
        self._products.union(ta, tb)
        self.num_product_facts += 1

    def note_likely_value(self, sym: SymDim) -> None:
        """Record a heuristic magnitude for ``sym``.

        Hints live in their own table, separate from constants and range
        facts, so they can never masquerade as proven bounds: `range_of`
        ignores them entirely and :meth:`likely_value` clamps them into
        any proven range before answering.
        """
        if sym.hint is not None:
            self._likely.setdefault(sym.name, sym.hint)

    def assume_range(self, dim, lo: int | None = None,
                     hi: int | None = None) -> None:
        """Record a *proven* class-level bound: ``lo <= dim <= hi``.

        ``dim`` may be a :class:`SymDim` or a bare symbol name.  Facts on
        the same class meet (intersect); an empty intersection is kept as
        recorded — the interval engine surfaces it as a contradiction
        (L601) rather than raising here, so a lint pass can report every
        empty class instead of dying on the first.
        """
        key = dim if isinstance(dim, str) else _dim_key(dim)
        if isinstance(key, int):
            if (lo is not None and lo > key) or \
                    (hi is not None and hi < key):
                raise ContradictionError(
                    f"assumed range [{lo}, {hi}] excludes constant {key}")
            return
        self._dims.add(key)
        old_lo, old_hi = self._ranges.get(key, (None, None))
        if lo is not None:
            old_lo = lo if old_lo is None else max(old_lo, lo)
        if hi is not None:
            old_hi = hi if old_hi is None else min(old_hi, hi)
        self._ranges[key] = (old_lo, old_hi)
        self.num_range_facts += 1

    # -- queries -----------------------------------------------------------

    def dims_equal(self, a: Dim, b: Dim) -> bool:
        """Certainly-equal: structural, constant-resolved, or unioned."""
        ka, kb = _dim_key(a), _dim_key(b)
        if ka == kb:
            return True
        ca = self._dims.constant_of(ka) if ka in self._dims or isinstance(
            ka, int) else None
        cb = self._dims.constant_of(kb) if kb in self._dims or isinstance(
            kb, int) else None
        if ca is not None and cb is not None:
            return ca == cb
        return self._dims.same(ka, kb)

    def shapes_equal(self, a: Sequence[Dim], b: Sequence[Dim]) -> bool:
        return len(a) == len(b) and all(
            self.dims_equal(da, db) for da, db in zip(a, b))

    def same_num_elements(self, a: Sequence[Dim], b: Sequence[Dim]) -> bool:
        """Certainly-equal element counts, the key fusion query.

        True when the canonical product terms coincide after folding dim
        equalities, or when a reshape fact linked the two terms.
        """
        ta = product_term(a, self._resolve)
        tb = product_term(b, self._resolve)
        if ta == tb:
            return True
        return self._products.same(ta, tb)

    def resolve_dim(self, dim: Dim) -> Dim:
        """Fold a dim to its class constant (int) when one is known.

        A class whose proven range collapses to a single point (an
        ``assume_range(s, 4, 4)`` fact) resolves exactly like a class
        constant — min/max facts are class-level knowledge, not hints.
        """
        key = _dim_key(dim)
        if isinstance(key, int):
            return key
        const = self._dims.constant_of(key)
        if const is not None:
            return const
        lo, hi = self.range_of(dim)
        if lo is not None and lo == hi:
            return lo
        return dim

    def range_of(self, dim) -> tuple:
        """Proven ``(lo, hi)`` bounds for a dim's class; ``None`` = open.

        Folds the class constant and every ``assume_range`` fact recorded
        on *any* member of the class.  Returns ``(None, None)`` when
        nothing is proven — likely-value hints never contribute.  A
        contradictory combination comes back with ``lo > hi``; callers
        (the interval engine) report it rather than this method raising.
        """
        key = dim if isinstance(dim, str) else _dim_key(dim)
        if isinstance(key, int):
            return key, key
        lo: int | None = None
        hi: int | None = None
        if key in self._dims:
            const = self._dims.constant_of(key)
            if const is not None:
                lo = hi = const
        for other, (fact_lo, fact_hi) in self._ranges.items():
            if other != key and not (key in self._dims
                                     and self._dims.same(key, other)):
                continue
            if fact_lo is not None:
                lo = fact_lo if lo is None else max(lo, fact_lo)
            if fact_hi is not None:
                hi = fact_hi if hi is None else min(hi, fact_hi)
        return lo, hi

    def range_facts(self, dim) -> list:
        """Provenance of :meth:`range_of`: the individual facts.

        Returns ``("constant", value)`` and ``("assume", key, lo, hi)``
        tuples, letting the interval engine build blame chains that name
        each contributing fact.
        """
        key = dim if isinstance(dim, str) else _dim_key(dim)
        facts: list = []
        if isinstance(key, int):
            return [("constant", key)]
        if key in self._dims:
            const = self._dims.constant_of(key)
            if const is not None:
                facts.append(("constant", const))
        for other, (fact_lo, fact_hi) in self._ranges.items():
            if other == key or (key in self._dims
                                and self._dims.same(key, other)):
                facts.append(("assume", other, fact_lo, fact_hi))
        return facts

    def likely_value(self, dim: Dim) -> int | None:
        """Heuristic magnitude for a dim: proven value, else clamped hint.

        Resolution order: constant > class constant > point range > the
        symbol's own hint > any class member's hint.  A hint is heuristic
        only, so it is clamped into the proven range — it may *pick* a
        value but never widen what the facts allow.
        """
        if isinstance(dim, int):
            return dim
        const = self._dims.constant_of(dim.name)
        if const is not None:
            return const
        lo, hi = self.range_of(dim)
        if lo is not None and lo == hi:
            return lo
        hint = self._likely.get(dim.name)
        if hint is None and dim.name in self._dims:
            for name, value in self._likely.items():
                if name in self._dims and self._dims.same(dim.name, name):
                    hint = value
                    break
        if hint is None:
            hint = dim.hint
        if hint is not None:
            if lo is not None and hint < lo:
                hint = lo
            if hi is not None and hint > hi:
                hint = hi
        return hint

    def dim_classes(self) -> list[list]:
        return self._dims.classes()

    # -- internals -----------------------------------------------------------

    def _resolve(self, key: str):
        """Map a symbol key to its class constant or representative key."""
        const = self._dims.constant_of(key)
        if const is not None:
            return const
        root = self._dims.find(key)
        return root

    def summary(self) -> dict:
        """Counters used by the analysis-overhead experiment (E10)."""
        return {
            "dim_facts": self.num_dim_facts,
            "product_facts": self.num_product_facts,
            "dim_classes": len(self.dim_classes()),
            "likely_values": len(self._likely),
            "range_facts": self.num_range_facts,
        }
