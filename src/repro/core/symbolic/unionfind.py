"""A small union-find used for dimension-equality classes.

Keys are hashable tokens (symbol names and ``int`` constants).  Classes that
contain a constant resolve to that constant; merging two classes with
*different* constants is a contradiction and raises, which surfaces
inconsistent graphs at analysis time rather than at run time.
"""

from __future__ import annotations

from typing import Hashable, Iterable

__all__ = ["UnionFind", "ContradictionError"]


class ContradictionError(ValueError):
    """Two provably different values were asserted equal."""


class UnionFind:
    """Union-find with path compression and union-by-size."""

    def __init__(self) -> None:
        self._parent: dict[Hashable, Hashable] = {}
        self._size: dict[Hashable, int] = {}
        self._constant: dict[Hashable, int] = {}

    def add(self, key: Hashable) -> None:
        if key not in self._parent:
            self._parent[key] = key
            self._size[key] = 1
            if isinstance(key, int):
                self._constant[key] = key

    def find(self, key: Hashable) -> Hashable:
        self.add(key)
        root = key
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[key] != root:  # path compression
            self._parent[key], key = root, self._parent[key]
        return root

    def union(self, a: Hashable, b: Hashable) -> Hashable:
        """Merge the classes of ``a`` and ``b``; returns the new root.

        Raises :class:`ContradictionError` when both classes already
        resolve to different constants.
        """
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        ca = self._constant.get(ra)
        cb = self._constant.get(rb)
        if ca is not None and cb is not None and ca != cb:
            raise ContradictionError(
                f"cannot unify dims: {a!r} = {ca} but {b!r} = {cb}")
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        const = ca if ca is not None else cb
        if const is not None:
            self._constant[ra] = const
        return ra

    def same(self, a: Hashable, b: Hashable) -> bool:
        """True when ``a`` and ``b`` are known equal.

        Unseen keys are added as singletons, so ``same`` never raises.
        Two equal constants compare equal even if never unioned.
        """
        if isinstance(a, int) and isinstance(b, int):
            return a == b
        return self.find(a) == self.find(b)

    def constant_of(self, key: Hashable) -> int | None:
        """The constant this key's class resolves to, if any."""
        return self._constant.get(self.find(key))

    def classes(self) -> list[list]:
        """All equivalence classes with more than one member."""
        by_root: dict[Hashable, list] = {}
        for key in self._parent:
            by_root.setdefault(self.find(key), []).append(key)
        return [members for members in by_root.values() if len(members) > 1]

    def keys(self) -> Iterable[Hashable]:
        return self._parent.keys()

    def __contains__(self, key: Hashable) -> bool:
        return key in self._parent
