"""Cross-level symbolic shape representation and constraint analysis."""

from .unionfind import ContradictionError, UnionFind
from .constraints import ConstraintStore, product_term
from .analysis import ConstraintLevel, ShapeAnalysis, analyze_shapes
from .intervals import (Interval, IntervalFact, IntervalMap,
                        check_dynamic_bindings, derive_intervals)

__all__ = [
    "ContradictionError", "UnionFind",
    "ConstraintStore", "product_term",
    "ConstraintLevel", "ShapeAnalysis", "analyze_shapes",
    "Interval", "IntervalFact", "IntervalMap",
    "derive_intervals", "check_dynamic_bindings",
]
