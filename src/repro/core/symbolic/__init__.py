"""Cross-level symbolic shape representation and constraint analysis."""

from .unionfind import ContradictionError, UnionFind
from .constraints import ConstraintStore, product_term
from .analysis import ConstraintLevel, ShapeAnalysis, analyze_shapes

__all__ = [
    "ContradictionError", "UnionFind",
    "ConstraintStore", "product_term",
    "ConstraintLevel", "ShapeAnalysis", "analyze_shapes",
]
