"""Adaptive shape specialisation on top of the shape-generic executable.

BladeDISC's runtime keeps the shape-generic executable as the always-
available fallback and can *speculatively* compile shape-specialised
kernels for signatures that turn out to be hot, picking up the last few
percent a static compiler would get — without ever stalling a request on
compilation (specialisation happens off the critical path) and without the
cold-shape cliff of a per-signature JIT.

:class:`AdaptiveEngine` wraps two :class:`ExecutionEngine` instances
(generic and specialised efficiency) over one shared
:class:`~repro.runtime.launchplan.LaunchPlanCache`: the cache owns all
signature accounting — call counts, hit/miss/eviction statistics, hot
signatures — so the specialiser no longer keeps a parallel count dict,
and E12 reports the unified numbers.  Once a signature has been seen
``threshold`` times a specialisation is "built" (charging the simulated
compile cost in the background) and subsequent calls of that signature
are served at the specialised efficiency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..device.compilecost import compile_cost_us
from ..device.counters import RunStats
from ..device.profiles import DeviceProfile
from .engine import EngineOptions, ExecutionEngine
from .executable import Executable
from .launchplan import LaunchPlanCache

__all__ = ["SpecializationOptions", "AdaptiveEngine"]


@dataclass
class SpecializationOptions:
    """Knobs of the speculative specialiser."""

    #: calls of one signature before a specialisation is built.
    threshold: int = 3
    #: codegen quality of a shape-specialised kernel set (static-compiler
    #: grade, above the generic executable's 0.95).
    specialized_efficiency: float = 1.05
    #: simulated cost grade of one background specialisation build.
    compile_grade: str = "tracing_jit"
    #: build specialisations off the critical path (no request stall)?
    background: bool = True
    #: cap on live specialisations (memory for compiled artifacts).
    max_specializations: int = 32
    #: bound on frozen launch plans across both engine variants.
    plan_capacity: int | None = 128


class AdaptiveEngine:
    """Generic executable + hot-shape specialisations."""

    def __init__(self, executable: Executable, device: DeviceProfile,
                 options: SpecializationOptions | None = None,
                 engine_options: EngineOptions | None = None) -> None:
        self.executable = executable
        self.device = device
        self.options = options or SpecializationOptions()
        #: one cache for both variants: plans keyed by (tag, signature),
        #: signature statistics shared.
        self.plans = LaunchPlanCache(self.options.plan_capacity)
        base = engine_options or EngineOptions()
        self._generic = ExecutionEngine(executable, device, base,
                                        plan_cache=self.plans,
                                        plan_tag="generic")
        specialized = EngineOptions(
            base_efficiency=self.options.specialized_efficiency,
            dispatch_us_per_kernel=base.dispatch_us_per_kernel,
            fixed_schedule=base.fixed_schedule,
            host_placement_enabled=base.host_placement_enabled,
            plan_capacity=base.plan_capacity)
        self._specialized = ExecutionEngine(executable, device,
                                            specialized,
                                            plan_cache=self.plans,
                                            plan_tag="specialized")
        self._signature = self._generic.host_program.signature
        self._live: set = set()
        self.specializations_built = 0
        self.background_compile_us = 0.0

    def run(self, inputs: Mapping[str, np.ndarray]
            ) -> tuple[list, RunStats]:
        signature = self._signature(inputs)
        count = self.plans.note(signature)

        hit = signature in self._live
        should_build = (not hit
                        and count >= self.options.threshold
                        and len(self._live)
                        < self.options.max_specializations)
        stall_us = 0.0
        if should_build:
            cost = compile_cost_us(len(self.executable.graph.nodes),
                                   self.options.compile_grade)
            self._live.add(signature)
            self.specializations_built += 1
            if self.options.background:
                # built concurrently; this request still runs generic
                self.background_compile_us += cost
            else:
                stall_us = cost
                hit = True

        engine = self._specialized if hit else self._generic
        outputs, stats = engine.run(inputs, signature=signature)
        stats.compile_time_us += stall_us
        stats.details["specialized"] = hit
        return outputs, stats

    def run_trace(self, trace):
        """Serve a trace; mirrors :meth:`Executor.run_trace`."""
        from ..device.counters import Timeline
        timeline = Timeline()
        for inputs in trace:
            __, stats = self.run(inputs)
            timeline.record(stats)
        return timeline

    def stats(self) -> dict:
        cache = self.plans.stats()
        return {
            "signatures_seen": cache["signatures_seen"],
            "specializations": self.specializations_built,
            "background_compile_us": self.background_compile_us,
            "launch_plans": cache,
            "hot_signatures": self.plans.hot_signatures(),
        }
