"""Buffer planning: liveness-based reuse of intermediate device memory.

BladeDISC's pipeline includes a buffer optimisation stage: intermediate
tensors whose live ranges do not overlap share device memory, which matters
doubly under dynamic shapes because the peak cannot be tuned per shape by
hand.  The plan is built once at compile time from the kernel order —
liveness intervals are *structural* — while actual byte sizes are evaluated
per call from the dim bindings, exactly like kernel cost recipes.

``BufferPlan.evaluate(dims)`` returns naive total vs reused peak bytes; the
engine surfaces both in ``RunStats.details``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.codegen.exprs import serialize_shape
from ..core.codegen.support import _shape

__all__ = ["BufferPlan", "Interval", "plan_buffers"]


@dataclass
class Interval:
    """One intermediate value's lifetime over the kernel sequence."""

    node_id: int
    shape: tuple          # serialized symbolic shape
    dtype_size: int
    start: int            # kernel index that produces the value
    end: int              # last kernel index that reads it
    slot: int = -1        # assigned reuse slot

    def bytes_at(self, dims: dict) -> int:
        return int(np.prod(_shape(self.shape, dims), initial=1)) \
            * self.dtype_size


class BufferPlan:
    """Compile-time liveness intervals + slot assignment."""

    def __init__(self, intervals: list) -> None:
        self.intervals = intervals
        self.num_slots = self._assign_slots()

    def _assign_slots(self) -> int:
        """Greedy interval-graph colouring in production order.

        Two intervals may share a slot iff their live ranges do not
        overlap.  Greedy over intervals sorted by start index is optimal
        for interval graphs.
        """
        slot_free_at: list[int] = []  # slot -> end of current occupant
        for interval in sorted(self.intervals, key=lambda i: i.start):
            for slot, free_at in enumerate(slot_free_at):
                if free_at < interval.start:
                    interval.slot = slot
                    slot_free_at[slot] = interval.end
                    break
            else:
                interval.slot = len(slot_free_at)
                slot_free_at.append(interval.end)
        return len(slot_free_at)

    def evaluate(self, dims: dict) -> dict:
        """Per-call memory statistics for concrete dim bindings."""
        naive = 0
        slot_size = [0] * self.num_slots
        for interval in self.intervals:
            size = interval.bytes_at(dims)
            naive += size
            slot_size[interval.slot] = max(slot_size[interval.slot], size)
        peak = sum(slot_size)
        return {
            "naive_bytes": naive,
            "peak_bytes": peak,
            "reuse_factor": naive / peak if peak else 1.0,
            "slots": self.num_slots,
            "values": len(self.intervals),
        }

    def verify_no_overlap_sharing(self) -> None:
        """Invariant check (used by tests): same slot => disjoint ranges."""
        by_slot: dict[int, list[Interval]] = {}
        for interval in self.intervals:
            by_slot.setdefault(interval.slot, []).append(interval)
        for intervals in by_slot.values():
            ordered = sorted(intervals, key=lambda i: i.start)
            for earlier, later in zip(ordered, ordered[1:]):
                if earlier.end >= later.start:
                    raise AssertionError(
                        f"overlapping intervals share slot: "
                        f"{earlier} / {later}")


def plan_buffers(kernels: list, graph_outputs) -> BufferPlan:
    """Build the liveness intervals from an ordered kernel list.

    Only *intermediates* are planned: values produced by one kernel and
    consumed by later ones.  Graph outputs live to the end of the program
    (they are handed to the caller); parameters and constants are not
    device-allocated per call.
    """
    output_ids = {node.id for node in graph_outputs}
    produced_at: dict[int, tuple] = {}   # node id -> (kernel idx, node)
    last_use: dict[int, int] = {}
    for index, kernel in enumerate(kernels):
        for node in kernel.input_nodes:
            if node.id in produced_at:
                last_use[node.id] = index
        for node in kernel.output_nodes:
            produced_at[node.id] = (index, node)

    end_of_program = len(kernels)
    intervals = []
    for node_id, (start, node) in produced_at.items():
        end = end_of_program if node_id in output_ids else \
            last_use.get(node_id, start)
        intervals.append(Interval(
            node_id=node_id,
            shape=serialize_shape(node.shape),
            dtype_size=node.dtype.size,
            start=start,
            end=end,
        ))
    return BufferPlan(intervals)
