"""Buffer planning: liveness-based reuse of intermediate device memory.

BladeDISC's pipeline includes a buffer optimisation stage: intermediate
tensors whose live ranges do not overlap share device memory, which matters
doubly under dynamic shapes because the peak cannot be tuned per shape by
hand.  The plan is built once at compile time from the kernel order —
liveness intervals are *structural* — while actual byte sizes are evaluated
per call from the dim bindings, exactly like kernel cost recipes.

``BufferPlan.evaluate(dims)`` returns naive total vs reused peak bytes; the
engine surfaces both in ``RunStats.details``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.codegen.exprs import serialize_shape
from ..core.codegen.support import _shape

__all__ = ["BufferPlan", "Interval", "plan_buffers",
           "replan_peak_for_shape", "scale_batched_memory"]


@dataclass
class Interval:
    """One intermediate value's lifetime over the kernel sequence."""

    node_id: int
    shape: tuple          # serialized symbolic shape
    dtype_size: int
    start: int            # kernel index that produces the value
    end: int              # last kernel index that reads it
    slot: int = -1        # assigned reuse slot

    def bytes_at(self, dims: dict) -> int:
        return int(np.prod(_shape(self.shape, dims), initial=1)) \
            * self.dtype_size


class BufferPlan:
    """Compile-time liveness intervals + slot assignment."""

    def __init__(self, intervals: list, constant_bytes: int = 0,
                 size_hints: dict | None = None) -> None:
        self.intervals = intervals
        #: bytes of the executable's constant pool — resident for the
        #: whole program, shared across batch members, and charged into
        #: ``total_peak_bytes`` on *every* accounting path (record,
        #: prepare, batched prepare, legacy) so replayed plans agree
        #: with first-call stats.
        self.constant_bytes = int(constant_bytes)
        self.num_slots = self._assign_slots(size_hints)

    def _assign_slots(self, size_hints: dict | None = None) -> int:
        """Greedy interval-graph colouring in production order.

        Two intervals may share a slot iff their live ranges do not
        overlap.  Greedy over intervals sorted by start index uses the
        minimum number of slots (interval graphs are perfect).  Which
        *free* slot an interval reuses is a pure heuristic — any choice
        is sound — so with ``size_hints`` (symbol name -> representative
        dim value, the paper's "likely value") the planner best-fits by
        hinted byte size: big values share slots with big values, which
        keeps the one class-wide plan's peak close to what a per-shape
        re-planner achieves (the E11 gate).
        """
        slot_free_at: list[int] = []   # slot -> end of current occupant
        slot_size: list[int] = []      # slot -> max hinted bytes so far
        for interval in sorted(self.intervals, key=lambda i: i.start):
            free = [slot for slot, free_at in enumerate(slot_free_at)
                    if free_at < interval.start]
            if not free:
                interval.slot = len(slot_free_at)
                slot_free_at.append(interval.end)
                slot_size.append(self._hinted_bytes(interval, size_hints))
                continue
            if size_hints is None:
                slot = free[0]
            else:
                size = self._hinted_bytes(interval, size_hints)
                # Tightest slot already big enough, else least growth.
                slot = min(free, key=lambda s: (
                    (0, slot_size[s] - size) if slot_size[s] >= size
                    else (1, size - slot_size[s])))
                slot_size[slot] = max(slot_size[slot], size)
            interval.slot = slot
            slot_free_at[slot] = interval.end
        return len(slot_free_at)

    @staticmethod
    def _hinted_bytes(interval: Interval, size_hints: dict | None) -> int:
        if not size_hints:
            return 0
        try:
            return interval.bytes_at(size_hints)
        except Exception:
            return 0

    def evaluate(self, dims: dict) -> dict:
        """Per-call memory statistics for concrete dim bindings."""
        naive = 0
        slot_size = [0] * self.num_slots
        for interval in self.intervals:
            size = interval.bytes_at(dims)
            naive += size
            slot_size[interval.slot] = max(slot_size[interval.slot], size)
        peak = sum(slot_size)
        return {
            "naive_bytes": naive,
            "peak_bytes": peak,
            "constant_bytes": self.constant_bytes,
            "total_peak_bytes": peak + self.constant_bytes,
            "reuse_factor": naive / peak if peak else 1.0,
            "slots": self.num_slots,
            "values": len(self.intervals),
        }

    def verify_no_overlap_sharing(self) -> None:
        """Invariant check (used by tests): same slot => disjoint ranges."""
        by_slot: dict[int, list[Interval]] = {}
        for interval in self.intervals:
            by_slot.setdefault(interval.slot, []).append(interval)
        for intervals in by_slot.values():
            ordered = sorted(intervals, key=lambda i: i.start)
            for earlier, later in zip(ordered, ordered[1:]):
                if earlier.end >= later.start:
                    raise AssertionError(
                        f"overlapping intervals share slot: "
                        f"{earlier} / {later}")


#: memory-dict fields that scale with the batch dim (per-member bytes).
_BATCH_SCALED = ("naive_bytes", "peak_bytes")


def scale_batched_memory(memory: dict, batch_size: int) -> dict:
    """Per-member memory stats -> one batched launch's stats.

    Only the per-member *byte* totals scale with the batch dim.  The
    slot/value counts and the reuse ratio describe the plan itself and
    are batch-invariant, and the constant pool is shared across members
    — scaling those (as the old inline dict comprehension did) reported
    a 4-member batch as having 4x the slots and 4x the reuse factor.
    """
    scaled = dict(memory)
    for key in _BATCH_SCALED:
        if key in scaled:
            scaled[key] = scaled[key] * batch_size
    if "total_peak_bytes" in scaled:
        scaled["total_peak_bytes"] = (
            scaled.get("peak_bytes", 0) + scaled.get("constant_bytes", 0))
    return scaled


def replan_peak_for_shape(intervals: list, dims: dict) -> dict:
    """Best-fit-decreasing *per-shape* re-planning — the E11 baseline.

    This is what a planner that knows the concrete sizes (and is free
    to re-run per call) can do: place values largest-first into the
    tightest free slot whose live ranges stay disjoint.  It exists to
    keep the symbolic one-plan honest — the E11 gate bounds the
    class-wide plan's peak against this per-shape peak across a shape
    sweep.  Returns ``{"peak_bytes", "slots"}``.
    """
    items = sorted(intervals,
                   key=lambda i: (-i.bytes_at(dims), i.start, i.node_id))
    slots: list[dict] = []  # {"size": int, "ranges": [(start, end)]}
    for item in items:
        size = item.bytes_at(dims)
        best = None
        for slot in slots:
            if any(start <= item.end and item.start <= end
                   for start, end in slot["ranges"]):
                continue
            fits = slot["size"] >= size
            # prefer the tightest slot that already fits; otherwise the
            # one needing the least growth.
            cost = (0, slot["size"] - size) if fits \
                else (1, size - slot["size"])
            if best is None or cost < best[0]:
                best = (cost, slot)
        if best is None:
            slots.append({"size": size,
                          "ranges": [(item.start, item.end)]})
        else:
            slot = best[1]
            slot["size"] = max(slot["size"], size)
            slot["ranges"].append((item.start, item.end))
    return {
        "peak_bytes": sum(slot["size"] for slot in slots),
        "slots": len(slots),
    }


def plan_buffers(kernels: list, graph_outputs,
                 constant_bytes: int = 0) -> BufferPlan:
    """Build the liveness intervals from an ordered kernel list.

    Only *intermediates* are planned: values produced by one kernel and
    consumed by later ones.  Graph outputs live to the end of the program
    (they are handed to the caller); parameters and constants are not
    device-allocated per call.
    """
    from ..ir.shapes import SymDim

    output_ids = {node.id for node in graph_outputs}
    produced_at: dict[int, tuple] = {}   # node id -> (kernel idx, node)
    last_use: dict[int, int] = {}
    size_hints: dict[str, int] = {}
    for index, kernel in enumerate(kernels):
        for node in kernel.input_nodes:
            if node.id in produced_at:
                last_use[node.id] = index
        for node in kernel.output_nodes:
            produced_at[node.id] = (index, node)
            for dim in node.shape:
                if isinstance(dim, SymDim):
                    size_hints.setdefault(dim.name, dim.hint or 8)

    end_of_program = len(kernels)
    intervals = []
    for node_id, (start, node) in produced_at.items():
        end = end_of_program if node_id in output_ids else \
            last_use.get(node_id, start)
        intervals.append(Interval(
            node_id=node_id,
            shape=serialize_shape(node.shape),
            dtype_size=node.dtype.size,
            start=start,
            end=end,
        ))
    return BufferPlan(intervals, constant_bytes=constant_bytes,
                      size_hints=size_hints)
