"""Runtime abstraction layer: executables, host programs, engine, caches."""

from .caches import (ShapeSpecializationCache, make_signature_fn,
                     shape_signature)
from .engine import (EngineOptions, ExecutionEngine,
                     LegacyExecutionEngine, charge_batched_kernel,
                     charge_kernel)
from .executable import CompileReport, Executable
from .hostprog import (HostInstruction, HostProgram, lower_executable,
                       lower_program)
from .launchplan import (BatchLaunchPlan, LaunchPlan, LaunchPlanCache,
                         format_signature)
from .memory import (BufferPlan, Interval, plan_buffers,
                     replan_peak_for_shape, scale_batched_memory)
from .specialize import AdaptiveEngine, SpecializationOptions
from .symplan import (MemoryBudget, SlotExtent, SymbolicBufferPlan,
                      measure_peak_bytes, plan_symbolic)

__all__ = [
    "ShapeSpecializationCache", "shape_signature", "make_signature_fn",
    "EngineOptions", "ExecutionEngine", "LegacyExecutionEngine",
    "charge_batched_kernel", "charge_kernel",
    "CompileReport", "Executable",
    "HostInstruction", "HostProgram", "lower_executable", "lower_program",
    "BatchLaunchPlan", "LaunchPlan", "LaunchPlanCache", "format_signature",
    "BufferPlan", "Interval", "plan_buffers",
    "replan_peak_for_shape", "scale_batched_memory",
    "AdaptiveEngine", "SpecializationOptions",
    "MemoryBudget", "SlotExtent", "SymbolicBufferPlan",
    "measure_peak_bytes", "plan_symbolic",
]
