"""Runtime abstraction layer: executables, engine, caches."""

from .caches import ShapeSpecializationCache, shape_signature
from .engine import EngineOptions, ExecutionEngine
from .executable import CompileReport, Executable
from .memory import BufferPlan, Interval, plan_buffers
from .specialize import AdaptiveEngine, SpecializationOptions

__all__ = [
    "ShapeSpecializationCache", "shape_signature",
    "EngineOptions", "ExecutionEngine",
    "CompileReport", "Executable",
    "BufferPlan", "Interval", "plan_buffers",
    "AdaptiveEngine", "SpecializationOptions",
]
