"""The compiled host program: a slot-addressed instruction stream.

BladeDISC's combined compile-time/runtime codegen moves every decision
that does not need concrete shape *values* to compile time; the runtime
(RAL) only executes the residue.  The legacy engine violated that split on
the host side: every call re-walked the whole graph to resolve derived
symbols, managed its environment as a dict keyed by node ids, and
re-gathered each kernel's arguments by node identity.

:func:`lower_program` removes all of that structure-discovery from the
per-call path, once, at compile time:

- **dense slots** — every value (parameter, constant, kernel output) is
  renumbered to a dense index; the call environment becomes a preallocated
  list copied from a template with the constants already in place;
- **slot-indexed instructions** — each kernel's input/output slot tuples
  are precomputed, so argument gathering is plain list indexing;
- **factored dim resolution** — the whole-graph ``resolve_all_dims`` walk
  is reduced to a :class:`~repro.numerics.resolve.DimResolutionPlan`:
  one compiled closure per symbol-minting site, nothing else;
- **last-use release** — each instruction carries the slots whose final
  read it performs (the same liveness the buffer planner derives), so
  dead intermediates are dropped as the stream advances instead of
  pinning every array until the call returns;
- **signature fast path** — the per-call cache key is built by a
  precomputed param-order closure (no sorting; see
  :func:`~repro.runtime.caches.make_signature_fn`).

What still depends on concrete shape values — binding, derived-symbol
solving, schedule selection, cost evaluation, the memory-plan numbers —
runs once per *signature* and is frozen into a
:class:`~repro.runtime.launchplan.LaunchPlan`, not once per call.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..numerics.resolve import (DimResolutionPlan, bind_inputs,
                                bind_signature, build_resolution_plan)
from .caches import make_signature_fn

__all__ = ["HostInstruction", "HostProgram", "lower_program",
           "lower_executable"]


@dataclass(frozen=True)
class HostInstruction:
    """One kernel launch, fully slot-addressed."""

    #: the :class:`~repro.core.codegen.kernels.CompiledKernel` to run.
    kernel: object
    #: environment slots holding the kernel's arguments, in order.
    in_slots: tuple
    #: environment slots receiving the kernel's outputs, in order.
    out_slots: tuple
    #: slots whose last read this instruction performs (dead afterwards);
    #: never includes program outputs.
    release: tuple


class HostProgram:
    """The compile-time half of execution: slots, instructions, plans."""

    def __init__(self, params: list, param_slots: tuple,
                 env_template: list, instructions: list,
                 output_slots: tuple, resolution: DimResolutionPlan,
                 slot_of: dict, planned_slots: tuple = ()) -> None:
        #: parameter nodes, in program order (for binding).
        self.params = params
        #: ((slot, param_name), ...) — where each input array lands.
        self.param_slots = param_slots
        #: slot-indexed list with constants pre-bound; copied per call.
        self.env_template = env_template
        #: the ordered :class:`HostInstruction` stream.
        self.instructions = instructions
        #: slots holding the program results, in output order.
        self.output_slots = output_slots
        #: factored derived-symbol solver (runs once per signature).
        self.resolution = resolution
        #: node id -> slot (diagnostics, lint, tests).
        self.slot_of = slot_of
        #: env slots of buffer-planned values (kernel outputs the
        #: memory plan accounts for) — the measurement oracle in
        #: ``runtime.symplan`` tracks exactly these.
        self.planned_slots = tuple(planned_slots)
        #: param-order signature closure (the per-call cache key).
        self.signature = make_signature_fn(params)

    @property
    def num_slots(self) -> int:
        return len(self.env_template)

    def bind(self, inputs) -> dict:
        """Dim bindings for one call: unify inputs, solve derived symbols.

        This is the per-*signature* work; per-call execution reuses the
        frozen result from the launch plan.
        """
        dims = bind_inputs(self.params, inputs)
        self.resolution.run(dims)
        return dims

    def bind_signature(self, signature) -> dict:
        """Dim bindings straight from a ``(name, shape)`` signature.

        The array-free twin of :meth:`bind`, for callers that have a
        signature but no data — the batcher freezes plans for *padded*
        signatures no single request ever materializes.
        """
        dims = bind_signature(self.params, signature)
        self.resolution.run(dims)
        return dims

    @staticmethod
    def batched_signature(signature, batch_size: int) -> tuple:
        """``batch_size`` stacked members: a leading batch dim on every
        parameter shape.

        This is the signature a batched launch plan is keyed and
        formatted under, so batched and solo plans can never collide in a
        shared :class:`~repro.runtime.launchplan.LaunchPlanCache` — the
        ranks differ.
        """
        return tuple((name, (batch_size,) + tuple(shape))
                     for name, shape in signature)

    def describe(self) -> str:
        """Human-readable listing, for debugging and docs."""
        lines = [f"host program: {self.num_slots} slots, "
                 f"{len(self.instructions)} instructions, "
                 f"{len(self.resolution)} resolution steps"]
        for slot, name in self.param_slots:
            lines.append(f"  slot[{slot}] <- param {name!r}")
        for index, instr in enumerate(self.instructions):
            release = f" release{list(instr.release)}" if instr.release \
                else ""
            lines.append(
                f"  {index:3d}: {list(instr.out_slots)} = "
                f"{instr.kernel.name}({list(instr.in_slots)}){release}")
        lines.append(f"  return {list(self.output_slots)}")
        return "\n".join(lines)


def lower_program(graph, kernels: list, constants: dict,
                  buffer_plan=None) -> HostProgram:
    """Lower an ordered kernel list into a :class:`HostProgram`.

    Slot numbering follows the legacy engine's environment-population
    order — parameters, then constants, then each kernel's outputs in
    execution order — so the instruction stream computes byte-identical
    results in byte-identical order.
    """
    slot_of: dict[int, int] = {}

    def assign(node) -> int:
        slot = slot_of.get(node.id)
        if slot is None:
            slot = len(slot_of)
            slot_of[node.id] = slot
        return slot

    params = list(graph.params)
    param_slots = tuple(
        (assign(param), param.attrs["param_name"]) for param in params)
    constant_slots = [(assign(node), value)
                      for node, value in constants.items()]
    for kernel in kernels:
        for node in kernel.output_nodes:
            assign(node)

    def slot_for(node) -> int:
        slot = slot_of.get(node.id)
        if slot is None:
            raise ValueError(
                f"kernel input {node.short()} is produced by no kernel, "
                f"parameter or constant — broken execution order")
        return slot

    raw = [(kernel,
            tuple(slot_for(n) for n in kernel.input_nodes),
            tuple(slot_of[n.id] for n in kernel.output_nodes))
           for kernel in kernels]

    output_slots = tuple(slot_for(node) for node in graph.outputs)

    # Liveness over the instruction stream: a slot dies after its last
    # read (program outputs never die; unread kernel outputs die at
    # their producing instruction, matching the buffer plan's
    # ``end == start`` intervals).
    last_read: dict[int, int] = {}
    for index, (__, in_slots, __out) in enumerate(raw):
        for slot in in_slots:
            last_read[slot] = index
    live_to_end = set(output_slots)
    param_or_constant = {slot for slot, __ in param_slots}
    param_or_constant.update(slot for slot, __ in constant_slots)

    release_at: dict[int, list] = {}
    for index, (__, __in, out_slots) in enumerate(raw):
        for slot in out_slots:
            if slot in live_to_end or slot in param_or_constant:
                continue
            release_at.setdefault(last_read.get(slot, index), []) \
                .append(slot)
    for slot, index in last_read.items():
        if slot in live_to_end or slot not in param_or_constant:
            continue
        # Parameters and constants also drop out of the per-call
        # environment after their last read (the template keeps owning
        # the constant arrays themselves).
        release_at.setdefault(index, []).append(slot)

    instructions = [
        HostInstruction(
            kernel=kernel,
            in_slots=in_slots,
            out_slots=out_slots,
            release=tuple(sorted(set(release_at.get(index, ())))),
        )
        for index, (kernel, in_slots, out_slots) in enumerate(raw)]

    env_template: list = [None] * len(slot_of)
    for slot, value in constant_slots:
        env_template[slot] = value

    planned_slots: tuple = ()
    if buffer_plan is not None:
        planned_slots = tuple(sorted(
            slot_of[interval.node_id]
            for interval in buffer_plan.intervals
            if interval.node_id in slot_of))

    return HostProgram(
        params=params,
        param_slots=param_slots,
        env_template=env_template,
        instructions=instructions,
        output_slots=output_slots,
        resolution=build_resolution_plan(graph.nodes),
        slot_of=slot_of,
        planned_slots=planned_slots,
    )


def lower_executable(executable) -> HostProgram:
    """Lower a compiled :class:`~repro.runtime.executable.Executable`."""
    return lower_program(executable.graph, executable.kernels,
                         executable.constants,
                         buffer_plan=executable.buffer_plan)
