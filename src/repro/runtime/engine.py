"""The execution engine (the paper's Runtime Abstraction Layer, RAL).

Runs an :class:`Executable` on concrete inputs.  Execution is split the
way the paper splits codegen:

- **compile time** — the executable is lowered once into a
  :class:`~repro.runtime.hostprog.HostProgram`: dense value slots,
  slot-indexed instructions, factored dim resolution, last-use release
  (see :mod:`repro.runtime.hostprog`);
- **per signature** — the first call with a given input-shape signature
  binds the shapes, solves derived symbols, selects every kernel's
  schedule and evaluates cost recipes + memory plan, freezing all of it
  into a :class:`~repro.runtime.launchplan.LaunchPlan` in a bounded LRU
  cache;
- **per call** — a cache hit executes the instruction stream against the
  frozen dims (gather slots, run the kernel, scatter slots, drop dead
  values) and charges the precomputed cost.

Simulated statistics and numeric outputs are bit-identical to
:class:`LegacyExecutionEngine`, the per-call interpreter-style engine
kept for the E15 host-overhead comparison and the equivalence suite.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping, Sequence

import numpy as np

from ..core.codegen.schedules import Schedule, schedule_named
from ..core.fusion.kinds import FusionKind
from ..device.cost import KernelSpec, kernel_time_us
from ..device.counters import RunStats
from ..device.profiles import DeviceProfile
from ..numerics.resolve import bind_inputs, resolve_all_dims
from ..obs.tracer import resolve_tracer
from .executable import Executable
from .hostprog import HostProgram, lower_executable
from .launchplan import (BatchLaunchPlan, LaunchPlan, LaunchPlanCache,
                         format_signature)
from .memory import scale_batched_memory

__all__ = ["EngineOptions", "ExecutionEngine", "LegacyExecutionEngine",
           "charge_batched_kernel", "charge_kernel"]


@dataclass
class EngineOptions:
    """Execution knobs (ablations use these)."""

    #: codegen quality relative to a perfectly tuned static kernel; the
    #: paper concedes a small gap versus shape-specialised code.
    base_efficiency: float = 0.95
    #: host-side cost of issuing one kernel from compiled host code.
    dispatch_us_per_kernel: float = 0.6
    #: force a single schedule variant everywhere (experiment E9); None
    #: enables the runtime selector.
    fixed_schedule: str | None = None
    #: charge host-placed ops at host cost instead of kernel launches
    #: (disabled by the E10 ablation to show why placement matters).
    host_placement_enabled: bool = True
    #: bound on live launch plans (per-signature frozen host state);
    #: None is unbounded.
    plan_capacity: int | None = 64


def charge_kernel(kernel, dims: dict, stats: RunStats,
                  forced: Schedule | None, options: EngineOptions,
                  device: DeviceProfile, selector=None) -> None:
    """Account one kernel launch into ``stats`` (simulated cost).

    Shared by the legacy per-call engine and the launch-plan recorder so
    the two cost paths cannot drift.  ``selector`` is the schedule
    selection seam (None = dispatch-stub heuristics); the chosen variant
    of every schedulable kernel is surfaced in
    ``stats.details["schedules"]`` so tests and benches can assert on
    picks.
    """
    kind = kernel.kind
    if kind is FusionKind.METADATA:
        # reshape-only: a host-side view adjustment.
        stats.host_time_us += 0.1 * len(kernel.members)
        return
    if kind is FusionKind.HOST:
        if options.host_placement_enabled:
            stats.host_time_us += device.host_op_us * len(kernel.members)
            return
        # Ablation: shape computation launched as device kernels.
        spec = kernel.cost_spec(dims, None, options.base_efficiency)
        stats.device_time_us += kernel_time_us(spec, device)
        stats.kernels_launched += 1
        return
    schedule = kernel.resolve_schedule(dims, forced, selector)
    if schedule is not None:
        stats.details.setdefault("schedules", {})[kernel.name] = \
            schedule.name
    spec = kernel.cost_spec(dims, schedule, options.base_efficiency)
    stats.device_time_us += kernel_time_us(spec, device)
    stats.kernels_launched += 1 + spec.extra_launches
    stats.bytes_read += spec.bytes_read
    stats.bytes_written += spec.bytes_written
    stats.flops += spec.flops


def _batch_spec(spec: KernelSpec, batch: int) -> KernelSpec:
    """Scale one member's cost spec to a batched launch of ``batch``."""
    if batch == 1:
        return spec
    return replace(
        spec,
        bytes_read=spec.bytes_read * batch,
        bytes_written=spec.bytes_written * batch,
        flops=spec.flops * batch,
        parallel_elements=spec.parallel_elements * batch)


def charge_batched_kernel(kernel, dims: dict, batch: int, stats: RunStats,
                          forced: Schedule | None, options: EngineOptions,
                          device: DeviceProfile, selector=None) -> None:
    """Account one *batched* kernel launch (``batch`` stacked members).

    The batch rides a leading dim through a single launch: bytes, flops
    and parallel elements scale with ``batch`` while the launch overhead
    is paid once — the whole point of batching on a launch-bound device.
    Metadata and host-placed work is per launch, not per member (a
    batched reshape is still one view fix), so it is charged once.
    """
    kind = kernel.kind
    if kind is FusionKind.METADATA:
        stats.host_time_us += 0.1 * len(kernel.members)
        return
    if kind is FusionKind.HOST:
        if options.host_placement_enabled:
            stats.host_time_us += device.host_op_us * len(kernel.members)
            return
        spec = _batch_spec(
            kernel.cost_spec(dims, None, options.base_efficiency), batch)
        stats.device_time_us += kernel_time_us(spec, device)
        stats.kernels_launched += 1
        return
    schedule = kernel.resolve_schedule(dims, forced, selector)
    if schedule is not None:
        stats.details.setdefault("schedules", {})[kernel.name] = \
            schedule.name
    spec = _batch_spec(
        kernel.cost_spec(dims, schedule, options.base_efficiency), batch)
    stats.device_time_us += kernel_time_us(spec, device)
    stats.kernels_launched += 1 + spec.extra_launches
    stats.bytes_read += spec.bytes_read
    stats.bytes_written += spec.bytes_written
    stats.flops += spec.flops


class ExecutionEngine:
    """Executes a compiled program through its host program.

    ``plan_cache``/``plan_tag`` let several engines share one
    :class:`LaunchPlanCache` (the adaptive specialiser runs a generic and
    a specialised engine over the same signature stream); the tag keeps
    their frozen plans apart while the signature statistics unify.

    ``tracer`` (None = off) wraps every call in an ``engine:run`` span
    holding an ``engine:record`` or ``engine:replay`` child with
    per-kernel launch spans.  The untraced replay loop is kept entirely
    branch-free: ``run`` dispatches once on ``tracer.enabled``.
    """

    def __init__(self, executable: Executable, device: DeviceProfile,
                 options: EngineOptions | None = None, *,
                 plan_cache: LaunchPlanCache | None = None,
                 plan_tag: str = "main", tracer=None) -> None:
        self.executable = executable
        self.device = device
        self.options = options or EngineOptions()
        self.tracer = resolve_tracer(tracer)
        program = getattr(executable, "host_program", None)
        if program is None:
            # Hand-assembled executables (tests, serde round-trips) are
            # lowered on first use; the pipeline lowers at compile time.
            program = lower_executable(executable)
            executable.host_program = program
        self.host_program: HostProgram = program
        self.plans = plan_cache if plan_cache is not None else \
            LaunchPlanCache(self.options.plan_capacity,
                            tracer=tracer)
        self._plan_tag = plan_tag
        # The class-wide memory snapshot is computed once per engine —
        # every frozen plan of every signature in the class shares it,
        # so replay never touches the planner again.
        symbolic = getattr(executable, "symbolic_plan", None)
        self._memory_class = symbolic.snapshot() \
            if symbolic is not None else None

    def run(self, inputs: Mapping[str, np.ndarray],
            signature: tuple | None = None) -> tuple[list, RunStats]:
        """Execute on concrete inputs; returns (outputs, stats).

        ``signature`` lets a caller that already computed (and noted)
        the call's signature — the adaptive specialiser — skip the
        recomputation; plain callers leave it None.
        """
        if self.tracer.enabled:
            return self._run_traced(inputs, signature)
        program = self.host_program
        if signature is None:
            signature = program.signature(inputs)
            self.plans.note(signature)
        plan = self.plans.get((self._plan_tag, signature))
        if plan is None:
            outputs, stats, plan = self._record(inputs, signature)
            self.plans.put((self._plan_tag, signature), plan)
            return outputs, stats
        return self._replay(plan, inputs)

    def _run_traced(self, inputs: Mapping[str, np.ndarray],
                    signature: tuple | None) -> tuple[list, RunStats]:
        """The traced twin of :meth:`run`; same order, same charges."""
        tracer = self.tracer
        program = self.host_program
        with tracer.span("engine:run", tag=self._plan_tag) as span:
            if signature is None:
                signature = program.signature(inputs)
                self.plans.note(signature)
            span.set(signature=format_signature(signature))
            plan = self.plans.get((self._plan_tag, signature))
            if plan is None:
                with tracer.span("engine:record") as rec:
                    outputs, stats, plan = self._record(inputs, signature)
                    rec.set(kernels_launched=stats.kernels_launched)
                self.plans.put((self._plan_tag, signature), plan)
                span.set(path="record", cache_hit=False)
                return outputs, stats
            with tracer.span("engine:replay") as rep:
                outputs, stats = self._replay_traced(plan, inputs)
                rep.set(kernels_launched=stats.kernels_launched)
            span.set(path="replay", cache_hit=True)
            return outputs, stats

    def peek_plan(self, signature: tuple) -> LaunchPlan | None:
        """The frozen plan for ``signature`` (no stats side effects)."""
        return self.plans.peek((self._plan_tag, signature))

    def prepare(self, inputs: Mapping[str, np.ndarray],
                signature: tuple | None = None, *,
                selector=None, overwrite: bool = False) -> LaunchPlan:
        """Freeze and install the signature's plan without executing data.

        This is the background-compilation entry point of the serving
        runtime (:mod:`repro.serving`): all the shape-generic work of a
        first call — binding, derived-symbol resolution, schedule
        selection, cost-recipe and memory-plan evaluation — runs here in
        the exact order :meth:`_record` charges it, so the frozen plan is
        bit-identical to one recorded by a data-carrying first call, and
        a later :meth:`run` of the signature replays it as a warm hit.

        ``selector`` freezes schedule picks chosen by a non-default
        policy (the autotuner's winners) into the plan; ``overwrite``
        replaces an already-installed plan — the tuner uses it to
        upgrade a heuristic plan in place.
        """
        program = self.host_program
        if signature is None:
            signature = program.signature(inputs)
        if not overwrite:
            existing = self.plans.peek((self._plan_tag, signature))
            if existing is not None:
                return existing
        tracer = self.tracer
        with tracer.span("engine:prepare", tag=self._plan_tag) as span:
            options = self.options
            dims = bind_inputs(program.params, inputs)
            program.resolution.run(dims)
            stats = RunStats(cache_hit=True)
            forced: Schedule | None = None
            if options.fixed_schedule is not None:
                forced = schedule_named(options.fixed_schedule)
            device = self.device
            for instr in program.instructions:
                charge_kernel(instr.kernel, dims, stats, forced, options,
                              device, selector)
            stats.host_time_us += (options.dispatch_us_per_kernel
                                   * stats.kernels_launched)
            buffer_plan = self.executable.buffer_plan
            if buffer_plan is not None:
                stats.details["memory"] = buffer_plan.evaluate(dims)
            plan = LaunchPlan.freeze(signature, dims, stats,
                                     tuned=selector is not None)
            plan.memory_class = self._memory_class
            self.plans.put((self._plan_tag, signature), plan)
            if tracer.enabled:
                span.set(signature=format_signature(signature),
                         kernels_launched=stats.kernels_launched)
        return plan

    # -- batched launches (the serving batcher's entry points) -------------

    def _batched_key(self, signature: tuple, batch_size: int) -> tuple:
        """Plan-cache key of a batched launch: the batch dim is part of
        the signature (leading dim), the tag keeps a ``@batch`` marker so
        diagnostics can tell the plan populations apart."""
        return (f"{self._plan_tag}@batch",
                HostProgram.batched_signature(signature, batch_size))

    def peek_batched(self, signature: tuple,
                     batch_size: int) -> BatchLaunchPlan | None:
        """The frozen batched plan, or None (no stats side effects)."""
        return self.plans.peek(self._batched_key(signature, batch_size))

    def prepare_batched(self, signature: tuple,
                        batch_size: int) -> BatchLaunchPlan:
        """Freeze the launch plan for ``batch_size`` stacked members.

        ``signature`` is the bucket's *padded* per-member signature; the
        frozen cost charges every kernel once with bytes/flops/parallel
        elements scaled by ``batch_size`` (padding waste included — the
        padded dims, not the members' true dims, drive the recipes).
        Like :meth:`prepare`, no tensor data is touched; this is the
        background-compilation entry for batched plans.
        """
        key = self._batched_key(signature, batch_size)
        existing = self.plans.peek(key)
        if existing is not None:
            return existing
        tracer = self.tracer
        with tracer.span("engine:prepare_batched",
                         tag=self._plan_tag) as span:
            options = self.options
            program = self.host_program
            dims = program.bind_signature(signature)
            stats = RunStats(cache_hit=True)
            forced: Schedule | None = None
            if options.fixed_schedule is not None:
                forced = schedule_named(options.fixed_schedule)
            device = self.device
            for instr in program.instructions:
                charge_batched_kernel(instr.kernel, dims, batch_size,
                                      stats, forced, options, device)
            stats.host_time_us += (options.dispatch_us_per_kernel
                                   * stats.kernels_launched)
            buffer_plan = self.executable.buffer_plan
            if buffer_plan is not None:
                stats.details["memory"] = scale_batched_memory(
                    buffer_plan.evaluate(dims), batch_size)
            plan = BatchLaunchPlan.freeze_batched(
                key[1], dims, stats, batch_size, signature)
            if self._memory_class is not None:
                plan.memory_class = dict(self._memory_class,
                                         batch=batch_size)
            self.plans.put(key, plan)
            if tracer.enabled:
                span.set(signature=format_signature(key[1]),
                         batch=batch_size,
                         kernels_launched=stats.kernels_launched)
        return plan

    def run_batched(self, inputs_list: Sequence[Mapping[str, np.ndarray]],
                    signature: tuple, batch_size: int) -> tuple:
        """Serve ``inputs_list`` members with one batched launch.

        Numeric execution is per member against its *true* dims —
        padding is a cost concept, never a numeric one — so each
        member's outputs are bit-identical to a solo run of the same
        inputs.  The simulated cost is the frozen batched plan's,
        charged once for the whole launch; returns
        ``(per_member_outputs, stats)``.
        """
        plan = self.plans.get(self._batched_key(signature, batch_size))
        if plan is None:
            plan = self.prepare_batched(signature, batch_size)
        program = self.host_program
        results = []
        for inputs in inputs_list:
            dims = program.bind(inputs)
            env = program.env_template.copy()
            for slot, name in program.param_slots:
                env[slot] = np.ascontiguousarray(inputs[name])
            for instr in program.instructions:
                outputs = instr.kernel.execute(
                    [env[s] for s in instr.in_slots], dims)
                for slot, value in zip(instr.out_slots, outputs):
                    env[slot] = value
                for slot in instr.release:
                    env[slot] = None
            results.append([env[slot] for slot in program.output_slots])
        return results, plan.make_stats()

    # -- cold path: execute while freezing the plan ------------------------

    def _record(self, inputs: Mapping[str, np.ndarray],
                signature: tuple) -> tuple:
        """First call of a signature: run, charge, and freeze.

        Mirrors the legacy engine statement for statement — same binding,
        same execution order, same charge order — so outputs and stats
        are bit-identical; the only addition is that the results of the
        shape-generic work are captured for replay.
        """
        program = self.host_program
        options = self.options
        dims = bind_inputs(program.params, inputs)
        program.resolution.run(dims)
        stats = RunStats(cache_hit=True)

        env = program.env_template.copy()
        for slot, name in program.param_slots:
            env[slot] = np.ascontiguousarray(inputs[name])

        forced: Schedule | None = None
        if options.fixed_schedule is not None:
            forced = schedule_named(options.fixed_schedule)
        device = self.device
        tracer = self.tracer
        traced = tracer.enabled
        for instr in program.instructions:
            kernel = instr.kernel
            if traced:
                span = tracer.begin(f"kernel:{kernel.name}",
                                    slots=list(instr.out_slots))
            outputs = kernel.execute([env[s] for s in instr.in_slots],
                                     dims)
            for slot, value in zip(instr.out_slots, outputs):
                env[slot] = value
            before = stats.kernels_launched
            charge_kernel(kernel, dims, stats, forced, options, device)
            if traced:
                tracer.end(span,
                           launches=stats.kernels_launched - before)
            for slot in instr.release:
                env[slot] = None

        stats.host_time_us += (options.dispatch_us_per_kernel
                               * stats.kernels_launched)
        buffer_plan = self.executable.buffer_plan
        if buffer_plan is not None:
            stats.details["memory"] = buffer_plan.evaluate(dims)
        results = [env[slot] for slot in program.output_slots]
        plan = LaunchPlan.freeze(signature, dims, stats)
        plan.memory_class = self._memory_class
        return results, stats, plan

    # -- warm path: replay against the frozen plan -------------------------

    def _replay(self, plan: LaunchPlan,
                inputs: Mapping[str, np.ndarray]) -> tuple:
        """Cache hit: gather slots, run kernels, charge frozen cost."""
        program = self.host_program
        dims = plan.dims
        env = program.env_template.copy()
        for slot, name in program.param_slots:
            env[slot] = np.ascontiguousarray(inputs[name])
        for instr in program.instructions:
            outputs = instr.kernel.execute(
                [env[s] for s in instr.in_slots], dims)
            for slot, value in zip(instr.out_slots, outputs):
                env[slot] = value
            for slot in instr.release:
                env[slot] = None
        results = [env[slot] for slot in program.output_slots]
        return results, plan.make_stats()

    def _replay_traced(self, plan: LaunchPlan,
                       inputs: Mapping[str, np.ndarray]) -> tuple:
        """Traced twin of :meth:`_replay` (which stays branch-free).

        Replay charges the plan's frozen aggregate cost rather than
        re-charging kernel by kernel, so the per-kernel spans here carry
        no ``launches`` attribute — the plan-level count lives on the
        enclosing ``engine:replay`` span.
        """
        tracer = self.tracer
        program = self.host_program
        dims = plan.dims
        env = program.env_template.copy()
        for slot, name in program.param_slots:
            env[slot] = np.ascontiguousarray(inputs[name])
        for instr in program.instructions:
            with tracer.span(f"kernel:{instr.kernel.name}"):
                outputs = instr.kernel.execute(
                    [env[s] for s in instr.in_slots], dims)
            for slot, value in zip(instr.out_slots, outputs):
                env[slot] = value
            for slot in instr.release:
                env[slot] = None
        results = [env[slot] for slot in program.output_slots]
        return results, plan.make_stats()


class LegacyExecutionEngine:
    """The per-call interpreter-style engine the host program replaced.

    Re-derives the shape-generic work — input binding, a whole-graph
    symbol-resolution walk, dict-of-node-id environment, per-kernel
    schedule selection and cost evaluation — on every call.  Kept as the
    bit-exactness reference for the equivalence suite and as the
    baseline the E15 host-overhead benchmark measures against.
    """

    def __init__(self, executable: Executable, device: DeviceProfile,
                 options: EngineOptions | None = None,
                 tracer=None) -> None:
        self.executable = executable
        self.device = device
        self.options = options or EngineOptions()
        self.tracer = resolve_tracer(tracer)

    def run(self, inputs: Mapping[str, np.ndarray]
            ) -> tuple[list, RunStats]:
        """Execute on concrete inputs; returns (outputs, stats)."""
        if self.tracer.enabled:
            with self.tracer.span("engine:legacy_run") as span:
                results, stats = self._run(inputs, self.tracer)
                span.set(kernels_launched=stats.kernels_launched)
            return results, stats
        return self._run(inputs, self.tracer)

    def _run(self, inputs: Mapping[str, np.ndarray], tracer
             ) -> tuple[list, RunStats]:
        executable = self.executable
        options = self.options
        dims = bind_inputs(executable.params, inputs)
        resolve_all_dims(executable.graph.nodes, dims)
        stats = RunStats(cache_hit=True)

        env: dict[int, np.ndarray] = {}
        for param in executable.params:
            env[param.id] = np.ascontiguousarray(
                inputs[param.attrs["param_name"]])
        for node, value in executable.constants.items():
            env[node.id] = value

        forced: Schedule | None = None
        if options.fixed_schedule is not None:
            forced = schedule_named(options.fixed_schedule)

        traced = tracer.enabled
        for kernel in executable.kernels:
            if traced:
                span = tracer.begin(f"kernel:{kernel.name}")
            args = [env[n.id] for n in kernel.input_nodes]
            outputs = kernel.execute(args, dims)
            for node, value in zip(kernel.output_nodes, outputs):
                env[node.id] = value
            before = stats.kernels_launched
            charge_kernel(kernel, dims, stats, forced, options,
                          self.device)
            if traced:
                tracer.end(span,
                           launches=stats.kernels_launched - before)

        stats.host_time_us += (options.dispatch_us_per_kernel
                               * stats.kernels_launched)
        if executable.buffer_plan is not None:
            stats.details["memory"] = executable.buffer_plan.evaluate(dims)
        results = [env[out.id] for out in executable.outputs]
        return results, stats
