"""The execution engine (the paper's Runtime Abstraction Layer, RAL).

Runs an :class:`Executable` on concrete inputs: binds symbolic dims from
the input shapes, walks the kernel list, executes each generated kernel for
real (numpy) and charges its simulated device cost.  Per-kernel schedule
variants are selected here, at run time, from the concrete shapes — the
runtime half of the combined codegen approach.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..core.codegen.schedules import Schedule, schedule_named
from ..core.fusion.kinds import FusionKind
from ..device.cost import kernel_time_us
from ..device.counters import RunStats
from ..device.profiles import DeviceProfile
from ..numerics.resolve import bind_inputs, resolve_all_dims
from .executable import Executable

__all__ = ["EngineOptions", "ExecutionEngine"]


@dataclass
class EngineOptions:
    """Execution knobs (ablations use these)."""

    #: codegen quality relative to a perfectly tuned static kernel; the
    #: paper concedes a small gap versus shape-specialised code.
    base_efficiency: float = 0.95
    #: host-side cost of issuing one kernel from compiled host code.
    dispatch_us_per_kernel: float = 0.6
    #: force a single schedule variant everywhere (experiment E9); None
    #: enables the runtime selector.
    fixed_schedule: str | None = None
    #: charge host-placed ops at host cost instead of kernel launches
    #: (disabled by the E10 ablation to show why placement matters).
    host_placement_enabled: bool = True


class ExecutionEngine:
    """Executes a compiled program and accounts its simulated cost."""

    def __init__(self, executable: Executable, device: DeviceProfile,
                 options: EngineOptions | None = None) -> None:
        self.executable = executable
        self.device = device
        self.options = options or EngineOptions()

    def run(self, inputs: Mapping[str, np.ndarray]
            ) -> tuple[list, RunStats]:
        """Execute on concrete inputs; returns (outputs, stats)."""
        executable = self.executable
        options = self.options
        dims = bind_inputs(executable.params, inputs)
        resolve_all_dims(executable.graph.nodes, dims)
        stats = RunStats(cache_hit=True)

        env: dict[int, np.ndarray] = {}
        for param in executable.params:
            env[param.id] = np.ascontiguousarray(
                inputs[param.attrs["param_name"]])
        for node, value in executable.constants.items():
            env[node.id] = value

        forced: Schedule | None = None
        if options.fixed_schedule is not None:
            forced = schedule_named(options.fixed_schedule)

        for kernel in executable.kernels:
            args = [env[n.id] for n in kernel.input_nodes]
            outputs = kernel.execute(args, dims)
            for node, value in zip(kernel.output_nodes, outputs):
                env[node.id] = value
            self._charge(kernel, dims, stats, forced)

        stats.host_time_us += (options.dispatch_us_per_kernel
                               * stats.kernels_launched)
        if executable.buffer_plan is not None:
            stats.details["memory"] = executable.buffer_plan.evaluate(dims)
        results = [env[out.id] for out in executable.outputs]
        return results, stats

    def _charge(self, kernel, dims: dict, stats: RunStats,
                forced: Schedule | None) -> None:
        options = self.options
        kind = kernel.kind
        if kind is FusionKind.METADATA:
            # reshape-only: a host-side view adjustment.
            stats.host_time_us += 0.1 * len(kernel.members)
            return
        if kind is FusionKind.HOST:
            if options.host_placement_enabled:
                stats.host_time_us += (self.device.host_op_us
                                       * len(kernel.members))
                return
            # Ablation: shape computation launched as device kernels.
            spec = kernel.cost_spec(dims, None, options.base_efficiency)
            stats.device_time_us += kernel_time_us(spec, self.device)
            stats.kernels_launched += 1
            return
        schedule = forced if forced is not None else \
            kernel.select_schedule(dims)
        if forced is not None and kernel.recipe.domain is not None:
            # A forced elementwise schedule makes no sense on a row-space
            # kernel and vice versa; fall back to the selector there.
            domain_kind = kernel.recipe.domain[0]
            is_row = schedule.name in ("row_per_warp", "row_per_block",
                                       "two_pass")
            if (domain_kind == "rows") != is_row:
                schedule = kernel.select_schedule(dims)
        spec = kernel.cost_spec(dims, schedule, options.base_efficiency)
        stats.device_time_us += kernel_time_us(spec, self.device)
        stats.kernels_launched += 1 + spec.extra_launches
        stats.bytes_read += spec.bytes_read
        stats.bytes_written += spec.bytes_written
        stats.flops += spec.flops
