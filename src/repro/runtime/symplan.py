"""Symbolic buffer planning: one reuse plan per signature class.

The concrete :class:`~repro.runtime.memory.BufferPlan` is already
shape-generic in *structure* — liveness intervals and slot assignment
come from the kernel order alone — but every byte number it reports is
evaluated per concrete binding, so the memory story was the last stage
in the warm path still reasoned about one shape at a time.  This module
lifts it to the *signature class*, the BladeDISC++ way:

- every reuse slot gets a **symbolic extent**: the interval join of its
  occupants' byte-size facts (``IntervalMap.size_fact``), i.e. the
  max-over-class the slot can ever need;
- the **class peak** is the interval sum of the slot extents, carried
  as an :class:`~repro.core.symbolic.intervals.IntervalFact` whose
  provenance chain names every constraint-store fact the bound rests
  on;
- aliasing is proven safe against ``derive_intervals`` facts instead of
  concrete sizes (:meth:`SymbolicBufferPlan.verify_sound`, the same
  judgement the L602 analyzer makes, implemented independently so the
  fuzz oracle can cross-check the two);
- :class:`MemoryBudget` turns the proven upper bound into admission
  arithmetic: the largest batch size and replica count whose class-wide
  peak provably fits a device capacity.  The batching engine and the
  fleet consume it (`BatchingOptions.memory_budget`,
  ``FleetOptions.memory_budget``).

One plan serves every shape in the class: ``LaunchPlan.memory_class``
carries the frozen snapshot, so replay never re-derives the class-wide
story, and per-call numbers still come from the *same* slot assignment
the concrete plan uses — ``evaluate`` delegates, which is what makes
the engines' per-shape stats bit-identical with and without the
symbolic layer (property-tested in ``tests/runtime``).

``measure_peak_bytes`` is the ground-truth oracle: it walks the host
program exactly like the engine, tracking the live bytes the planned
values actually hold, so ``peak_at(dims) >= measured`` is checkable for
any binding the property/fuzz suites sample.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.codegen.support import _shape
from ..core.symbolic.intervals import (Interval, IntervalFact, IntervalMap,
                                       derive_intervals)

__all__ = ["MemoryBudget", "SlotExtent", "SymbolicBufferPlan",
           "measure_peak_bytes", "plan_symbolic", "repack_for_class"]


@dataclass(frozen=True)
class SlotExtent:
    """One reuse slot's class-wide byte requirement.

    ``exprs`` are the distinct ``(serialized_shape, dtype_size)`` pairs
    the slot ever holds — the symbolic expression the per-call maximum
    is computed from; ``fact`` is their interval join with merged
    provenance.
    """

    slot: int
    occupants: tuple        # node ids, production order
    exprs: tuple            # distinct (serialized shape, dtype_size)
    fact: IntervalFact      # join over occupant size facts

    def bytes_at(self, dims: dict) -> int:
        """The slot's concrete requirement at one binding: the max of
        its occupant size expressions (identical to what the concrete
        plan charges the slot)."""
        best = 0
        for shape, dtype_size in self.exprs:
            size = int(np.prod(_shape(shape, dims), initial=1)) \
                * dtype_size
            if size > best:
                best = size
        return best

    def describe(self) -> str:
        shapes = ", ".join(
            f"{'x'.join(str(d) for d in shape)}*{dtype_size}"
            for shape, dtype_size in self.exprs)
        return f"slot {self.slot}: max({shapes}) in {self.fact.interval}"


class SymbolicBufferPlan:
    """One reuse plan, valid for every shape in the signature class.

    Wraps the concrete :class:`BufferPlan` (same intervals, same slot
    assignment — per-call numbers delegate, so nothing the engines
    report changes) and adds the class-wide layer: symbolic slot
    extents, an interval-valued peak with a provenance chain, and the
    liveness/aliasing proof over interval facts.
    """

    def __init__(self, buffer_plan, imap: IntervalMap,
                 constant_bytes: int = 0) -> None:
        self.base = buffer_plan
        self.imap = imap
        #: shared constant pool bytes (one copy per executable, never
        #: scaled by batch size).
        self.constant_bytes = int(constant_bytes)
        self.slots: list[SlotExtent] = self._join_slots()
        self.peak_fact = self._sum_fact(
            [extent.fact for extent in self.slots],
            head="class peak = sum of slot extents")
        self.naive_fact = self._sum_fact(
            [imap.size_fact(i.shape, i.dtype_size)
             for i in buffer_plan.intervals],
            head="class naive = sum of all values")

    # -- construction -------------------------------------------------------

    def _join_slots(self) -> list:
        by_slot: dict[int, list] = {}
        for interval in self.base.intervals:
            by_slot.setdefault(interval.slot, []).append(interval)
        extents = []
        for slot in range(self.base.num_slots):
            occupants = sorted(by_slot.get(slot, []),
                               key=lambda i: (i.start, i.end))
            exprs: list = []
            joined: IntervalFact | None = None
            for occ in occupants:
                expr = (tuple(occ.shape), occ.dtype_size)
                if expr not in exprs:
                    exprs.append(expr)
                fact = self.imap.size_fact(occ.shape, occ.dtype_size)
                if joined is None:
                    joined = fact
                else:
                    joined = IntervalFact(
                        joined.interval.join(fact.interval),
                        joined.chain + fact.chain)
            if joined is None:
                joined = IntervalFact(Interval.point(0),
                                      ("empty slot",))
            extents.append(SlotExtent(
                slot=slot,
                occupants=tuple(o.node_id for o in occupants),
                exprs=tuple(exprs),
                fact=IntervalFact(
                    joined.interval,
                    (f"slot {slot} extent in {joined.interval} "
                     f"(join of {len(occupants)} occupants)",)
                    + joined.chain)))
        return extents

    @staticmethod
    def _sum_fact(facts: list, head: str) -> IntervalFact:
        total = Interval.point(0)
        chain: list = [head]
        for fact in facts:
            total = total.add(fact.interval)
            chain.extend(fact.chain)
        return IntervalFact(total, (f"{head}: {total}",) + tuple(chain[1:]))

    # -- per-call numbers (delegation = bit-identity with the legacy plan) --

    @property
    def num_slots(self) -> int:
        return self.base.num_slots

    @property
    def intervals(self) -> list:
        return self.base.intervals

    def evaluate(self, dims: dict) -> dict:
        """Exactly :meth:`BufferPlan.evaluate` — the symbolic layer
        never changes what a concrete call is charged."""
        return self.base.evaluate(dims)

    def peak_at(self, dims: dict) -> int:
        """The class plan's peak at one binding, from the frozen slot
        expressions (no re-planning).  Equal to
        ``evaluate(dims)["peak_bytes"]`` by construction — the property
        suite pins that — and bounded by :attr:`peak_fact` for every
        in-class binding."""
        return sum(extent.bytes_at(dims) for extent in self.slots)

    # -- class-wide story ----------------------------------------------------

    @property
    def proven(self) -> bool:
        """True when the class peak has a finite proven upper bound."""
        return self.peak_fact.interval.hi is not None

    def peak_hi_bytes(self) -> int | None:
        """Proven class-wide peak upper bound (None = unbounded)."""
        return self.peak_fact.interval.hi

    def footprint_hi_bytes(self, batch_size: int = 1) -> int | None:
        """Proven device bytes one resident copy needs: the class peak
        (scaled linearly by the batch dim, matching the batched cost
        model) plus the shared constant pool."""
        hi = self.peak_hi_bytes()
        if hi is None:
            return None
        return hi * int(batch_size) + self.constant_bytes

    def peak_expression(self) -> str:
        """The symbolic peak as a readable expression over slot maxima."""
        return " + ".join(
            f"max({', '.join('x'.join(str(d) for d in shape) + f'*{ds}' for shape, ds in extent.exprs)})"
            for extent in self.slots) or "0"

    def provenance(self) -> tuple:
        """The blame chain the peak bound rests on, seed-first."""
        return self.peak_fact.chain

    def snapshot(self) -> dict:
        """The frozen class-wide memory story a launch plan carries.

        Plain data (ints/strings), cheap to copy, identical for every
        signature in the class — replay attaches it without touching
        the planner again.
        """
        interval = self.peak_fact.interval
        return {
            "slots": self.base.num_slots,
            "values": len(self.base.intervals),
            "peak_lo_bytes": interval.lo,
            "peak_hi_bytes": interval.hi,
            "constant_bytes": self.constant_bytes,
            "proven": self.proven,
            "expression": self.peak_expression(),
        }

    # -- the aliasing proof ---------------------------------------------------

    def verify_sound(self) -> list:
        """Prove every slot reuse safe over the whole class.

        Two occupants of one slot must have disjoint live ranges; an
        overlap is tolerable only when at least one occupant is provably
        zero-sized for *every* shape in the class (interval facts, not
        concrete sizes, make that call — the same judgement L602 makes,
        implemented independently so the fuzz oracle can cross-check).
        Returns human-readable violations; empty means proven sound.
        """
        violations = []
        by_slot: dict[int, list] = {}
        for interval in self.base.intervals:
            by_slot.setdefault(interval.slot, []).append(interval)
        for slot, occupants in sorted(by_slot.items()):
            ordered = sorted(occupants, key=lambda i: (i.start, i.end))
            for earlier, later in zip(ordered, ordered[1:]):
                if earlier.end < later.start:
                    continue
                size_a = self.imap.size_fact(earlier.shape,
                                             earlier.dtype_size)
                size_b = self.imap.size_fact(later.shape,
                                             later.dtype_size)
                if not (size_a.interval.can_be_positive()
                        and size_b.interval.can_be_positive()):
                    continue
                violations.append(
                    f"slot {slot}: node {earlier.node_id} "
                    f"(live {earlier.start}..{earlier.end}, "
                    f"{size_a.describe()}) aliases node {later.node_id} "
                    f"(live {later.start}..{later.end}, "
                    f"{size_b.describe()})")
        return violations


def _class_bindings(graph, assume_ranges: dict,
                    max_bindings: int = 64) -> list | None:
    """Deterministic lo/mid/hi corner sweep of the declared ranges,
    with every derived dim resolved.  ``None`` when resolution fails
    (some free symbol has no declared range) — callers then keep the
    incumbent slot assignment."""
    import itertools

    from ..numerics.resolve import resolve_all_dims

    axes = sorted(assume_ranges.items())
    if not axes:
        return None
    points = [sorted({int(lo), int((lo + hi) // 2), int(hi)})
              for _, (lo, hi) in axes]
    if int(np.prod([len(p) for p in points], initial=1)) > max_bindings:
        points = [sorted({int(lo), int(hi)}) for _, (lo, hi) in axes]
    bindings = []
    for combo in itertools.product(*points):
        dims = {name: value
                for (name, _), value in zip(axes, combo)}
        try:
            resolve_all_dims(graph.nodes, dims)
        except Exception:
            return None
        bindings.append(dims)
    return bindings[:max_bindings]


def repack_for_class(buffer_plan, graph,
                     assume_ranges: dict | None = None) -> bool:
    """Re-choose the slot assignment with *class* knowledge.

    The concrete planner colours intervals in production order — optimal
    in slot count, blind to byte sizes.  With declared ranges we can do
    better: price every interval at a deterministic lo/mid/hi corner
    sweep of the class, seed a best-fit-decreasing assignment, then
    local-search it against the per-corner best-fit re-planning peaks
    (the E11 baseline).  Which slot an interval lands in is a pure
    heuristic — any overlap-free choice is sound (and ``verify_sound`` /
    L602 re-prove it) — so the only effect is a tighter class peak.

    Mutates ``interval.slot`` / ``num_slots`` in place and returns True
    iff a strictly better assignment was adopted.  Runs before the
    symbolic extents are frozen and before host lowering, so every
    downstream consumer sees one consistent story.
    """
    from .memory import replan_peak_for_shape

    intervals = buffer_plan.intervals
    if not intervals or not assume_ranges:
        return False
    bindings = _class_bindings(graph, assume_ranges)
    if not bindings:
        return False
    try:
        sizes = np.array([[iv.bytes_at(b) for b in bindings]
                          for iv in intervals], dtype=np.int64)
    except Exception:
        return False
    targets = np.array(
        [max(1, replan_peak_for_shape(intervals, b)["peak_bytes"])
         for b in bindings], dtype=np.int64)

    def overlap(a, b) -> bool:
        return a.start <= b.end and b.start <= a.end

    def objective(assign: list) -> float:
        peaks = np.zeros(len(bindings), dtype=np.int64)
        by_slot: dict[int, list] = {}
        for i, slot in enumerate(assign):
            by_slot.setdefault(slot, []).append(i)
        for members in by_slot.values():
            peaks += sizes[members].max(axis=0)
        return float((peaks / targets).max())

    # Seed: best-fit decreasing by worst-corner size, least growth.
    order = sorted(range(len(intervals)),
                   key=lambda i: (-int(sizes[i].max()),
                                  intervals[i].start,
                                  intervals[i].node_id))
    assign = [-1] * len(intervals)
    slot_members: list[list] = []
    slot_size: list[np.ndarray] = []
    for i in order:
        best = None
        for slot, members in enumerate(slot_members):
            if any(overlap(intervals[i], intervals[j]) for j in members):
                continue
            growth = int(np.maximum(sizes[i] - slot_size[slot], 0).sum())
            waste = int(np.maximum(slot_size[slot] - sizes[i], 0).sum())
            cost = (growth, waste, slot)
            if best is None or cost < best:
                best = cost
        if best is None:
            assign[i] = len(slot_members)
            slot_members.append([i])
            slot_size.append(sizes[i].copy())
        else:
            slot = best[2]
            assign[i] = slot
            slot_members[slot].append(i)
            slot_size[slot] = np.maximum(slot_size[slot], sizes[i])

    # Refine: move one interval at a time while the worst corner ratio
    # strictly drops (bounded passes keep compile time deterministic).
    current = objective(assign)
    for _pass in range(4):
        improved = False
        for i in order:
            incumbent = assign[i]
            candidates = set(assign) | {max(assign) + 1}
            best = (current, incumbent)
            for slot in sorted(candidates):
                if slot == incumbent:
                    continue
                if any(overlap(intervals[i], intervals[j])
                       for j, s in enumerate(assign)
                       if s == slot and j != i):
                    continue
                assign[i] = slot
                value = objective(assign)
                if value < best[0] - 1e-12:
                    best = (value, slot)
                assign[i] = incumbent
            if best[1] != incumbent:
                assign[i] = best[1]
                current = best[0]
                improved = True
        if not improved:
            break

    incumbent_assign = [iv.slot for iv in intervals]
    if current >= objective(incumbent_assign) - 1e-12:
        return False
    # Adopt: renumber densely in production order.
    remap: dict[int, int] = {}
    for i in sorted(range(len(intervals)),
                    key=lambda i: (intervals[i].start,
                                   intervals[i].node_id)):
        remap.setdefault(assign[i], len(remap))
    for i, interval in enumerate(intervals):
        interval.slot = remap[assign[i]]
    buffer_plan.num_slots = len(remap)
    return True


def plan_symbolic(buffer_plan, graph, assume_ranges: dict | None = None,
                  constant_bytes: int = 0,
                  imap: IntervalMap | None = None) -> SymbolicBufferPlan:
    """Lift a concrete buffer plan to its signature class.

    ``assume_ranges`` are the deployment bounds (symbol -> ``(lo, hi)``)
    that make the peak *finitely* provable; without them the plan still
    builds, with an unbounded (honest) upper end.  When ranges are
    declared the slot assignment is first re-packed with class
    knowledge (:func:`repack_for_class`) so the one frozen plan stays
    within a whisker of a per-shape re-planner.
    """
    repack_for_class(buffer_plan, graph, assume_ranges)
    if imap is None:
        imap = derive_intervals(graph, assume_ranges=assume_ranges)
    return SymbolicBufferPlan(buffer_plan, imap,
                              constant_bytes=constant_bytes)


def measure_peak_bytes(executable, inputs) -> dict:
    """Ground-truth memory oracle: execute the host program and track
    the bytes the *planned* values actually hold live, step by step.

    Returns ``{"measured_peak_bytes", "outputs"}`` — the outputs let
    callers assert bit-identity against an engine run in the same
    breath.  Any sound class plan must satisfy
    ``peak_at(dims) >= measured_peak_bytes`` at every in-class binding.
    """
    from ..numerics.resolve import bind_inputs

    program = executable.host_program
    dims = bind_inputs(program.params, inputs)
    program.resolution.run(dims)
    planned = set(getattr(program, "planned_slots", ()) or ())
    if not planned and executable.buffer_plan is not None:
        planned = {program.slot_of[i.node_id]
                   for i in executable.buffer_plan.intervals
                   if i.node_id in program.slot_of}
    env = list(program.env_template)
    for slot, name in program.param_slots:
        env[slot] = np.ascontiguousarray(inputs[name])
    live = 0
    peak = 0
    for instr in program.instructions:
        outputs = instr.kernel.execute([env[s] for s in instr.in_slots],
                                       dims)
        for slot, value in zip(instr.out_slots, outputs):
            env[slot] = value
            if slot in planned:
                live += int(np.asarray(value).nbytes)
        peak = max(peak, live)
        for slot in instr.release:
            if slot in planned and env[slot] is not None:
                live -= int(np.asarray(env[slot]).nbytes)
            env[slot] = None
    return {
        "measured_peak_bytes": peak,
        "outputs": [env[slot] for slot in program.output_slots],
    }


@dataclass(frozen=True)
class MemoryBudget:
    """A device memory budget, enforced through *proven* peaks only.

    The planner's class-wide upper bound is the currency: a batch size
    or replica count is admitted iff its footprint provably fits, so
    admission never depends on which shape in the class shows up.  An
    unbounded peak (no ``assume_ranges``) yields ``None`` everywhere —
    "cannot prove" is an explicit answer, never silently treated as
    "fits".
    """

    capacity_bytes: int
    #: fraction held back for allocator slack / runtime overheads.
    reserve_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        if not 0.0 <= self.reserve_fraction < 1.0:
            raise ValueError("reserve_fraction must be in [0, 1)")

    @property
    def usable_bytes(self) -> int:
        return int(self.capacity_bytes * (1.0 - self.reserve_fraction))

    def fits(self, footprint_bytes: int | None) -> bool | None:
        """True/False when provable, None when the bound is unknown."""
        if footprint_bytes is None:
            return None
        return footprint_bytes <= self.usable_bytes

    def max_batch_size(self, plan: SymbolicBufferPlan,
                       limit: int | None = None) -> int | None:
        """Largest batch whose class-wide peak provably fits.

        Intermediates scale linearly with the batch dim (the batched
        cost model's rule); the constant pool is shared across members.
        Returns ``None`` when the peak has no finite proven bound —
        callers must then fall back to their configured limit, not
        assume safety.  ``0`` means even one member cannot be proven to
        fit.
        """
        per_member = plan.peak_hi_bytes()
        if per_member is None:
            return None
        available = self.usable_bytes - plan.constant_bytes
        if available < 0:
            return 0
        if per_member == 0:
            cap = limit if limit is not None else available or 1
        else:
            cap = available // per_member
        if limit is not None:
            cap = min(cap, limit)
        return int(cap)

    def max_replicas(self, footprint_bytes: int | None,
                     limit: int | None = None) -> int | None:
        """Largest replica count whose summed footprints provably fit
        one shared capacity pool (None = unprovable)."""
        if footprint_bytes is None:
            return None
        if footprint_bytes <= 0:
            return limit
        cap = self.usable_bytes // footprint_bytes
        if limit is not None:
            cap = min(cap, limit)
        return int(cap)

    def bucket_caps(self, plan: SymbolicBufferPlan,
                    bucketer) -> list:
        """Per bucketing slot, the proven class maximum — the pad
        ceiling never needs to exceed it, so once a budget is declared
        the bucketer stops padding past what the class can prove.

        ``None`` entries leave that slot's ceiling schedule untouched.
        """
        from ..ir.shapes import SymDim

        caps: list = []
        for symbols in bucketer.class_symbols():
            cap: int | None = None
            interval = Interval.top()
            for name in sorted(symbols):
                fact = self.imap_fact(plan, name, SymDim)
                interval = interval.meet(fact.proven_interval())
            if interval.hi is not None and not interval.is_empty:
                cap = int(interval.hi)
            caps.append(cap)
        return caps

    @staticmethod
    def imap_fact(plan: SymbolicBufferPlan, name: str, sym_cls):
        return plan.imap.fact_of(sym_cls(name))
