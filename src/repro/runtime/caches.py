"""Shape-signature utilities and the shape-specialisation cache.

Compile-per-shape systems (XLA, and per-bucket systems like TVM/TensorRT)
key their compiled artifacts on a shape signature.  This cache provides
that behaviour plus the hit/miss accounting the shape-diversity experiment
(E7) reports.  BladeDISC itself does not need one — its executable is
shape-generic — which is precisely the point of the comparison.  (The
shape-generic engine *does* key its per-signature launch plans on the same
signatures; see :mod:`repro.runtime.launchplan`.)
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Hashable, Mapping, Sequence

import numpy as np

from ..obs.tracer import resolve_tracer

__all__ = ["shape_signature", "make_signature_fn",
           "ShapeSpecializationCache"]


def shape_signature(inputs: Mapping[str, np.ndarray]) -> tuple:
    """A hashable key identifying the exact input shapes of one call.

    Sorting makes the key independent of the mapping's iteration order,
    at the cost of an O(n log n) sort per call.  Hot paths that know the
    program's parameter list should use :func:`make_signature_fn`
    instead, which fixes the order once at compile time.
    """
    return tuple(sorted(
        (name, tuple(int(d) for d in array.shape))
        for name, array in inputs.items()))


def make_signature_fn(params: Sequence) -> Callable[[Mapping], tuple]:
    """Precompute a param-order signature function for one executable.

    The returned callable produces a key with the same distinguishing
    power as :func:`shape_signature` (it covers every parameter's name
    and concrete shape) but walks the parameters in their fixed program
    order — no per-call sort, no tuple-of-int conversion.  Extra entries
    in ``inputs`` are ignored, exactly as ``bind_inputs`` ignores them;
    a missing parameter raises :class:`~repro.numerics.resolve
    .BindingError` just as binding would.
    """
    from ..numerics.resolve import BindingError

    names = tuple(p.attrs["param_name"] for p in params)

    def signature(inputs: Mapping[str, np.ndarray],
                  _names=names) -> tuple:
        try:
            return tuple((name, inputs[name].shape) for name in _names)
        except KeyError as exc:
            raise BindingError(
                f"missing input for parameter {exc.args[0]!r}") from None
    return signature


class ShapeSpecializationCache:
    """Maps shape signatures to compiled artifacts, with statistics.

    Eviction is true LRU: a hit refreshes the entry's recency, so under
    capacity pressure the signature that has gone unused longest leaves
    first — what a real serving system does.  The ordered dict keeps E7
    deterministic: identical call sequences produce identical eviction
    sequences.
    """

    def __init__(self, capacity: int | None = None, tracer=None) -> None:
        self._entries: OrderedDict[Hashable, object] = OrderedDict()
        self.capacity = capacity
        self.tracer = resolve_tracer(tracer)
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get_or_build(self, key: Hashable,
                     build: Callable[[], object]) -> tuple:
        """Return (artifact, was_hit); builds and inserts on miss."""
        tracer = self.tracer
        if key in self._entries:
            self.hits += 1
            if tracer.enabled:
                tracer.event("cache:shape:hit", key=str(key))
            self._entries.move_to_end(key)
            return self._entries[key], True
        self.misses += 1
        if tracer.enabled:
            tracer.event("cache:shape:miss", key=str(key))
        artifact = build()
        if self.capacity is not None and len(self._entries) >= self.capacity:
            # LRU eviction: the least recently touched signature leaves.
            evicted, _ = self._entries.popitem(last=False)
            self.evictions += 1
            if tracer.enabled:
                tracer.event("cache:shape:evict", key=str(evicted))
        self._entries[key] = artifact
        return artifact, False

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def stats(self) -> dict:
        total = self.hits + self.misses
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hits / total if total else 0.0,
        }
