"""Shape-specialisation cache.

Compile-per-shape systems (XLA, and per-bucket systems like TVM/TensorRT)
key their compiled artifacts on a shape signature.  This cache provides
that behaviour plus the hit/miss accounting the shape-diversity experiment
(E7) reports.  BladeDISC itself does not need one — its executable is
shape-generic — which is precisely the point of the comparison.
"""

from __future__ import annotations

from typing import Callable, Hashable, Mapping

import numpy as np

__all__ = ["shape_signature", "ShapeSpecializationCache"]


def shape_signature(inputs: Mapping[str, np.ndarray]) -> tuple:
    """A hashable key identifying the exact input shapes of one call."""
    return tuple(sorted(
        (name, tuple(int(d) for d in array.shape))
        for name, array in inputs.items()))


class ShapeSpecializationCache:
    """Maps shape signatures to compiled artifacts, with statistics."""

    def __init__(self, capacity: int | None = None) -> None:
        self._entries: dict[Hashable, object] = {}
        self.capacity = capacity
        self.hits = 0
        self.misses = 0

    def get_or_build(self, key: Hashable,
                     build: Callable[[], object]) -> tuple:
        """Return (artifact, was_hit); builds and inserts on miss."""
        if key in self._entries:
            self.hits += 1
            return self._entries[key], True
        self.misses += 1
        artifact = build()
        if self.capacity is not None and len(self._entries) >= self.capacity:
            # FIFO eviction: oldest signature leaves first.  Real systems
            # use LRU; FIFO keeps the experiment deterministic and the
            # difference is immaterial for the access patterns tested.
            oldest = next(iter(self._entries))
            del self._entries[oldest]
        self._entries[key] = artifact
        return artifact, False

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def stats(self) -> dict:
        total = self.hits + self.misses
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / total if total else 0.0,
        }
