"""Per-signature launch plans and their bounded LRU cache.

A shape-generic executable still has per-*signature* work: bind the input
shapes, solve the derived symbols, select every kernel's schedule variant,
evaluate the cost recipes and the memory plan.  None of it depends on the
tensor *data*, so the first call of a signature freezes all of it into a
:class:`LaunchPlan`; every later call with the same signature replays the
instruction stream against the frozen dims and charges the precomputed
cost — no binding, no resolution, no selection, no recipe evaluation.

The cache is keyed on the host program's param-order signature plus a
variant tag (so engines that share a cache — the adaptive specialiser's
generic/specialised pair — never collide), bounded, and LRU-evicting.
It also owns the per-signature call counting the adaptive specialiser
and the E12 report consume, so hit/miss/hot-signature accounting lives
in exactly one place.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable

from ..device.counters import RunStats
from ..obs.tracer import resolve_tracer

__all__ = ["BatchLaunchPlan", "LaunchPlan", "LaunchPlanCache",
           "format_signature"]


def format_signature(signature: tuple) -> str:
    """Compact human/JSON-friendly form of a param-order signature."""
    return ", ".join(
        f"{name}[{'x'.join(str(d) for d in shape)}]"
        for name, shape in signature)


def _key_label(key) -> str:
    """Human form of a cache key for trace-event attributes."""
    if isinstance(key, tuple) and len(key) == 2 \
            and isinstance(key[1], tuple):
        tag, signature = key
        try:
            return f"{tag}:{format_signature(signature)}"
        except (TypeError, ValueError):
            pass
    return str(key)


class LaunchPlan:
    """Everything one signature's calls share, frozen after the first."""

    __slots__ = ("signature", "dims", "device_time_us", "host_time_us",
                 "kernels_launched", "bytes_read", "bytes_written",
                 "flops", "memory", "memory_class", "schedules", "tuned")

    def __init__(self, signature: tuple, dims: dict,
                 device_time_us: float, host_time_us: float,
                 kernels_launched: int, bytes_read: int,
                 bytes_written: int, flops: float,
                 memory: dict | None,
                 schedules: dict | None = None,
                 tuned: bool = False) -> None:
        self.signature = signature
        #: resolved dim bindings (input symbols + every derived symbol).
        self.dims = dims
        self.device_time_us = device_time_us
        self.host_time_us = host_time_us
        self.kernels_launched = kernels_launched
        self.bytes_read = bytes_read
        self.bytes_written = bytes_written
        self.flops = flops
        #: frozen ``BufferPlan.evaluate`` result (None without a plan).
        self.memory = memory
        #: the *class-wide* memory snapshot
        #: (``SymbolicBufferPlan.snapshot()``): slot count, symbolic
        #: peak bounds and provenance expression — identical for every
        #: signature in the class, so replay carries the whole-class
        #: story without ever re-planning per shape.  None when the
        #: executable has no symbolic plan.
        self.memory_class = None
        #: kernel name -> chosen schedule name (None when the program
        #: has no schedulable kernels).
        self.schedules = schedules
        #: True when the picks came from the schedule autotuner rather
        #: than the dispatch-stub heuristics.
        self.tuned = tuned

    @classmethod
    def freeze(cls, signature: tuple, dims: dict, stats: RunStats,
               tuned: bool = False) -> "LaunchPlan":
        """Capture a fully-charged first-call ``RunStats`` as a plan.

        The stats were accumulated kernel-by-kernel in execution order,
        so replaying them wholesale reproduces the exact floating-point
        sums a per-call walk would have produced.
        """
        memory = stats.details.get("memory")
        schedules = stats.details.get("schedules")
        return cls(
            signature=signature,
            dims=dims,
            device_time_us=stats.device_time_us,
            host_time_us=stats.host_time_us,
            kernels_launched=stats.kernels_launched,
            bytes_read=stats.bytes_read,
            bytes_written=stats.bytes_written,
            flops=stats.flops,
            memory=dict(memory) if memory is not None else None,
            schedules=dict(schedules) if schedules is not None else None,
            tuned=tuned,
        )

    def make_stats(self) -> RunStats:
        """A fresh :class:`RunStats` charging this plan's frozen cost."""
        stats = RunStats(
            device_time_us=self.device_time_us,
            host_time_us=self.host_time_us,
            kernels_launched=self.kernels_launched,
            bytes_read=self.bytes_read,
            bytes_written=self.bytes_written,
            flops=self.flops,
            cache_hit=True,
        )
        if self.memory is not None:
            stats.details["memory"] = dict(self.memory)
        if self.schedules is not None:
            stats.details["schedules"] = dict(self.schedules)
        return stats


class BatchLaunchPlan(LaunchPlan):
    """A frozen plan for one *batched* launch of several bucket members.

    ``signature`` is the batched signature (leading batch dim on every
    parameter); ``member_signature`` is the padded per-member signature
    the batcher lowered, and ``batch_size`` the (rounded) member count
    the cost was charged for.  The stats it mints carry a ``batch``
    detail block so every unbatched response can say which launch served
    it and how much padding it paid for.
    """

    __slots__ = ("batch_size", "member_signature")

    @classmethod
    def freeze_batched(cls, signature: tuple, dims: dict, stats: RunStats,
                       batch_size: int,
                       member_signature: tuple) -> "BatchLaunchPlan":
        plan = cls.freeze(signature, dims, stats)
        plan.batch_size = batch_size
        plan.member_signature = member_signature
        return plan

    def make_stats(self) -> RunStats:
        stats = super().make_stats()
        stats.details["batch"] = {
            "size": self.batch_size,
            "padded_signature": format_signature(self.member_signature),
        }
        return stats


class LaunchPlanCache:
    """Bounded LRU of launch plans + unified signature statistics.

    ``tracer`` (None = off) turns hits, misses and evictions into
    ``cache:plan:*`` trace events carrying the formatted key.
    """

    def __init__(self, capacity: int | None = 64, tracer=None) -> None:
        self._plans: OrderedDict[Hashable, LaunchPlan] = OrderedDict()
        #: per-signature call counts (ordered: first-seen order).
        self._seen: OrderedDict[Hashable, int] = OrderedDict()
        self.capacity = capacity
        self.tracer = resolve_tracer(tracer)
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- signature accounting ---------------------------------------------

    def note(self, signature: Hashable) -> int:
        """Count one call of ``signature``; returns its total so far."""
        count = self._seen.get(signature, 0) + 1
        self._seen[signature] = count
        return count

    def seen(self, signature: Hashable) -> int:
        """How many calls of ``signature`` have been noted."""
        return self._seen.get(signature, 0)

    @property
    def signatures_seen(self) -> int:
        return len(self._seen)

    def hot_signatures(self, n: int = 5) -> list:
        """The ``n`` most-called signatures as (formatted, count) pairs."""
        ranked = sorted(self._seen.items(), key=lambda kv: -kv[1])
        return [(format_signature(sig) if isinstance(sig, tuple) else
                 str(sig), count) for sig, count in ranked[:n]]

    # -- plan storage ------------------------------------------------------

    def get(self, key: Hashable) -> LaunchPlan | None:
        """The cached plan for ``key``, refreshing its recency; or None."""
        plan = self._plans.get(key)
        if plan is None:
            self.misses += 1
            if self.tracer.enabled:
                self.tracer.event("cache:plan:miss", key=_key_label(key))
            return None
        self.hits += 1
        if self.tracer.enabled:
            self.tracer.event("cache:plan:hit", key=_key_label(key))
        self._plans.move_to_end(key)
        return plan

    def peek(self, key: Hashable) -> LaunchPlan | None:
        """Like :meth:`get` but touching neither stats nor recency."""
        return self._plans.get(key)

    def put(self, key: Hashable, plan: LaunchPlan) -> None:
        self._plans[key] = plan
        self._plans.move_to_end(key)
        if self.capacity is not None and len(self._plans) > self.capacity:
            evicted, _ = self._plans.popitem(last=False)
            self.evictions += 1
            if self.tracer.enabled:
                self.tracer.event("cache:plan:evict",
                                  key=_key_label(evicted))

    def __len__(self) -> int:
        return len(self._plans)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._plans

    def stats(self) -> dict:
        total = self.hits + self.misses
        return {
            "entries": len(self._plans),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hits / total if total else 0.0,
            "signatures_seen": len(self._seen),
        }
