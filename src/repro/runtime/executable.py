"""The executable format produced by the DISC pipeline.

An :class:`Executable` is shape-generic: one compilation serves every
runtime shape.  It owns the ordered compiled kernels, the constant buffers,
and the compile-time metadata (pass results, fusion stats, simulated
compile cost) that the experiments report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..core.codegen.kernels import CompiledKernel
from ..core.fusion.kinds import FusionPlan
from ..ir.graph import Graph
from ..ir.node import Node

__all__ = ["Executable", "CompileReport"]


@dataclass
class CompileReport:
    """Everything the compiler did, for the overhead experiments."""

    wall_time_s: float = 0.0
    simulated_compile_us: float = 0.0
    pass_results: list = field(default_factory=list)
    fusion_stats: dict = field(default_factory=dict)
    analysis_summary: dict = field(default_factory=dict)
    num_kernels: int = 0
    num_nodes: int = 0
    #: DiagnosticSink from the lint suite (None when lint_level is OFF).
    lint: object = None


@dataclass
class Executable:
    """A compiled, shape-generic program."""

    graph: Graph
    plan: FusionPlan
    kernels: list  # ordered CompiledKernel list (execution order)
    constants: dict  # Node -> np.ndarray
    report: CompileReport
    #: liveness-based intermediate-buffer reuse plan (see runtime.memory).
    buffer_plan: object = None
    #: slot-addressed host program (see runtime.hostprog); the pipeline
    #: lowers it at compile time, the engine lowers lazily if absent.
    host_program: object = None
    #: class-wide symbolic memory plan (see runtime.symplan): one reuse
    #: plan proven for every shape in the signature class, with an
    #: interval-valued peak the serving/fleet budgets consume.
    symbolic_plan: object = None

    @property
    def params(self) -> Sequence[Node]:
        return self.graph.params

    @property
    def outputs(self) -> Sequence[Node]:
        return self.graph.outputs

    def kernel_sources(self) -> dict[str, str]:
        """Generated source per kernel, for inspection and tests."""
        return {k.name: k.source for k in self.kernels}

    def find_kernel(self, name: str) -> CompiledKernel:
        for kernel in self.kernels:
            if kernel.name == name:
                return kernel
        raise KeyError(name)

    def constant_bytes(self) -> int:
        return sum(int(np.asarray(v).nbytes)
                   for v in self.constants.values())
