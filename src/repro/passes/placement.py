"""Shape-computation placement: keep shape arithmetic on the host.

Dynamic-shape graphs contain small integer computations that only exist to
*describe* shapes (``shape_of`` / ``dim_size`` and the scalar arithmetic fed
by them).  Launching device kernels for these 8-byte computations wastes a
full kernel-launch latency each; BladeDISC places them on the host CPU.

The pass marks each such node with ``attrs["_placement"] = "host"``.  The
device cost model charges host-placed nodes a (cheap) host-arithmetic cost
instead of a kernel launch; experiment E10 measures the difference.
"""

from __future__ import annotations

from ..ir.graph import Graph
from ..ir.node import Node
from ..ir.ops import OpCategory
from .base import Pass

__all__ = ["PlaceShapeComputations", "is_host_placed"]

#: Largest element count a host-placed tensor may have: shape vectors and
#: scalars only, never real data.
_HOST_MAX_ELEMENTS = 64


def is_host_placed(node: Node) -> bool:
    return node.attrs.get("_placement") == "host"


def _small_static(node: Node) -> bool:
    total = 1
    for dim in node.shape:
        if not isinstance(dim, int):
            return False
        total *= dim
    return total <= _HOST_MAX_ELEMENTS


class PlaceShapeComputations(Pass):
    name = "place-shape-computations"

    def run(self, graph: Graph) -> dict:
        placed = 0
        host: set[Node] = set()
        for node in graph.nodes:  # topological: operands decided first
            if node.category is OpCategory.SHAPE:
                host.add(node)
                continue
            if not node.inputs or not _small_static(node):
                continue
            feeds_from_host = all(
                operand in host or operand.op == "constant"
                for operand in node.inputs)
            movable = node.category in (OpCategory.ELEMENTWISE,
                                        OpCategory.RESHAPE,
                                        OpCategory.DATA_MOVEMENT)
            if feeds_from_host and movable:
                host.add(node)
        for node in host:
            if not is_host_placed(node):
                node.attrs["_placement"] = "host"
                placed += 1
        return {"changed": placed > 0, "placed": placed}
