"""Dead code elimination (a counted wrapper over ``Graph.prune``)."""

from __future__ import annotations

from ..ir.graph import Graph
from .base import Pass

__all__ = ["DeadCodeElimination"]


class DeadCodeElimination(Pass):
    name = "dce"

    def run(self, graph: Graph) -> dict:
        removed = graph.prune()
        return {"changed": removed > 0, "removed": removed}
