"""Graph optimization passes used by the DISC pipeline."""

from .base import FunctionPass, Pass, PassManager, PassResult
from .lowering import LowerComposites
from .simplify import AlgebraicSimplify, ConstantFold
from .cse import CommonSubexpressionElimination
from .dce import DeadCodeElimination
from .placement import PlaceShapeComputations, is_host_placed
from .reorder import PeakMemoryReorder

__all__ = [
    "FunctionPass", "Pass", "PassManager", "PassResult",
    "LowerComposites",
    "AlgebraicSimplify", "ConstantFold",
    "CommonSubexpressionElimination",
    "DeadCodeElimination",
    "PeakMemoryReorder",
    "PlaceShapeComputations", "is_host_placed",
    "default_pipeline",
]


def default_pipeline() -> list:
    """The standard pre-fusion pass pipeline, in order."""
    return [
        LowerComposites(),
        AlgebraicSimplify(),
        ConstantFold(),
        CommonSubexpressionElimination(),
        DeadCodeElimination(),
        PlaceShapeComputations(),
    ]
