"""Pass infrastructure: a uniform interface plus a pass manager.

Passes mutate the graph in place and report simple statistics.  The pass
manager runs a pipeline, optionally verifying after each pass (on by
default in tests, off in benchmarks), and records per-pass timing for the
compilation-overhead experiment (E6).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from ..ir.graph import Graph
from ..ir.verifier import verify
from ..obs.tracer import resolve_tracer

__all__ = ["Pass", "PassResult", "PassManager"]


@dataclass
class PassResult:
    """What one pass did."""

    name: str
    changed: bool
    duration_s: float
    details: dict = field(default_factory=dict)


class Pass:
    """Base class: subclasses implement :meth:`run` returning change info."""

    name = "pass"

    def run(self, graph: Graph) -> dict:
        """Transform ``graph`` in place; return a details dict.

        The dict should include ``"changed": bool``; other keys are free-form
        statistics surfaced in compile reports.
        """
        raise NotImplementedError

    def __call__(self, graph: Graph) -> PassResult:
        start = time.perf_counter()
        details = self.run(graph) or {}
        duration = time.perf_counter() - start
        changed = bool(details.pop("changed", False))
        return PassResult(self.name, changed, duration, details)


class FunctionPass(Pass):
    """Adapter turning a plain function into a Pass."""

    def __init__(self, fn: Callable[[Graph], dict], name: str | None = None):
        self._fn = fn
        self.name = name or fn.__name__

    def run(self, graph: Graph) -> dict:
        return self._fn(graph)


class PassManager:
    """Runs a pipeline of passes over a graph.

    ``after_each`` is an observation hook called as ``after_each(result,
    graph)`` after every pass (before the fail-fast ``verify_each`` gate,
    so an observer such as :class:`repro.lint.BlameRecorder` sees — and can
    attribute — the breakage that ``verify`` would abort on).

    ``tracer`` (a :class:`repro.obs.Tracer`; None means off) gets one
    ``pass:<name>`` span per pass covering the pass body, the
    ``after_each`` hook and the ``verify_each`` gate, attributed with the
    node delta the pass produced.
    """

    def __init__(self, passes: list[Pass], verify_each: bool = False,
                 after_each: Callable[[PassResult, Graph], None] | None
                 = None, tracer=None) -> None:
        self.passes = list(passes)
        self.verify_each = verify_each
        self.after_each = after_each
        self.tracer = resolve_tracer(tracer)
        self.results: list[PassResult] = []

    def run(self, graph: Graph) -> list[PassResult]:
        self.results = []
        tracer = self.tracer
        for pass_ in self.passes:
            with tracer.span(f"pass:{pass_.name}") as span:
                nodes_before = len(graph.nodes)
                result = pass_(graph)
                self.results.append(result)
                if self.after_each is not None:
                    self.after_each(result, graph)
                if self.verify_each:
                    verify(graph)
                span.set(changed=result.changed,
                         nodes_before=nodes_before,
                         nodes_after=len(graph.nodes),
                         node_delta=len(graph.nodes) - nodes_before)
        return self.results

    def total_time_s(self) -> float:
        return sum(r.duration_s for r in self.results)
