"""Common subexpression elimination.

Two nodes compute the same value when they run the same op over the same
operands with equal attributes.  Attribute equality handles numpy arrays
(constants) by content digest, so duplicate weight-free constants (the
scalar epsilons and 0.5s that lowering sprinkles around) deduplicate too.
"""

from __future__ import annotations

import hashlib

import numpy as np

from ..ir.graph import Graph
from ..ir.node import Node
from .base import Pass

__all__ = ["CommonSubexpressionElimination"]


def _attr_token(value) -> object:
    if isinstance(value, np.ndarray):
        digest = hashlib.sha1(value.tobytes()).hexdigest()
        return ("ndarray", str(value.dtype), value.shape, digest)
    if isinstance(value, (list, tuple)):
        return tuple(_attr_token(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _attr_token(v)) for k, v in value.items()))
    return value


def node_signature(node: Node, canonical: dict[Node, Node]) -> tuple:
    """A hashable key identifying the value ``node`` computes."""
    info_inputs = tuple(canonical.get(i, i).id for i in node.inputs)
    from ..ir.ops import op_info
    if op_info(node.op).commutative:
        info_inputs = tuple(sorted(info_inputs))
    attrs = _attr_token(node.attrs)
    return (node.op, info_inputs, attrs)


class CommonSubexpressionElimination(Pass):
    name = "cse"

    def run(self, graph: Graph) -> dict:
        canonical: dict[Node, Node] = {}
        seen: dict[tuple, Node] = {}
        removed = 0
        for node in graph.nodes:
            if node.op == "parameter":
                continue
            key = node_signature(node, canonical)
            if key in seen:
                canonical[node] = seen[key]
                removed += 1
            else:
                seen[key] = node
        for duplicate, keeper in canonical.items():
            graph.replace_all_uses(duplicate, keeper)
        if removed:
            graph.prune()
            graph.normalize_order()
        return {"changed": removed > 0, "removed": removed}
