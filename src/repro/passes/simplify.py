"""Algebraic simplification and constant folding.

A conservative rewrite set sufficient for the graphs the model zoo
produces.  Every rewrite is semantics-preserving for all runtime shapes —
rules that would need concrete shape values to justify are exactly the ones
a dynamic-shape compiler must *not* apply, and tests assert we don't.
"""

from __future__ import annotations

import numpy as np

from ..ir.graph import Graph
from ..ir.node import Node
from ..ir.shapes import is_static
from ..numerics import apply_op
from .base import Pass

__all__ = ["AlgebraicSimplify", "ConstantFold"]


def _as_scalar_constant(node: Node) -> float | None:
    """The scalar value of a (possibly broadcast) constant, else None."""
    src = node
    if src.op == "broadcast_in_dim":
        src = src.inputs[0]
    if src.op != "constant":
        return None
    value = src.attrs["value"]
    if value.size != 1:
        return None
    return float(value.reshape(()))


class AlgebraicSimplify(Pass):
    """Identity/involution rewrites: x+0, x*1, neg(neg x), transpose chains,
    reshape chains, no-op reshapes/transposes/broadcasts/casts."""

    name = "algebraic-simplify"

    def run(self, graph: Graph) -> dict:
        rewrites = 0
        for node in list(graph.nodes):
            target = self._rewrite(node)
            if target is not None:
                graph.replace_all_uses(node, target)
                rewrites += 1
        if rewrites:
            graph.prune()
            graph.normalize_order()
        return {"changed": rewrites > 0, "rewrites": rewrites}

    def _rewrite(self, node: Node) -> Node | None:
        op = node.op
        if op in ("add", "sub"):
            value = _as_scalar_constant(node.inputs[1])
            if value == 0.0 and node.inputs[0].shape == node.shape:
                return node.inputs[0]
            if op == "add":
                value = _as_scalar_constant(node.inputs[0])
                if value == 0.0 and node.inputs[1].shape == node.shape:
                    return node.inputs[1]
        elif op in ("mul", "div"):
            value = _as_scalar_constant(node.inputs[1])
            if value == 1.0 and node.inputs[0].shape == node.shape:
                return node.inputs[0]
            if op == "mul":
                value = _as_scalar_constant(node.inputs[0])
                if value == 1.0 and node.inputs[1].shape == node.shape:
                    return node.inputs[1]
        elif op == "neg" and node.inputs[0].op == "neg":
            return node.inputs[0].inputs[0]
        elif op == "transpose":
            (operand,) = node.inputs
            perm = node.attrs["perm"]
            if perm == tuple(range(len(perm))):
                return operand
            if operand.op == "transpose":
                inner = operand.attrs["perm"]
                composed = tuple(inner[p] for p in perm)
                if composed == tuple(range(len(composed))):
                    return operand.inputs[0]
        elif op == "reshape":
            (operand,) = node.inputs
            if node.shape == operand.shape:
                return operand
            if operand.op == "reshape" and node.shape == \
                    operand.inputs[0].shape:
                return operand.inputs[0]
        elif op == "broadcast_in_dim":
            (operand,) = node.inputs
            bdims = node.attrs["broadcast_dims"]
            identity = (node.shape == operand.shape
                        and bdims == tuple(range(len(operand.shape))))
            if identity:
                return operand
        elif op == "cast":
            (operand,) = node.inputs
            if operand.dtype is node.attrs["dtype"]:
                return operand
        return None


class ConstantFold(Pass):
    """Evaluate nodes whose operands are all static-shaped constants."""

    name = "constant-fold"
    #: Never fold tensors bigger than this (avoids bloating the graph with
    #: huge dense constants for marginal gain).
    max_elements = 1 << 16

    def run(self, graph: Graph) -> dict:
        folded = 0
        values: dict[Node, np.ndarray] = {}
        for node in list(graph.nodes):
            if node.op == "constant":
                values[node] = node.attrs["value"]
                continue
            if node.op in ("parameter", "shape_of", "dim_size"):
                continue
            if not is_static(node.shape):
                continue
            if any(operand not in values for operand in node.inputs):
                continue
            size = int(np.prod([int(d) for d in node.shape], initial=1))
            if size > self.max_elements:
                continue
            attrs = dict(node.attrs)
            if node.op == "reshape":
                attrs["_concrete_new_shape"] = tuple(node.shape)
            elif node.op == "broadcast_in_dim":
                attrs["_concrete_out_shape"] = tuple(node.shape)
            args = [values[operand] for operand in node.inputs]
            result = np.asarray(apply_op(node.op, args, attrs)).astype(
                node.dtype.to_numpy())
            replacement = graph.constant(result)
            values[replacement] = result
            graph.replace_all_uses(node, replacement)
            folded += 1
        if folded:
            graph.prune()
            graph.normalize_order()
        return {"changed": folded > 0, "folded": folded}
