"""Lowering: decompose composite ops into fusible primitives.

``softmax``, ``layer_norm`` and ``gelu`` exist in the op set so model
builders read naturally, but the fusion planner and code generator only see
primitives.  This pass expands each composite into the reduce/elementwise
subgraph that computes it — exactly the subgraphs the paper's ``kInput`` and
``kStitch`` fusion kinds exist to fuse.
"""

from __future__ import annotations

import math

from ..ir.builder import GraphBuilder
from ..ir.graph import Graph
from ..ir.node import Node
from .base import Pass

__all__ = ["LowerComposites"]


class LowerComposites(Pass):
    """Expand softmax / layer_norm / gelu into primitives, in place."""

    name = "lower-composites"

    def run(self, graph: Graph) -> dict:
        builder = GraphBuilder(graph=graph)
        lowered = 0
        # Iterate over a snapshot: lowering appends new nodes to the list.
        for node in list(graph.nodes):
            if node.op == "softmax":
                replacement = _lower_softmax(builder, node)
            elif node.op == "layer_norm":
                replacement = _lower_layer_norm(builder, node)
            elif node.op == "gelu":
                replacement = _lower_gelu(builder, node)
            else:
                continue
            graph.replace_all_uses(node, replacement)
            lowered += 1
        if lowered:
            graph.prune()
            graph.normalize_order()
        return {"changed": lowered > 0, "lowered": lowered}


def _lower_softmax(b: GraphBuilder, node: Node) -> Node:
    (x,) = node.inputs
    axis = node.attrs.get("axis", -1) % len(x.shape)
    peak = b.reduce_max(x, axis, keepdims=True)
    shifted = b.sub(x, peak)
    exped = b.exp(shifted)
    total = b.reduce_sum(exped, axis, keepdims=True)
    return b.div(exped, total)


def _lower_layer_norm(b: GraphBuilder, node: Node) -> Node:
    x, scale, bias = node.inputs
    eps = node.attrs.get("eps", 1e-5)
    mean = b.reduce_mean(x, -1, keepdims=True)
    centered = b.sub(x, mean)
    var = b.reduce_mean(b.mul(centered, centered), -1, keepdims=True)
    inv = b.rsqrt(b.add(var, b.scalar(eps, node.dtype)))
    normed = b.mul(centered, inv)
    return b.add(b.mul(normed, scale), b.broadcast_to(bias, x.shape))


def _lower_gelu(b: GraphBuilder, node: Node) -> Node:
    (x,) = node.inputs
    inv_sqrt2 = b.scalar(1.0 / math.sqrt(2.0), node.dtype)
    half = b.scalar(0.5, node.dtype)
    one = b.scalar(1.0, node.dtype)
    inner = b.erf(b.mul(x, inv_sqrt2))
    return b.mul(b.mul(x, half), b.add(one, inner))
