"""Peak-aware operator reordering within topological freedom.

A topological order fixes *correctness*, not *memory*: any linear
extension of the dataflow DAG computes the same values, but different
extensions hold different sets of intermediates live at once.  The
buffer planner's peak is a function of the kernel order, and the kernel
order follows the node order — so rescheduling nodes is the one knob
that shrinks the class-wide peak without touching numerics.

The pass weighs every value by its **symbolic** byte size — the proven
interval upper bound from ``derive_intervals`` (the same facts the
symbolic buffer plan is built on), falling back to a deterministic
surrogate for unbounded dims — then greedily list-schedules: among the
ready nodes, always run the one that frees the most bytes relative to
what it allocates.  The candidate order is adopted only when its
estimated peak is *strictly lower* than the current order's under the
same weights, so the pass can never make the estimate worse; ties keep
the incumbent order, which keeps compiles stable and artifacts
reproducible.

Outputs are bit-identical by construction — every node still sees the
exact same input values — which the ``--memplan`` fuzz leg re-proves on
every generated graph.
"""

from __future__ import annotations

from ..core.codegen.exprs import serialize_shape
from ..core.symbolic.intervals import derive_intervals
from .base import Pass

__all__ = ["PeakMemoryReorder"]

#: surrogate multiplier for a dim with no proven upper bound: large
#: enough that unbounded values dominate scheduling decisions, fixed so
#: the estimate is deterministic.
_UNBOUNDED_SCALE = 1024


class PeakMemoryReorder(Pass):
    """Reschedule nodes to shrink the estimated symbolic peak."""

    name = "peak_memory_reorder"

    def __init__(self, assume_ranges: dict | None = None) -> None:
        self.assume_ranges = dict(assume_ranges) if assume_ranges else None

    def run(self, graph) -> dict:
        weights = self._weights(graph)
        original = list(graph.nodes)
        candidate = self._schedule(graph, weights)
        before = self._estimate_peak(graph, original, weights)
        after = self._estimate_peak(graph, candidate, weights)
        if after < before and candidate != original:
            graph.nodes[:] = candidate
            return {"changed": True, "estimated_peak_before": before,
                    "estimated_peak_after": after}
        return {"changed": False, "estimated_peak_before": before,
                "estimated_peak_after": before}

    # -- symbolic weights ----------------------------------------------------

    def _weights(self, graph) -> dict:
        """Node -> class-wide byte weight (0 for sources: parameters
        and constants are not planner-owned allocations)."""
        imap = derive_intervals(graph, assume_ranges=self.assume_ranges)
        sources = {node.id for node in graph.params}
        weights: dict[int, int] = {}
        for node in graph.nodes:
            if node.id in sources or node.op == "constant":
                weights[node.id] = 0
                continue
            try:
                fact = imap.size_fact(serialize_shape(node.shape),
                                      node.dtype.size)
            except Exception:  # noqa: BLE001 - malformed node: no weight
                weights[node.id] = 0
                continue
            interval = fact.interval
            if interval.hi is not None:
                weights[node.id] = max(int(interval.hi), 0)
            else:
                lo = interval.lo if interval.lo is not None else 1
                weights[node.id] = max(int(lo), 1) * _UNBOUNDED_SCALE
        return weights

    # -- greedy list scheduling ------------------------------------------------

    def _schedule(self, graph, weights: dict) -> list:
        position = {node.id: index
                    for index, node in enumerate(graph.nodes)}
        users = graph.users()
        outputs = {node.id for node in graph.outputs}
        indegree = {node.id: len(node.inputs) for node in graph.nodes}
        remaining_users = {node.id: len(users[node])
                           for node in graph.nodes}
        ready = [node for node in graph.nodes if indegree[node.id] == 0]
        order: list = []

        def score(node) -> tuple:
            freed = 0
            for operand in set(node.inputs):
                if remaining_users[operand.id] == 1 \
                        and operand.id not in outputs:
                    freed += weights[operand.id]
            alloc = weights[node.id]
            # smaller is better: net growth first, then allocation size,
            # then original position for determinism.
            return (alloc - freed, alloc, position[node.id])

        while ready:
            ready.sort(key=score)
            node = ready.pop(0)
            order.append(node)
            for operand in set(node.inputs):
                remaining_users[operand.id] -= 1
            for user in users[node]:
                indegree[user.id] -= 1
                if indegree[user.id] == 0:
                    ready.append(user)
        if len(order) != len(graph.nodes):
            return list(graph.nodes)  # cyclic/broken: keep incumbent
        return order

    # -- node-level peak estimate ----------------------------------------------

    def _estimate_peak(self, graph, order: list, weights: dict) -> int:
        """Max live bytes over ``order`` under node-level liveness:
        a value dies after its last consumer runs; outputs never die."""
        users = graph.users()
        outputs = {node.id for node in graph.outputs}
        remaining = {node.id: len(users[node]) for node in graph.nodes}
        live = 0
        peak = 0
        for node in order:
            live += weights[node.id]
            peak = max(peak, live)
            for operand in set(node.inputs):
                remaining[operand.id] -= 1
                if remaining[operand.id] == 0 \
                        and operand.id not in outputs:
                    live -= weights[operand.id]
        return peak
