"""Whole-signature-class soundness analyzers (the L6xx family).

Every artifact the runtime freezes per signature — launch plans, memory
plans, batch plans — must hold for *every* shape in the signature class.
These analyzers prove (or refute) that with the interval abstract domain
from :mod:`repro.core.symbolic.intervals`:

- **L601** — a live dim's interval is empty: the recorded constraints
  (class constants, ``assume_range`` facts, derived equations) admit no
  value at all;
- **L602** — a memory-plan slot reuse is unsound for some shape in the
  class: two overlapping live ranges share a slot and both occupants'
  interval-derived byte sizes can be positive simultaneously;
- **L603** — launch-plan replay is unsound across the class: a symbol
  the program consumes is not derivable from the call signature, so the
  frozen plan replays a value that was only valid at the recorded dims;
- **L604** — a batch-bucket pad ceiling is not an upper bound of every
  member's interval (padding would *truncate*), or the padding waste is
  provably above the configured threshold for every shape in the class;
- **L605** — a possibly zero/negative extent reaches an operation that
  divides or reshapes by it.

Each diagnostic carries the witness interval and the constraint chain
that produced it (blame-style provenance, mirroring ``BlameRecorder``'s
per-pass attribution but at the granularity of individual shape facts).
"""

from __future__ import annotations

from ..core.symbolic.intervals import (Interval, IntervalMap,
                                       derive_intervals)
from .diagnostics import DiagnosticSink

__all__ = [
    "check_intervals",
    "check_memory_symbolic",
    "check_plan_coverage",
    "check_bucket_padding",
    "audit_stock_bucketer",
]

#: L604 fires when padding waste provably exceeds this fraction for
#: every shape in the class.  The stock pow2 ceiling's worst case is
#: just under 0.5 (value = one past a power of two), so the default
#: threshold keeps a correct bucketer silent.
WASTE_THRESHOLD = 0.5

#: Exhaustive-audit cap for L604: intervals with at most this many
#: members are checked value-by-value; wider or unbounded intervals are
#: probed at the points where pow2-style ceilings change regime.
_EXHAUSTIVE_LIMIT = 4096


def check_intervals(graph, sink: DiagnosticSink | None = None, *,
                    imap: IntervalMap | None = None,
                    assume_ranges=None) -> IntervalMap:
    """Derive (or reuse) the interval map and report L601/L605.

    Returns the map so executable-level checks can share one derivation.
    """
    sink = sink if sink is not None else DiagnosticSink()
    if imap is None:
        imap = derive_intervals(graph, assume_ranges=assume_ranges)

    reported: set[str] = set()
    for name, node, fact in imap.contradictions:
        if name in reported:
            continue
        reported.add(name)
        where = f" at {node.short()}" if node is not None else ""
        sink.emit(
            "L601",
            f"dim {name} has an empty interval{where}: the recorded "
            f"constraints admit no value ({fact.describe()})",
            node=node,
            fix_hint="one of the chained facts is wrong; drop or widen "
                     "the contradicting assume_range / constant")
    for name, fact in imap.empty_symbols():
        if name in reported:
            continue
        reported.add(name)
        sink.emit(
            "L601",
            f"dim {name} has an empty interval: the recorded "
            f"constraints admit no value ({fact.describe()})",
            fix_hint="one of the chained facts is wrong; drop or widen "
                     "the contradicting assume_range / constant")

    for hazard in imap.hazards:
        sink.emit(
            "L605",
            f"{hazard.message}; witness {hazard.fact.describe()}",
            node=hazard.node,
            fix_hint="prove the extent positive with an assume_range "
                     "fact, or guard the op against the empty case")
    return imap


def check_memory_symbolic(plan, imap: IntervalMap,
                          sink: DiagnosticSink | None = None
                          ) -> DiagnosticSink:
    """L602: slot reuse that aliases live data for some class member.

    The structural analyzer (L301) flags any overlapping same-slot live
    ranges; this check upgrades the finding from "the ranges overlap" to
    "and here is a shape regime where both occupants hold live bytes":
    both interval-derived byte sizes can be positive simultaneously.  An
    overlap where one occupant is provably zero-sized for every shape in
    the class is structural sloppiness, not data corruption — it stays
    L301-only.
    """
    sink = sink if sink is not None else DiagnosticSink()
    if plan is None:
        return sink

    by_slot: dict[int, list] = {}
    for interval in plan.intervals:
        by_slot.setdefault(interval.slot, []).append(interval)
    for slot, intervals in sorted(by_slot.items()):
        ordered = sorted(intervals, key=lambda i: (i.start, i.end))
        for earlier, later in zip(ordered, ordered[1:]):
            if earlier.end < later.start:
                continue
            size_a = imap.size_fact(earlier.shape, earlier.dtype_size)
            size_b = imap.size_fact(later.shape, later.dtype_size)
            if not (size_a.interval.can_be_positive()
                    and size_b.interval.can_be_positive()):
                continue
            quantifier = "every shape" \
                if not size_a.interval.can_be_nonpositive() \
                and not size_b.interval.can_be_nonpositive() \
                else "some shape"
            sink.emit(
                "L602",
                f"slot {slot} reuse is unsound for {quantifier} in the "
                f"signature class: node {earlier.node_id} "
                f"(live {earlier.start}..{earlier.end}, "
                f"{size_a.describe()} bytes) aliases node "
                f"{later.node_id} (live {later.start}..{later.end}, "
                f"{size_b.describe()} bytes)",
                fix_hint="the slot assigner must not reuse a slot while "
                         "its occupant can still hold live bytes")
    return sink


def _consumed_symbols(graph) -> dict:
    """Symbol name -> first consuming node, for every symbol a frozen
    launch plan needs a value for: node result shapes plus shape-valued
    attrs (reshape/broadcast targets, iota shapes, slice specs)."""
    from ..ir.shapes import SymDim

    consumed: dict[str, object] = {}

    def note(dim, node) -> None:
        if isinstance(dim, SymDim):
            consumed.setdefault(dim.name, node)

    for node in graph.nodes:
        for dim in node.shape:
            note(dim, node)
        for key in ("new_shape", "out_shape", "shape", "starts",
                    "limits", "strides"):
            spec = node.attrs.get(key)
            if isinstance(spec, (tuple, list)):
                for dim in spec:
                    note(dim, node)
    return consumed


def check_plan_coverage(graph, imap: IntervalMap,
                        sink: DiagnosticSink | None = None
                        ) -> DiagnosticSink:
    """L603: frozen launch plans replay values not derivable per call.

    A :class:`~repro.runtime.launchplan.LaunchPlan` freezes schedules,
    buffer sizes and resolved dims once per signature.  That replay is
    sound only if every consumed symbol is a *function of the call
    signature*: bound from a parameter shape, pinned to a point by the
    constraints, or derived by the resolution plan.  A symbol outside
    that closure got its frozen value from record-time data — any other
    class member replays the wrong value.
    """
    sink = sink if sink is not None else DiagnosticSink()
    for name, node in sorted(_consumed_symbols(graph).items(),
                             key=lambda kv: kv[0]):
        if name in imap.determined:
            continue
        fact = imap.env.get(name)
        witness = f"; interval {fact.describe()}" if fact is not None \
            else ""
        sink.emit(
            "L603",
            f"launch-plan replay is unsound across the signature class: "
            f"symbol {name} is consumed but not derivable from the call "
            f"signature (not a parameter dim, not pinned by constraints, "
            f"not solvable by the resolution plan) — its frozen value "
            f"holds only at the recorded dims{witness}",
            node=node,
            fix_hint="bind the symbol from a parameter shape or make it "
                     "derivable (single-unknown reshape, concat, pad)")
    return sink


def _probe_values(interval: Interval, hint) -> tuple:
    """Representative members of ``interval`` for the L604 audit.

    Bounded-and-small intervals are returned whole (the audit is then
    exhaustive); otherwise the probes are the endpoints, the pow2
    regime-change points in range, and the likely-value hint — the
    places bucket-style ceilings can go wrong.
    """
    lo = interval.lo if interval.lo is not None else 1
    lo = max(lo, 1)
    bounded = interval.hi is not None
    hi = interval.hi if bounded else max(lo, hint or 0, _EXHAUSTIVE_LIMIT)
    if hi < lo:
        return (), False
    if hi - lo + 1 <= _EXHAUSTIVE_LIMIT:
        return tuple(range(lo, hi + 1)), bounded
    probes = {lo, hi}
    if hint is not None and lo <= hint <= hi:
        probes.add(hint)
    power = 1
    while power <= hi:
        for value in (power, power + 1):
            if lo <= value <= hi:
                probes.add(value)
        power <<= 1
    return tuple(sorted(probes)), False


def check_bucket_padding(bucketer, imap: IntervalMap,
                         sink: DiagnosticSink | None = None,
                         waste_threshold: float = WASTE_THRESHOLD
                         ) -> DiagnosticSink:
    """L604: a pad ceiling that truncates, or provably excessive waste.

    For each bucketing class the audit intersects the member symbols'
    intervals (the members are provably equal, so every member's bounds
    constrain the class) and then drives the bucketer's
    :meth:`~repro.serving.batching.ShapeBucketer.ceiling` over the
    class's values:

    - any value with ``ceiling(value) < value`` means padding would
      *truncate* a live axis — unsound for that member (always
      reported, witness value attached);
    - when the audit covered the class exhaustively and even the
      *best-case* waste ``1 - value / ceiling(value)`` exceeds
      ``waste_threshold``, the waste is provable for every member.
    """
    sink = sink if sink is not None else DiagnosticSink()
    for slot, symbols in enumerate(bucketer.class_symbols()):
        if not symbols:
            continue
        interval = Interval.top()
        hint = None
        chains: list = []
        for name in sorted(symbols):
            fact = imap.fact_of(_sym(name))
            interval = interval.meet(fact.interval)
            chains.extend(fact.chain)
            if hint is None:
                hint = fact.hint
        if interval.is_empty:
            continue  # L601 owns empty classes
        values, exhaustive = _probe_values(interval, hint)
        label = "/".join(sorted(symbols))
        # Audit the *effective* seam: budget-capped schedules route
        # through ``class_ceiling(slot, value)``; plain bucketers (and
        # subclasses overriding ``ceiling``) fall back unchanged.
        schedule = getattr(bucketer, "class_ceiling", None)
        min_waste = None
        for value in values:
            ceiling = schedule(slot, value) if schedule is not None \
                else bucketer.ceiling(value)
            if ceiling < value:
                sink.emit(
                    "L604",
                    f"bucket class {{{label}}} pad ceiling is not an "
                    f"upper bound: ceiling({value}) = {ceiling} would "
                    f"truncate a live axis (member interval {interval}; "
                    f"facts: {'; '.join(chains) or 'default domain'})",
                    fix_hint="the ceiling must dominate every value in "
                             "the class interval")
                break
            waste = 0.0 if ceiling == 0 else 1.0 - value / ceiling
            min_waste = waste if min_waste is None \
                else min(min_waste, waste)
        else:
            if exhaustive and min_waste is not None \
                    and min_waste > waste_threshold:
                sink.emit(
                    "L604",
                    f"bucket class {{{label}}} padding waste is "
                    f"provably > {waste_threshold:.0%} for every shape "
                    f"in the class (best case {min_waste:.0%} over "
                    f"interval {interval})",
                    fix_hint="tighten the ceiling schedule or split the "
                             "bucket range")
    return sink


def _sym(name: str):
    from ..ir.shapes import SymDim
    return SymDim(name)


def audit_stock_bucketer(graph, imap: IntervalMap,
                         sink: DiagnosticSink) -> None:
    """Run the L604 audit against the bucketer serving would build.

    Best-effort: a graph the bucketer cannot analyze contributes
    nothing (its defects belong to other analyzers).
    """
    try:
        from ..serving.batching import ShapeBucketer
        bucketer = ShapeBucketer(graph, graph.params, "bucket")
    except Exception:  # noqa: BLE001 - not bucketable; nothing to audit
        return
    check_bucket_padding(bucketer, imap, sink)
