"""Fusion auditor: re-validate every planned group against the rules.

The planner *claims* each group satisfies the kLoop/kInput/kStitch
legality predicates; this auditor re-checks the claim independently,
re-deriving a fresh ``ShapeAnalysis`` at ``FULL`` strictness (anything the
planner could prove at a weaker level is provable here, so a clean plan
always audits clean) and asking the same questions
``core/fusion/legality.py`` answers — but from the *result* instead of
during construction:

- **L201** — a member is not eligible for its group's kind at all;
- **L202** — a kLoop group contains an internal producer→consumer edge
  whose iteration domains are not provably equal;
- **L203** — a kInput group does not have exactly one reduction root, or a
  member does not cover the root's input domain;
- **L204** — a kStitch group lacks two last-axis reductions over one row
  space, or a member has no stitch role in that row space;
- **L205** — a group exceeds a configured resource bound (warning);
- **L206** — the group-contracted graph has a cycle (plan not executable);
- **L207** — the plan is not a total partition of the compute nodes.
"""

from __future__ import annotations

from ..core.fusion.kinds import FusionConfig, FusionKind, FusionPlan
from ..core.fusion.legality import (is_last_axis_reduce, is_loop_fusible,
                                    loop_edge_compatible, reduce_row_space,
                                    stitch_member_role)
from ..core.symbolic import ConstraintLevel, ShapeAnalysis
from ..core.symbolic.analysis import collect_node_facts
from ..ir.ops import OpCategory
from .diagnostics import DiagnosticSink

__all__ = ["check_fusion_plan"]


def _tolerant_full_analysis(graph) -> ShapeAnalysis:
    """FULL-level analysis that survives contradictory graphs.

    ``analyze_shapes`` raises on the first contradictory fact, but the
    auditor must keep going on broken artifacts — the symbolic analyzer
    reports the contradictions themselves; here we only need the facts
    that *did* collect cleanly.
    """
    analysis = ShapeAnalysis(graph, ConstraintLevel.FULL)
    for node in graph.nodes:
        try:
            collect_node_facts(node, analysis.store, full=True)
        except Exception:  # noqa: BLE001 - reported by check_symbols
            continue
    return analysis


def check_fusion_plan(plan: FusionPlan,
                      analysis: ShapeAnalysis | None = None,
                      config: FusionConfig | None = None,
                      sink: DiagnosticSink | None = None
                      ) -> DiagnosticSink:
    """Audit every group of ``plan``; returns the sink.

    ``analysis`` defaults to a freshly derived FULL-level analysis so the
    audit never trusts the object the planner consumed; ``config`` defaults
    to the stock :class:`FusionConfig` bounds.
    """
    sink = sink if sink is not None else DiagnosticSink()
    if analysis is None:
        analysis = _tolerant_full_analysis(plan.graph)
    config = config or FusionConfig()

    _check_partition(plan, sink)
    for group in plan.groups:
        _check_group(group, plan, analysis, config, sink)
    _check_executability(plan, sink)
    return sink


# ---------------------------------------------------------------------------
# plan-level checks
# ---------------------------------------------------------------------------

def _check_partition(plan, sink) -> None:
    planned = {m for g in plan.groups for m in g.members}
    for node in plan.graph.nodes:
        if node.op in ("parameter", "constant"):
            continue
        if node not in planned:
            sink.emit(
                "L207",
                "compute node is covered by no fusion group",
                node=node,
                fix_hint="the singleton phase must sweep up every node "
                         "the earlier phases skipped")


def _check_executability(plan, sink) -> None:
    try:
        plan.ordered_groups()
    except Exception as exc:  # noqa: BLE001 - cycle or corrupt bookkeeping
        sink.emit(
            "L206",
            f"ordered_groups failed: {exc}",
            fix_hint="a merge skipped the acyclicity check on the "
                     "group-contracted graph")


# ---------------------------------------------------------------------------
# per-group checks
# ---------------------------------------------------------------------------

def _check_group(group, plan, analysis, config, sink) -> None:
    if group.size > config.max_group_size:
        sink.emit(
            "L205",
            f"{group.size} members exceed max_group_size="
            f"{config.max_group_size}",
            group=group.group_id)
    kind = group.kind
    if kind is FusionKind.LOOP:
        _check_loop_group(group, analysis, config, sink)
    elif kind is FusionKind.INPUT:
        _check_input_group(group, analysis, config, sink)
    elif kind is FusionKind.STITCH:
        _check_stitch_group(group, analysis, config, sink)
    elif kind is FusionKind.LIBRARY:
        _check_members(group, sink, lambda n: n.category in (
            OpCategory.DOT, OpCategory.CONV),
            "kLibrary member is not a library-backed op")
    elif kind is FusionKind.METADATA:
        _check_members(group, sink, _is_metadata_like,
                       "kMetadata member moves data at run time")
    elif kind is FusionKind.HOST:
        _check_members(group, sink, _is_host_like,
                       "kHost member is not a host-placed shape "
                       "computation")
    elif kind is FusionKind.SINGLETON:
        if group.size != 1:
            sink.emit(
                "L201",
                f"kSingleton group has {group.size} members",
                group=group.group_id)


def _check_members(group, sink, predicate, message) -> None:
    for member in group.members:
        if not predicate(member):
            sink.emit("L201", message, node=member, group=group.group_id)


def _is_metadata_like(node) -> bool:
    return (node.category in (OpCategory.RESHAPE, OpCategory.TRANSPOSE)
            or node.op == "slice")


def _is_host_like(node) -> bool:
    return (node.attrs.get("_placement") == "host"
            or node.category is OpCategory.SHAPE)


def _check_loop_group(group, analysis, config, sink) -> None:
    include_reshape = config.loop_include_reshape
    members = group.member_set()
    for member in group.members:
        if not is_loop_fusible(member, include_reshape):
            sink.emit(
                "L201",
                f"op {member.op!r} may not join a kLoop kernel",
                node=member, group=group.group_id)
    for consumer in group.members:
        for producer in consumer.inputs:
            if producer not in members:
                continue
            if not (is_loop_fusible(producer, include_reshape)
                    and is_loop_fusible(consumer, include_reshape)):
                continue  # already reported as L201
            if not loop_edge_compatible(producer, consumer, analysis,
                                        include_reshape):
                sink.emit(
                    "L202",
                    f"edge {producer.short()} -> {consumer.short()} "
                    f"joins unproven iteration domains "
                    f"{tuple(producer.shape)} vs {tuple(consumer.shape)}",
                    node=consumer, group=group.group_id,
                    fix_hint="the merge needed a product-equality "
                             "constraint the analysis cannot derive")


def _check_input_group(group, analysis, config, sink) -> None:
    reductions = [m for m in group.members if m.is_reduction]
    if len(reductions) != 1:
        sink.emit(
            "L203",
            f"kInput group has {len(reductions)} reductions "
            f"(exactly one root required)",
            group=group.group_id)
        return
    root = reductions[0]
    domain = root.inputs[0].shape
    for member in group.members:
        if member is root:
            continue
        if not is_loop_fusible(member, config.loop_include_reshape):
            sink.emit(
                "L201",
                f"op {member.op!r} may not feed a kInput kernel",
                node=member, group=group.group_id)
            continue
        if member.category is OpCategory.BROADCAST:
            continue  # broadcasts are index mappings inside the kernel
        if not analysis.same_num_elements(member.shape, domain):
            sink.emit(
                "L203",
                f"member domain {tuple(member.shape)} not provably equal "
                f"to the root's input domain {tuple(domain)}",
                node=member, group=group.group_id)


def _check_stitch_group(group, analysis, config, sink) -> None:
    reductions = [m for m in group.members if m.is_reduction]
    last_axis = [m for m in reductions if is_last_axis_reduce(m)]
    for member in reductions:
        if not is_last_axis_reduce(member):
            sink.emit(
                "L204",
                "stitched reduction is not a last-axis reduce",
                node=member, group=group.group_id)
    if len(last_axis) < 2:
        sink.emit(
            "L204",
            f"kStitch group has {len(last_axis)} last-axis reductions "
            f"(needs at least 2 to be worth a stitched kernel)",
            group=group.group_id)
        return
    if len(last_axis) > config.max_stitch_reductions:
        sink.emit(
            "L205",
            f"{len(last_axis)} stitched reductions exceed "
            f"max_stitch_reductions={config.max_stitch_reductions}",
            group=group.group_id)
    rows, reduced = reduce_row_space(last_axis[0])
    for member in group.members:
        role = stitch_member_role(member, rows, reduced, analysis)
        if role is None:
            sink.emit(
                "L204",
                f"member has no role in row space {tuple(rows)} x "
                f"{reduced}",
                node=member, group=group.group_id,
                fix_hint="every member must be a same-row-space reduce, "
                         "a full-domain elementwise op, or a per-row "
                         "scalar")
