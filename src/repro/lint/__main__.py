"""CLI: ``python -m repro.lint [paths ...]``.

Lints serialized graph artifacts — raw ``ir.serde`` graph JSON or fuzz
corpus cases (auto-detected) — and, with ``--models``, the bundled model
zoo.  Each target runs the graph-level analyzers; unless ``--no-pipeline``
is given, clean graphs are then compiled through the full pipeline with
per-pass blame and the fusion/memory audits.

Exit status is non-zero when any target produced a failing diagnostic at
the chosen level (``default``: errors; ``strict``: warnings too), which is
what the CI lint job keys on.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .diagnostics import CODE_REGISTRY, DiagnosticSink, LintLevel
from .engine import lint_compiled, lint_graph


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Static analysis of IR graphs, fusion plans and "
                    "buffer plans with coded diagnostics.")
    parser.add_argument("paths", nargs="*",
                        help="graph/corpus JSON files or directories of "
                             "them")
    parser.add_argument("--level", choices=["default", "strict"],
                        default="default",
                        help="failure threshold: default fails on errors, "
                             "strict also on warnings")
    parser.add_argument("--models", action="store_true",
                        help="also lint every bundled zoo model")
    parser.add_argument("--no-pipeline", action="store_true",
                        help="graph-level analyzers only; skip the "
                             "compile + fusion/memory audit stage")
    parser.add_argument("--codes", nargs="?", const="__registry__",
                        metavar="PREFIXES", default=None,
                        help="bare: print the diagnostic code registry and "
                             "exit; with a comma-separated prefix list "
                             "(e.g. 'L6' or 'L301,L6'), only findings "
                             "whose code matches a prefix are reported "
                             "and counted — the CI uses this to gate one "
                             "family independently")
    parser.add_argument("--pass-spans", action="store_true",
                        help="also lint the registered pipeline passes' "
                             "trace span names (L5xx): every pass must "
                             "carry a present, unique, lower-kebab name")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="only print findings and the final summary")
    return parser


def _collect_files(paths: list[str]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.glob("*.json")))
        else:
            files.append(path)
    return files


def _load_graph(path: Path):
    """Load a serialized graph or corpus case; returns (graph, kind,
    meta) — meta is the corpus case metadata ({} for raw graphs)."""
    from ..fuzz.corpus import load_case
    from ..ir.serde import graph_from_dict

    with open(path) as f:
        payload = json.load(f)
    if "case_version" in payload:
        graph, _bindings, meta = load_case(path)
        return graph, "corpus case", meta or {}
    if "format_version" in payload:
        return graph_from_dict(payload), "graph", {}
    raise ValueError("neither a serialized graph nor a corpus case")


def _lint_one(name: str, graph, level: LintLevel, pipeline: bool,
              meta=None) -> DiagnosticSink:
    meta = meta or {}
    assume = {name: tuple(bounds) for name, bounds in
              (meta.get("assume_ranges") or {}).items()}
    sink = lint_graph(graph, assume_ranges=assume or None)
    # A graph that is structurally broken cannot be compiled; the deep
    # audit only runs once the graph-level analyzers come back clean.
    if pipeline and not sink.errors():
        lint_compiled(graph, sink=sink, assume_ranges=assume or None)
    return sink


def _report(name: str, sink: DiagnosticSink, level: LintLevel,
            quiet: bool, prefixes=None, expected=()) -> int:
    """Print findings and count failures.

    ``prefixes`` restricts reporting/counting to matching codes
    (``--codes L6``).  ``expected`` codes — a corpus case's declared
    ``expected_lint`` metadata — are demonstration findings the case
    exists to exhibit; they are printed but never counted as failures,
    so the checked-in L6xx exhibits stay green under ``--level strict``.
    """
    shown = [d for d in sink if prefixes is None
             or any(d.code.startswith(p) for p in prefixes)]
    failures = [d for d in sink.failures(level)
                if (prefixes is None
                    or any(d.code.startswith(p) for p in prefixes))
                and d.code not in expected]
    for diag in shown:
        print(f"{name}: {diag}")
    if not quiet and not shown:
        print(f"{name}: OK")
    return len(failures)


def print_code_registry() -> None:
    width = max(len(info.title) for info in CODE_REGISTRY.values())
    print(f"{'code':<6}{'severity':<10}{'analyzer':<10}title")
    print("-" * (26 + width))
    for code in sorted(CODE_REGISTRY):
        info = CODE_REGISTRY[code]
        print(f"{info.code:<6}{info.severity.name.lower():<10}"
              f"{info.analyzer:<10}{info.title}")


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.codes == "__registry__":
        print_code_registry()
        return 0
    prefixes = tuple(p.strip() for p in args.codes.split(",")
                     if p.strip()) if args.codes else None
    if not args.paths and not args.models and not args.pass_spans:
        build_parser().print_usage(sys.stderr)
        print("error: give at least one path, --models, or --pass-spans",
              file=sys.stderr)
        return 2

    level = LintLevel(args.level)
    pipeline = not args.no_pipeline
    targets = 0
    diagnostics = 0
    failing = 0

    for path in _collect_files(args.paths):
        targets += 1
        expected: tuple = ()
        try:
            graph, _kind, meta = _load_graph(path)
        except Exception as exc:  # noqa: BLE001 - report, keep linting
            sink = DiagnosticSink()
            sink.emit("L000", f"cannot load {path}: "
                              f"{type(exc).__name__}: {exc}")
        else:
            sink = _lint_one(str(path), graph, level, pipeline, meta)
            expected = tuple(meta.get("expected_lint", ()))
        diagnostics += len(sink)
        failing += _report(str(path), sink, level, args.quiet,
                           prefixes, expected)

    if args.pass_spans:
        from .obs_checks import check_pass_spans
        targets += 1
        sink = check_pass_spans()
        diagnostics += len(sink)
        failing += _report("pipeline:pass-spans", sink, level, args.quiet,
                           prefixes)

    if args.models:
        from ..models import MODEL_BUILDERS
        for model_name, builder in MODEL_BUILDERS.items():
            targets += 1
            try:
                model = builder()
            except Exception as exc:  # noqa: BLE001
                sink = DiagnosticSink()
                sink.emit("L000", f"cannot build model {model_name}: "
                                  f"{type(exc).__name__}: {exc}")
            else:
                # A model's declared axis ranges are proven deployment
                # bounds: feed them to the interval analyzers so hazards
                # the class alone cannot exclude are retired by evidence.
                sink = _lint_one(model_name, model.graph, level, pipeline,
                                 meta={"assume_ranges": model.axes})
            diagnostics += len(sink)
            failing += _report(f"model:{model_name}", sink, level,
                               args.quiet, prefixes)

    print(f"linted {targets} target(s): {diagnostics} diagnostic(s), "
          f"{failing} failing at level {level.value}")
    return 1 if failing else 0


if __name__ == "__main__":
    sys.exit(main())
