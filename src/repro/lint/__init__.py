"""``repro.lint`` — static analysis over graphs, plans, and pipelines.

The verifier (``repro.ir.verifier``) is a fail-fast gate: it raises on the
first broken structural invariant.  This package is the tooling layer on
top of the same (and many more) invariants:

- :mod:`diagnostics` — coded findings (``L001``...), severities, the
  collect-all :class:`DiagnosticSink`, and the code registry;
- :mod:`graph_checks` — structural well-formedness, re-derived from
  scratch (the verifier now delegates here);
- :mod:`symbolic_checks` — constraint-table consistency: contradictions,
  dangling symbols, lost likely-value hints;
- :mod:`fusion_checks` — re-validates every planned fusion group against
  the kLoop/kInput/kStitch legality rules, independent of the planner;
- :mod:`memory_checks` — live-range overlap/alias detection over buffer
  plans;
- :mod:`interval_checks` — whole-signature-class soundness (L6xx):
  interval-domain proofs that frozen launch/memory/batch plans hold for
  *every* shape in the class, not just the recorded ones;
- :mod:`blame` — per-pass attribution: runs the linter after each pass
  and names the pass that introduced each new finding;
- :mod:`engine` / ``__main__`` — suite orchestration and the
  ``python -m repro.lint`` CLI.

The fuzzer uses the suite as a second oracle (``python -m repro.fuzz
--lint``) and the pipeline exposes it as ``CompileOptions.lint_level``.
"""

from .blame import BlameRecord, BlameRecorder
from .diagnostics import (CODE_REGISTRY, CodeInfo, Diagnostic,
                          DiagnosticSink, LintLevel, Severity, code_info)
from .engine import lint_compiled, lint_executable, lint_graph
from .fusion_checks import check_fusion_plan
from .graph_checks import check_graph
from .hostprog_checks import check_host_program
from .interval_checks import (check_bucket_padding, check_intervals,
                              check_memory_symbolic, check_plan_coverage)
from .memory_checks import check_buffer_plan
from .obs_checks import check_pass_spans
from .symbolic_checks import check_symbols

__all__ = [
    "CODE_REGISTRY",
    "CodeInfo",
    "code_info",
    "Diagnostic",
    "DiagnosticSink",
    "LintLevel",
    "Severity",
    "BlameRecord",
    "BlameRecorder",
    "check_graph",
    "check_symbols",
    "check_fusion_plan",
    "check_buffer_plan",
    "check_host_program",
    "check_pass_spans",
    "check_intervals",
    "check_memory_symbolic",
    "check_plan_coverage",
    "check_bucket_padding",
    "lint_graph",
    "lint_executable",
    "lint_compiled",
]
