"""Per-pass blame: which pass introduced each diagnostic?

``verify_each_pass`` tells you *that* a pass broke the graph; blame tells
you *which* pass, without aborting the pipeline.  A :class:`BlameRecorder`
plugs into :class:`~repro.passes.base.PassManager` via its ``after_each``
hook, re-lints the graph after every pass, diffs the finding set against
the previous snapshot, and attributes every *new* diagnostic to the pass
that just ran.

The diff is keyed on :meth:`Diagnostic.key` (code + provenance), not on
the message text, so a shape that legitimately changes across passes does
not churn the attribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.graph import Graph
from .diagnostics import Diagnostic, DiagnosticSink
from .graph_checks import check_graph
from .symbolic_checks import check_symbols

__all__ = ["BlameRecord", "BlameRecorder"]


def _lint_snapshot(graph: Graph) -> DiagnosticSink:
    sink = DiagnosticSink()
    check_graph(graph, sink)
    check_symbols(graph, sink)
    return sink


@dataclass
class BlameRecord:
    """The diagnostics one pass introduced."""

    pass_name: str
    introduced: list = field(default_factory=list)  # list[Diagnostic]

    @property
    def clean(self) -> bool:
        return not self.introduced


class BlameRecorder:
    """Attributes each new lint finding to the pass that introduced it.

    Usage::

        recorder = BlameRecorder()
        recorder.prime(graph)                       # pre-pipeline baseline
        manager = PassManager(passes, after_each=recorder.after_pass)
        manager.run(graph)
        recorder.blamed        # every Diagnostic with pass_name set
        recorder.attribution   # Diagnostic.key() -> pass name
    """

    def __init__(self) -> None:
        self.records: list[BlameRecord] = []
        self.blamed: list[Diagnostic] = []
        self.attribution: dict[tuple, str] = {}
        self._baseline: set[tuple] = set()
        self._primed = False

    def prime(self, graph: Graph) -> DiagnosticSink:
        """Record the pre-pipeline finding set as the baseline.

        Findings already present in the input graph are *not* blamed on
        any pass; they belong to the producer of the graph.
        """
        sink = _lint_snapshot(graph)
        self._baseline = {d.key() for d in sink}
        self._primed = True
        return sink

    def after_pass(self, result, graph: Graph) -> BlameRecord:
        """PassManager ``after_each`` hook: diff and attribute."""
        if not self._primed:
            # Tolerate un-primed use: the first pass then takes the blame
            # for pre-existing findings, which is the conservative choice.
            self._baseline = set()
            self._primed = True
        sink = _lint_snapshot(graph)
        current = {d.key() for d in sink}
        introduced = [d for d in sink if d.key() not in self._baseline]
        pass_name = getattr(result, "name", str(result))
        for diag in introduced:
            diag.pass_name = pass_name
            self.attribution[diag.key()] = pass_name
        record = BlameRecord(pass_name, introduced)
        self.records.append(record)
        self.blamed.extend(introduced)
        self._baseline = current
        return record

    def annotate(self, sink: DiagnosticSink) -> None:
        """Stamp pass blame onto matching findings of a later lint run."""
        for diag in sink:
            blamed = self.attribution.get(diag.key())
            if blamed is not None and diag.pass_name is None:
                diag.pass_name = blamed

    def guilty_passes(self) -> list[str]:
        """Pass names that introduced at least one finding, in run order."""
        return [r.pass_name for r in self.records if not r.clean]
