"""Graph analyzer: structural well-formedness, in collect-all form.

Re-derives every invariant from scratch — nothing is trusted from the
builder or the passes:

- every operand and output is owned by the graph (L001/L003);
- the node list is a topological order (L002);
- parameter names are unique (L004) and parameter declaration attrs match
  the node's recorded type (L008);
- arity matches the op signature (L005) and re-running shape inference
  reproduces each node's recorded shape/dtype (L006);
- node ids are unique (L010) — duplicate ids silently corrupt every
  id-keyed side table (liveness, serde, users maps);
- dead values (L007) and unreachable nodes (L009) are flagged as warnings:
  legitimate mid-pipeline states before DCE, defects after it.

:func:`repro.ir.verifier.verify` delegates here and raises on the first
error-severity finding, preserving its historical fail-fast contract.
"""

from __future__ import annotations

from ..ir.graph import Graph
from ..ir.ops import InferContext, op_info
from .diagnostics import DiagnosticSink

__all__ = ["check_graph"]

#: Ops whose inference mints fresh symbols; re-inference would mint
#: different ones, so only rank/dtype are compared (mirrors the verifier).
_FRESH_SYMBOL_OPS = ("concat", "conv2d", "pad")


def check_graph(graph: Graph, sink: DiagnosticSink | None = None
                ) -> DiagnosticSink:
    """Run every structural check over ``graph``; returns the sink."""
    sink = sink if sink is not None else DiagnosticSink()
    owned = {id(n) for n in graph.nodes}
    position = {id(n): i for i, n in enumerate(graph.nodes)}

    _check_ownership_and_order(graph, owned, position, sink)
    _check_outputs(graph, owned, sink)
    _check_params(graph, sink)
    _check_node_ids(graph, sink)
    _check_signatures_and_types(graph, sink)
    _check_liveness(graph, sink)
    return sink


# ---------------------------------------------------------------------------
# ownership / ordering
# ---------------------------------------------------------------------------

def _check_ownership_and_order(graph, owned, position, sink) -> None:
    for index, node in enumerate(graph.nodes):
        for operand in node.inputs:
            if id(operand) not in owned:
                sink.emit(
                    "L001",
                    f"operand {operand.short()} is not owned by graph "
                    f"{graph.name!r}",
                    node=node,
                    fix_hint="rebuild the operand inside this graph or "
                             "clone it in")
            elif position[id(operand)] > index:
                sink.emit(
                    "L002",
                    f"operand {operand.short()} appears after its user "
                    f"(topological order broken)",
                    node=node,
                    fix_hint="call Graph.normalize_order() after in-place "
                             "rewrites")


def _check_outputs(graph, owned, sink) -> None:
    for out in graph.outputs:
        if id(out) not in owned:
            sink.emit(
                "L003",
                f"output {out.short()} is not owned by graph "
                f"{graph.name!r}",
                node=out)


def _check_params(graph, sink) -> None:
    seen: dict[str, object] = {}
    for param in graph.params:
        name = param.attrs.get("param_name")
        if name in seen:
            sink.emit(
                "L004",
                f"duplicate parameter name {name!r} "
                f"(also declared by {seen[name].short()})",
                node=param,
                fix_hint="rename one of the parameters")
        else:
            seen[name] = param
        declared_dtype = param.attrs.get("dtype")
        declared_shape = param.attrs.get("shape")
        if declared_dtype is not None and declared_dtype is not param.dtype:
            sink.emit(
                "L008",
                f"declared dtype {declared_dtype} != node dtype "
                f"{param.dtype}",
                node=param,
                fix_hint="a pass retyped the parameter without updating "
                         "its declaration attrs")
        if declared_shape is not None \
                and tuple(declared_shape) != tuple(param.shape):
            sink.emit(
                "L008",
                f"declared shape {tuple(declared_shape)} != node shape "
                f"{tuple(param.shape)}",
                node=param)


def _check_node_ids(graph, sink) -> None:
    by_id: dict[int, object] = {}
    for node in graph.nodes:
        if node.id in by_id:
            sink.emit(
                "L010",
                f"node id {node.id} already used by "
                f"{by_id[node.id].short()}",
                node=node,
                fix_hint="allocate nodes through Graph.add so ids stay "
                         "unique")
        else:
            by_id[node.id] = node


# ---------------------------------------------------------------------------
# signatures and re-inference
# ---------------------------------------------------------------------------

def _check_signatures_and_types(graph, sink) -> None:
    owned = {id(n) for n in graph.nodes}
    for node in graph.nodes:
        try:
            info = op_info(node.op)
        except Exception as exc:  # noqa: BLE001 - unknown op kind
            sink.emit("L005", str(exc), node=node)
            continue
        if info.arity is not None and len(node.inputs) != info.arity:
            sink.emit(
                "L005",
                f"arity {len(node.inputs)} != {info.arity}",
                node=node)
            continue
        if any(id(operand) not in owned for operand in node.inputs):
            continue  # foreign operands already reported as L001
        ctx = InferContext(
            shapes=[n.shape for n in node.inputs],
            in_dtypes=[n.dtype for n in node.inputs],
            attrs=node.attrs,
            symtab=graph.symtab,
        )
        try:
            shape, dtype = info.infer(ctx)
        except Exception as exc:  # noqa: BLE001 - operands now incompatible
            sink.emit(
                "L006",
                f"inference failed on recorded operands: {exc}",
                node=node)
            continue
        if node.op in _FRESH_SYMBOL_OPS:
            if len(shape) != len(node.shape) or dtype is not node.dtype:
                sink.emit(
                    "L006",
                    f"recorded type {node.dtype}{tuple(node.shape)} "
                    f"inconsistent with inference {dtype}{tuple(shape)}",
                    node=node)
            continue
        if tuple(shape) != tuple(node.shape) or dtype is not node.dtype:
            sink.emit(
                "L006",
                f"recorded type {node.dtype}{tuple(node.shape)} != "
                f"inferred {dtype}{tuple(shape)}",
                node=node,
                fix_hint="the pass that rewrote the operands must re-run "
                         "inference on the users")


# ---------------------------------------------------------------------------
# liveness (warnings)
# ---------------------------------------------------------------------------

def _check_liveness(graph, sink) -> None:
    users = {id(n): [] for n in graph.nodes}
    for node in graph.nodes:
        for operand in node.inputs:
            if id(operand) in users:
                users[id(operand)].append(node)

    output_ids = {id(out) for out in graph.outputs}
    live: set[int] = set()
    stack = [out for out in graph.outputs if id(out) in users]
    while stack:
        node = stack.pop()
        if id(node) in live:
            continue
        live.add(id(node))
        stack.extend(op for op in node.inputs if id(op) in users)

    for node in graph.nodes:
        if node.op == "parameter":
            continue  # part of the calling convention even when unused
        if id(node) in output_ids or id(node) in live:
            continue
        if not users[id(node)]:
            sink.emit(
                "L007",
                "node result is never used and is not a graph output",
                node=node,
                fix_hint="run DeadCodeElimination or add the node to the "
                         "outputs")
        else:
            sink.emit(
                "L009",
                "node only feeds dead computations; no path reaches a "
                "graph output",
                node=node)
