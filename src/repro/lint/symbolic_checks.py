"""Symbolic analyzer: is the shape-constraint table still sound?

Every correctness claim downstream — fusion legality, buffer planning,
shape-generic codegen — assumes the symbolic constraint system is
consistent.  This analyzer re-derives the constraint table from scratch
(never trusting the pipeline's cached ``ShapeAnalysis``) and flags:

- **L101** — contradictory dim constraints: collecting the per-op facts
  merges two union-find classes that resolve to *different* constants
  (e.g. a mutated graph asserting ``4 == 8`` through an elementwise edge);
- **L102** — dangling symbols: a :class:`SymDim` referenced by a node's
  shape or attrs that the graph's symbol table has never heard of;
- **L103** — symbol instances that diverge from the interned table entry
  (same name, different object/hint) — the "likely value" hints the
  schedule selector relies on were silently downgraded by some pass.
"""

from __future__ import annotations

from ..core.symbolic.analysis import collect_node_facts
from ..core.symbolic.constraints import ConstraintStore
from ..core.symbolic.unionfind import ContradictionError
from ..ir.graph import Graph
from ..ir.shapes import SymDim
from .diagnostics import DiagnosticSink

__all__ = ["check_symbols"]


def check_symbols(graph: Graph, sink: DiagnosticSink | None = None
                  ) -> DiagnosticSink:
    """Run every symbolic-consistency check over ``graph``."""
    sink = sink if sink is not None else DiagnosticSink()
    _check_contradictions(graph, sink)
    _check_symbol_references(graph, sink)
    return sink


def _check_contradictions(graph, sink) -> None:
    """Re-collect every op's shape facts, recording contradictions.

    Collection continues after a contradiction: the store is never mutated
    by a failing union (the union-find raises before merging), so later
    nodes still see a consistent table and independent contradictions all
    surface.
    """
    store = ConstraintStore()
    for node in graph.nodes:
        try:
            collect_node_facts(node, store, full=True)
        except ContradictionError as exc:
            sink.emit(
                "L101",
                f"shape facts of this op contradict earlier constraints: "
                f"{exc}",
                node=node,
                fix_hint="some pass changed a shape without updating the "
                         "users; re-run inference along the def-use chain")
        except Exception as exc:  # noqa: BLE001 - malformed attrs etc.
            sink.emit(
                "L101",
                f"constraint collection failed: "
                f"{type(exc).__name__}: {exc}",
                node=node)


def _iter_symdims(value):
    """Yield every SymDim inside a shape/attr value, recursively."""
    if isinstance(value, SymDim):
        yield value
    elif isinstance(value, (tuple, list)):
        for item in value:
            yield from _iter_symdims(item)


def _check_symbol_references(graph, sink) -> None:
    symtab = graph.symtab
    reported: set[tuple] = set()
    for node in graph.nodes:
        sources = [("shape", node.shape)]
        sources.extend(("attr " + key, value)
                       for key, value in node.attrs.items())
        for origin, value in sources:
            for sym in _iter_symdims(value):
                if sym.name not in symtab:
                    key = ("L102", node.id, sym.name, origin)
                    if key in reported:
                        continue
                    reported.add(key)
                    sink.emit(
                        "L102",
                        f"symbol {sym.name!r} ({origin}) is absent from "
                        f"the symbol table",
                        node=node,
                        fix_hint="mint symbols through "
                                 "graph.symtab.named()/fresh(), never "
                                 "by constructing SymDim directly")
                elif symtab.lookup(sym.name) is not sym:
                    key = ("L103", node.id, sym.name, origin)
                    if key in reported:
                        continue
                    reported.add(key)
                    interned = symtab.lookup(sym.name)
                    sink.emit(
                        "L103",
                        f"symbol {sym.name!r} ({origin}) is not the "
                        f"interned instance (hint {sym.hint!r} vs table "
                        f"hint {interned.hint!r})",
                        node=node,
                        fix_hint="reuse the SymDim from the symbol table "
                                 "so likely-value hints survive passes")
