"""Observability lint: span-name hygiene for pipeline passes.

``PassManager`` derives each pass's trace span name from ``pass_.name``
(``pass:<name>``), so the trace contract of :mod:`repro.obs` — every
registered pass appears exactly once under a stable, queryable name —
only holds if the registered pipeline keeps those names present, unique
and well-formed.  This module is the CI gate for that contract (run via
``python -m repro.lint --pass-spans``): a newly added pass that forgets
to set ``name``, or reuses an existing one, fails the lint job with an
L5xx diagnostic instead of silently corrupting every future trace.
"""

from __future__ import annotations

import re

from .diagnostics import DiagnosticSink

__all__ = ["check_pass_spans"]

#: lower-kebab (dashes/underscores/digits after a leading letter): the
#: shape every existing pass name follows and globs match cleanly.
_NAME_RE = re.compile(r"^[a-z][a-z0-9_-]*$")


def check_pass_spans(passes=None,
                     sink: DiagnosticSink | None = None) -> DiagnosticSink:
    """Lint the span names of ``passes`` (default: the full pipeline).

    Emits L501 when a pass carries no usable name (empty, or the
    ``Pass`` base-class placeholder left unset), L502 when two passes
    would collide on one span name, and L503 when a name falls outside
    the lower-kebab shape the span taxonomy uses.
    """
    from ..passes import default_pipeline
    from ..passes.base import Pass

    if passes is None:
        passes = default_pipeline()
    sink = sink if sink is not None else DiagnosticSink()
    seen: dict[str, str] = {}
    for index, pass_ in enumerate(passes):
        kind = type(pass_).__name__
        where = f"pass #{index} ({kind})"
        name = getattr(pass_, "name", None)
        if not name or name == Pass.name:
            sink.emit("L501",
                      f"{where} has no span name: set a class-level "
                      f"'name' so its trace span is identifiable")
            continue
        if name in seen:
            sink.emit("L502",
                      f"{where} reuses span name {name!r} already taken "
                      f"by {seen[name]}; spans of the two passes would "
                      f"be indistinguishable")
        else:
            seen[name] = where
        if not _NAME_RE.match(name):
            sink.emit("L503",
                      f"{where} span name {name!r} is not lower-kebab; "
                      f"globs like spans.named('pass:*') rely on the "
                      f"uniform shape")
    return sink
