"""The lint diagnostics engine: coded findings collected, not raised.

The IR verifier answers "is this graph broken?" with an exception on the
first violated invariant.  That is the right interface for a pipeline gate
but the wrong one for tooling: a multi-defect graph (a minimizer artifact,
a hand-edited corpus case, a buggy pass) hides every break after the first.
This module provides the collect-all alternative:

- :class:`Diagnostic` — one finding with a stable code (``L001``),
  severity, provenance (node, fusion group, blamed pass) and a fix hint;
- :class:`DiagnosticSink` — accumulates every finding from every analyzer;
- :data:`CODE_REGISTRY` — the full code table (severity + one-line title),
  rendered in ``docs/internals.md`` and by ``python -m repro.lint --codes``;
- :class:`LintLevel` — how strict a consumer wants to be: ``DEFAULT``
  fails on errors only, ``STRICT`` also fails on warnings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, IntEnum

__all__ = [
    "Severity",
    "LintLevel",
    "CodeInfo",
    "CODE_REGISTRY",
    "code_info",
    "Diagnostic",
    "DiagnosticSink",
]


class Severity(IntEnum):
    """How bad a finding is.  Ordered so severities compare meaningfully."""

    NOTE = 10       # informational; never fails any level
    WARNING = 20    # suspicious but not unsound (dead code, lost hints)
    ERROR = 30      # a violated invariant; the artifact is not trustworthy


class LintLevel(Enum):
    """Strictness knob exposed as ``CompileOptions.lint_level``."""

    OFF = "off"          # do not lint at all
    DEFAULT = "default"  # collect everything; only errors are failures
    STRICT = "strict"    # warnings are failures too

    @property
    def failing_severity(self) -> Severity:
        if self is LintLevel.STRICT:
            return Severity.WARNING
        return Severity.ERROR


@dataclass(frozen=True)
class CodeInfo:
    """Registry entry for one diagnostic code."""

    code: str
    severity: Severity
    analyzer: str
    title: str


#: Every diagnostic code the linter can emit.  Codes are append-only and
#: stable across releases: tests, corpus metadata and CI logs refer to them.
CODE_REGISTRY: dict[str, CodeInfo] = {}


def _register(code: str, severity: Severity, analyzer: str,
              title: str) -> None:
    if code in CODE_REGISTRY:
        raise ValueError(f"duplicate diagnostic code {code}")
    CODE_REGISTRY[code] = CodeInfo(code, severity, analyzer, title)


# -- L0xx: harness ----------------------------------------------------------
_register("L000", Severity.ERROR, "harness",
          "artifact could not be loaded or compiled for linting")

# -- L0xx: graph analyzer ---------------------------------------------------
_register("L001", Severity.ERROR, "graph",
          "operand is not owned by the graph")
_register("L002", Severity.ERROR, "graph",
          "node list is not a topological order")
_register("L003", Severity.ERROR, "graph",
          "graph output is not owned by the graph")
_register("L004", Severity.ERROR, "graph",
          "duplicate parameter name")
_register("L005", Severity.ERROR, "graph",
          "operand count violates the op signature")
_register("L006", Severity.ERROR, "graph",
          "recorded shape/dtype disagrees with re-run inference")
_register("L007", Severity.WARNING, "graph",
          "dead value: node result is never used and is not an output")
_register("L008", Severity.ERROR, "graph",
          "parameter declaration attrs disagree with the node type")
_register("L009", Severity.WARNING, "graph",
          "unreachable node: no path to any graph output")
_register("L010", Severity.ERROR, "graph",
          "duplicate node id")

# -- L1xx: symbolic analyzer ------------------------------------------------
_register("L101", Severity.ERROR, "symbolic",
          "contradictory dim constraints (unequal constants unified)")
_register("L102", Severity.ERROR, "symbolic",
          "dangling symbol: referenced but absent from the symbol table")
_register("L103", Severity.WARNING, "symbolic",
          "symbol instance diverges from the symbol table (hint lost)")

# -- L2xx: fusion auditor ---------------------------------------------------
_register("L201", Severity.ERROR, "fusion",
          "group member is not eligible for the group's fusion kind")
_register("L202", Severity.ERROR, "fusion",
          "kLoop internal edge joins provably different iteration domains")
_register("L203", Severity.ERROR, "fusion",
          "kInput group violates the single-reduction-root rule")
_register("L204", Severity.ERROR, "fusion",
          "kStitch group violates the shared-row-space rules")
_register("L205", Severity.WARNING, "fusion",
          "group exceeds a configured resource bound")
_register("L206", Severity.ERROR, "fusion",
          "fusion plan is not executable (group-contracted cycle)")
_register("L207", Severity.ERROR, "fusion",
          "fusion plan is not a total partition of the compute nodes")

# -- L3xx: memory-plan analyzer --------------------------------------------
_register("L301", Severity.ERROR, "memory",
          "overlapping live ranges share a buffer slot")
_register("L302", Severity.ERROR, "memory",
          "malformed liveness interval")
_register("L303", Severity.ERROR, "memory",
          "one value is planned into two buffers")

# -- L4xx: host-program analyzer -------------------------------------------
_register("L401", Severity.ERROR, "hostprog",
          "instruction reads a slot no earlier instruction defines")
_register("L402", Severity.ERROR, "hostprog",
          "slot is released before a later instruction reads it")
_register("L403", Severity.ERROR, "hostprog",
          "program output slot is released or never defined")
_register("L404", Severity.ERROR, "hostprog",
          "slot table is not a dense bijection over program values")

# -- L5xx: observability (trace span hygiene) -------------------------------
_register("L501", Severity.ERROR, "obs",
          "pipeline pass has no span name")
_register("L502", Severity.ERROR, "obs",
          "two pipeline passes share one span name")
_register("L503", Severity.WARNING, "obs",
          "pass span name is not lower-kebab ([a-z][a-z0-9_-]*)")

# -- L6xx: interval analyzer (whole-signature-class soundness) --------------
_register("L601", Severity.ERROR, "interval",
          "unresolvable dim: interval is empty for a live dim")
_register("L602", Severity.ERROR, "interval",
          "memory-plan slot reuse unsound for some shape in the class")
_register("L603", Severity.ERROR, "interval",
          "launch-plan replay unsound across the signature class")
_register("L604", Severity.ERROR, "interval",
          "batch-bucket pad ceiling unsound or waste provably excessive")
_register("L605", Severity.WARNING, "interval",
          "possible zero/negative extent reaches a division or reshape")


def code_info(code: str) -> CodeInfo:
    try:
        return CODE_REGISTRY[code]
    except KeyError:
        raise KeyError(f"unknown diagnostic code {code!r}") from None


@dataclass
class Diagnostic:
    """One lint finding."""

    code: str
    severity: Severity
    message: str
    analyzer: str = ""
    #: ``node.short()`` of the node the finding anchors to, if any.
    node: str | None = None
    node_id: int | None = None
    #: fusion group id, for auditor findings.
    group: int | None = None
    #: pass that introduced the finding (set by per-pass blame).
    pass_name: str | None = None
    fix_hint: str | None = None

    def key(self) -> tuple:
        """Identity used for blame diffing and deduplication."""
        return (self.code, self.node_id, self.node, self.group)

    def __str__(self) -> str:
        where = []
        if self.node is not None:
            where.append(self.node)
        if self.group is not None:
            where.append(f"group#{self.group}")
        location = f" {' '.join(where)}:" if where else ""
        blame = f" [introduced by pass {self.pass_name!r}]" \
            if self.pass_name else ""
        hint = f" (hint: {self.fix_hint})" if self.fix_hint else ""
        return (f"{self.code} {self.severity.name.lower()}"
                f"{location} {self.message}{blame}{hint}")


class DiagnosticSink:
    """Collects *all* findings instead of raising on the first."""

    def __init__(self) -> None:
        self.diagnostics: list[Diagnostic] = []

    # -- emission ---------------------------------------------------------

    def emit(self, code: str, message: str, *, node=None, group=None,
             fix_hint: str | None = None,
             pass_name: str | None = None) -> Diagnostic:
        """Record one finding; severity/analyzer come from the registry.

        ``node`` may be an IR node (provenance is extracted) or ``None``.
        """
        info = code_info(code)
        diag = Diagnostic(
            code=code,
            severity=info.severity,
            message=message,
            analyzer=info.analyzer,
            node=node.short() if node is not None else None,
            node_id=getattr(node, "id", None) if node is not None else None,
            group=group,
            pass_name=pass_name,
            fix_hint=fix_hint,
        )
        self.diagnostics.append(diag)
        return diag

    def extend(self, other: "DiagnosticSink") -> None:
        self.diagnostics.extend(other.diagnostics)

    # -- queries ----------------------------------------------------------

    def __iter__(self):
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __bool__(self) -> bool:
        return bool(self.diagnostics)

    def codes(self) -> set[str]:
        return {d.code for d in self.diagnostics}

    def by_code(self, code: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity >= Severity.ERROR]

    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity == Severity.WARNING]

    def failures(self, level: LintLevel = LintLevel.DEFAULT) -> list:
        """Findings that count as failures at ``level``."""
        if level is LintLevel.OFF:
            return []
        threshold = level.failing_severity
        return [d for d in self.diagnostics if d.severity >= threshold]

    def ok(self, level: LintLevel = LintLevel.DEFAULT) -> bool:
        return not self.failures(level)

    def summary(self) -> dict:
        """Counters surfaced in compile reports and bench tables."""
        return {
            "diagnostics": len(self.diagnostics),
            "errors": len(self.errors()),
            "warnings": len(self.warnings()),
            "codes": sorted(self.codes()),
        }

    def render(self) -> str:
        return "\n".join(str(d) for d in self.diagnostics)

    def __repr__(self) -> str:
        return (f"DiagnosticSink(errors={len(self.errors())}, "
                f"warnings={len(self.warnings())})")
