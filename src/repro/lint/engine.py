"""Lint suite orchestration: run the right analyzers over an artifact.

Three granularities:

- :func:`lint_graph` — the graph-level analyzers (structural + symbolic);
  works on any IR graph, serialized or freshly built;
- :func:`lint_executable` — everything: graph-level analyzers over the
  optimized graph, the fusion auditor over the plan, and the memory-plan
  analyzer over the buffer plan;
- :func:`lint_compiled` — compile a source graph through the full pipeline
  (with per-pass blame) and lint the result; the one-call deep lint the
  CLI uses.
"""

from __future__ import annotations

from ..ir.graph import Graph
from .blame import BlameRecorder
from .diagnostics import DiagnosticSink, LintLevel
from .fusion_checks import check_fusion_plan
from .graph_checks import check_graph
from .hostprog_checks import check_host_program
from .interval_checks import (audit_stock_bucketer, check_intervals,
                              check_plan_coverage)
from .memory_checks import check_buffer_plan
from .symbolic_checks import check_symbols

__all__ = ["lint_graph", "lint_executable", "lint_compiled"]


def lint_graph(graph: Graph, sink: DiagnosticSink | None = None, *,
               assume_ranges=None, imap=None) -> DiagnosticSink:
    """Run the graph-level analyzers (structural + symbolic + interval).

    ``assume_ranges`` (symbol name -> ``(lo, hi)``) feeds proven
    deployment bounds into the interval derivation; ``imap`` reuses a
    map an outer caller already derived.
    """
    sink = sink if sink is not None else DiagnosticSink()
    check_graph(graph, sink)
    check_symbols(graph, sink)
    check_intervals(graph, sink, imap=imap, assume_ranges=assume_ranges)
    return sink


def _derive_imap(graph: Graph, assume_ranges=None):
    """Best-effort interval derivation for executable-level checks."""
    from ..core.symbolic.intervals import derive_intervals

    try:
        return derive_intervals(graph, assume_ranges=assume_ranges)
    except Exception:  # noqa: BLE001 - broken graph; skip L6xx deep checks
        return None


def lint_executable(executable, config=None,
                    sink: DiagnosticSink | None = None, *,
                    assume_ranges=None) -> DiagnosticSink:
    """Run the full analyzer suite over a compiled executable.

    ``config`` is the :class:`FusionConfig` the plan was built under
    (defaults to the stock bounds).  The fusion audit re-derives its own
    FULL-level shape analysis, independent of whatever the pipeline used.
    The interval map is derived once and shared by the graph-level L6xx
    pass and the plan-level soundness checks (L602/L603/L604).
    """
    sink = sink if sink is not None else DiagnosticSink()
    imap = _derive_imap(executable.graph, assume_ranges)
    lint_graph(executable.graph, sink, imap=imap)
    check_fusion_plan(executable.plan, config=config, sink=sink)
    check_buffer_plan(getattr(executable, "buffer_plan", None), sink,
                      imap=imap)
    check_host_program(getattr(executable, "host_program", None), sink)
    if imap is not None:
        check_plan_coverage(executable.graph, imap, sink)
        audit_stock_bucketer(executable.graph, imap, sink)
    return sink


def lint_compiled(graph: Graph, options=None,
                  sink: DiagnosticSink | None = None, *,
                  assume_ranges=None) -> DiagnosticSink:
    """Compile ``graph`` and lint every stage of the result.

    Equivalent to ``compile_graph(graph, options)`` with
    ``options.lint_level`` forced on, except the diagnostics land in the
    returned sink instead of the compile report.  A pipeline crash is
    itself reported as ``L000`` rather than raised, so the caller always
    gets a sink back.  ``assume_ranges`` are proven deployment bounds
    for the interval analyzers (overrides ``options.assume_ranges``).
    """
    import dataclasses

    from ..core.pipeline import CompileOptions, compile_graph

    sink = sink if sink is not None else DiagnosticSink()
    options = options or CompileOptions()
    if options.lint_level is LintLevel.OFF:
        options = dataclasses.replace(options, lint_level=LintLevel.DEFAULT)
    if assume_ranges is not None:
        options = dataclasses.replace(options, assume_ranges=assume_ranges)
    try:
        executable = compile_graph(graph, options)
    except Exception as exc:  # noqa: BLE001 - surface as a diagnostic
        sink.emit(
            "L000",
            f"pipeline failed to compile graph {graph.name!r}: "
            f"{type(exc).__name__}: {exc}")
        return sink
    if executable.report.lint is not None:
        sink.extend(executable.report.lint)
    else:  # lint_level was OFF despite the force above; lint directly
        lint_executable(executable, config=options.fusion, sink=sink,
                        assume_ranges=options.assume_ranges)
    return sink


def _run_pipeline_lint(working: Graph, recorder: BlameRecorder | None,
                       plan, analysis, config, buffer_plan,
                       host_program=None,
                       assume_ranges=None) -> DiagnosticSink:
    """Post-pipeline lint used by ``DiscCompiler`` (internal).

    Lints the optimized graph, the fusion plan (reusing the pipeline's
    analysis *plus* an independent FULL re-derivation inside the auditor
    when none is supplied) and the buffer plan, then stamps per-pass blame
    onto any finding a pass introduced.
    """
    sink = DiagnosticSink()
    imap = _derive_imap(working, assume_ranges)
    lint_graph(working, sink, imap=imap)
    check_fusion_plan(plan, analysis=None, config=config, sink=sink)
    check_buffer_plan(buffer_plan, sink, imap=imap)
    check_host_program(host_program, sink)
    if imap is not None:
        check_plan_coverage(working, imap, sink)
        audit_stock_bucketer(working, imap, sink)
    if recorder is not None:
        recorder.annotate(sink)
    return sink
