"""Lint suite orchestration: run the right analyzers over an artifact.

Three granularities:

- :func:`lint_graph` — the graph-level analyzers (structural + symbolic);
  works on any IR graph, serialized or freshly built;
- :func:`lint_executable` — everything: graph-level analyzers over the
  optimized graph, the fusion auditor over the plan, and the memory-plan
  analyzer over the buffer plan;
- :func:`lint_compiled` — compile a source graph through the full pipeline
  (with per-pass blame) and lint the result; the one-call deep lint the
  CLI uses.
"""

from __future__ import annotations

from ..ir.graph import Graph
from .blame import BlameRecorder
from .diagnostics import DiagnosticSink, LintLevel
from .fusion_checks import check_fusion_plan
from .graph_checks import check_graph
from .hostprog_checks import check_host_program
from .memory_checks import check_buffer_plan
from .symbolic_checks import check_symbols

__all__ = ["lint_graph", "lint_executable", "lint_compiled"]


def lint_graph(graph: Graph, sink: DiagnosticSink | None = None
               ) -> DiagnosticSink:
    """Run the graph-level analyzers (structural + symbolic)."""
    sink = sink if sink is not None else DiagnosticSink()
    check_graph(graph, sink)
    check_symbols(graph, sink)
    return sink


def lint_executable(executable, config=None,
                    sink: DiagnosticSink | None = None) -> DiagnosticSink:
    """Run the full analyzer suite over a compiled executable.

    ``config`` is the :class:`FusionConfig` the plan was built under
    (defaults to the stock bounds).  The fusion audit re-derives its own
    FULL-level shape analysis, independent of whatever the pipeline used.
    """
    sink = sink if sink is not None else DiagnosticSink()
    lint_graph(executable.graph, sink)
    check_fusion_plan(executable.plan, config=config, sink=sink)
    check_buffer_plan(getattr(executable, "buffer_plan", None), sink)
    check_host_program(getattr(executable, "host_program", None), sink)
    return sink


def lint_compiled(graph: Graph, options=None,
                  sink: DiagnosticSink | None = None) -> DiagnosticSink:
    """Compile ``graph`` and lint every stage of the result.

    Equivalent to ``compile_graph(graph, options)`` with
    ``options.lint_level`` forced on, except the diagnostics land in the
    returned sink instead of the compile report.  A pipeline crash is
    itself reported as ``L000`` rather than raised, so the caller always
    gets a sink back.
    """
    import dataclasses

    from ..core.pipeline import CompileOptions, compile_graph

    sink = sink if sink is not None else DiagnosticSink()
    options = options or CompileOptions()
    if options.lint_level is LintLevel.OFF:
        options = dataclasses.replace(options, lint_level=LintLevel.DEFAULT)
    try:
        executable = compile_graph(graph, options)
    except Exception as exc:  # noqa: BLE001 - surface as a diagnostic
        sink.emit(
            "L000",
            f"pipeline failed to compile graph {graph.name!r}: "
            f"{type(exc).__name__}: {exc}")
        return sink
    if executable.report.lint is not None:
        sink.extend(executable.report.lint)
    else:  # lint_level was OFF despite the force above; lint directly
        lint_executable(executable, config=options.fusion, sink=sink)
    return sink


def _run_pipeline_lint(working: Graph, recorder: BlameRecorder | None,
                       plan, analysis, config, buffer_plan,
                       host_program=None) -> DiagnosticSink:
    """Post-pipeline lint used by ``DiscCompiler`` (internal).

    Lints the optimized graph, the fusion plan (reusing the pipeline's
    analysis *plus* an independent FULL re-derivation inside the auditor
    when none is supplied) and the buffer plan, then stamps per-pass blame
    onto any finding a pass introduced.
    """
    sink = DiagnosticSink()
    lint_graph(working, sink)
    check_fusion_plan(plan, analysis=None, config=config, sink=sink)
    check_buffer_plan(buffer_plan, sink)
    check_host_program(host_program, sink)
    if recorder is not None:
        recorder.annotate(sink)
    return sink
