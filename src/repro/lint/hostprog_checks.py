"""Host-program analyzer: the slot-addressed instruction stream is safe.

``runtime.hostprog.lower_program`` turns the compiled kernel list into a
dense-slot instruction stream with last-use release.  A wrong slot index
or a premature release silently corrupts results (a released slot reads
back ``None``; an aliased slot reads another value's array), so the
lowering is re-audited structurally, independent of the lowerer:

- **L401** — an instruction (or the program epilogue) reads a slot that
  no parameter, constant or earlier instruction defines;
- **L402** — a slot is released at one instruction but read again by a
  later one (the read would observe ``None``);
- **L403** — a program output slot is released anywhere, or is never
  defined at all (the caller would receive ``None``);
- **L404** — the slot table is not a dense 0..n-1 bijection (two values
  mapped to one slot index, or a hole in the numbering).
"""

from __future__ import annotations

from .diagnostics import DiagnosticSink

__all__ = ["check_host_program"]


def check_host_program(program, sink: DiagnosticSink | None = None
                       ) -> DiagnosticSink:
    """Audit a :class:`~repro.runtime.hostprog.HostProgram`."""
    sink = sink if sink is not None else DiagnosticSink()
    if program is None:
        return sink

    num_slots = program.num_slots
    slots = list(program.slot_of.values())
    if sorted(slots) != list(range(num_slots)):
        sink.emit(
            "L404",
            f"slot table maps {len(slots)} values onto "
            f"{len(set(slots))} distinct slots of {num_slots} "
            f"(expected a dense bijection)")

    defined = {slot for slot, __ in program.param_slots}
    defined.update(slot for slot, value in
                   enumerate(program.env_template) if value is not None)
    released: dict[int, int] = {}  # slot -> instruction that released it
    outputs = set(program.output_slots)

    for index, instr in enumerate(program.instructions):
        for slot in instr.in_slots:
            if slot not in defined:
                sink.emit(
                    "L401",
                    f"instruction {index} ({instr.kernel.name}) reads "
                    f"slot {slot} before any definition")
            elif slot in released:
                sink.emit(
                    "L402",
                    f"instruction {index} ({instr.kernel.name}) reads "
                    f"slot {slot} released after instruction "
                    f"{released[slot]}",
                    fix_hint="the lowerer's last-use analysis dropped a "
                             "read")
        for slot in instr.out_slots:
            defined.add(slot)
            released.pop(slot, None)  # a redefinition revives the slot
        for slot in instr.release:
            if slot in outputs:
                sink.emit(
                    "L403",
                    f"instruction {index} ({instr.kernel.name}) "
                    f"releases program output slot {slot}")
            released[slot] = index

    for slot in program.output_slots:
        if slot not in defined:
            sink.emit(
                "L403",
                f"program output slot {slot} is never defined")
    return sink
