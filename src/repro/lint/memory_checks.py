"""Memory-plan analyzer: no buffer aliasing across live values.

``runtime.memory.plan_buffers`` promises that two intermediates share a
device slot only when their live ranges are disjoint.  Because sizes are
symbolic the promise cannot be spot-checked numerically — it has to hold
*structurally* for every shape.  This analyzer re-checks the promise from
the plan's intervals alone:

- **L301** — two overlapping live ranges were assigned the same slot
  (aliasing: the later value would overwrite the earlier while it is
  still live);
- **L302** — a malformed interval: negative range, unassigned slot, or a
  slot index beyond the plan's slot count;
- **L303** — one node id planned into two intervals (double allocation;
  every id-keyed lookup becomes ambiguous).
"""

from __future__ import annotations

from .diagnostics import DiagnosticSink

__all__ = ["check_buffer_plan"]


def check_buffer_plan(plan, sink: DiagnosticSink | None = None,
                      imap=None) -> DiagnosticSink:
    """Audit a :class:`~repro.runtime.memory.BufferPlan`.

    With an interval map (``repro.core.symbolic.intervals``) the audit
    is upgraded from concrete to symbolic: overlapping reuses are also
    judged against the occupants' whole-class byte-size intervals
    (L602, via :func:`~repro.lint.interval_checks.check_memory_symbolic`).
    """
    sink = sink if sink is not None else DiagnosticSink()
    if plan is None:
        return sink
    if imap is not None:
        from .interval_checks import check_memory_symbolic
        check_memory_symbolic(plan, imap, sink)

    seen_ids: dict[int, object] = {}
    by_slot: dict[int, list] = {}
    for interval in plan.intervals:
        if interval.end < interval.start:
            sink.emit(
                "L302",
                f"interval for node {interval.node_id} ends before it "
                f"starts ({interval.start}..{interval.end})")
        if interval.slot < 0 or interval.slot >= plan.num_slots:
            sink.emit(
                "L302",
                f"interval for node {interval.node_id} has slot "
                f"{interval.slot} outside 0..{plan.num_slots - 1}")
            continue
        if interval.node_id in seen_ids:
            sink.emit(
                "L303",
                f"node {interval.node_id} is planned into two buffers "
                f"(slots {seen_ids[interval.node_id].slot} and "
                f"{interval.slot})")
        else:
            seen_ids[interval.node_id] = interval
        by_slot.setdefault(interval.slot, []).append(interval)

    for slot, intervals in by_slot.items():
        ordered = sorted(intervals, key=lambda i: (i.start, i.end))
        for earlier, later in zip(ordered, ordered[1:]):
            if earlier.end >= later.start:
                sink.emit(
                    "L301",
                    f"slot {slot} aliases node {earlier.node_id} "
                    f"(live {earlier.start}..{earlier.end}) with node "
                    f"{later.node_id} (live {later.start}..{later.end})",
                    fix_hint="the slot assigner reused a slot before its "
                             "occupant's last read")
    return sink
