"""E11 — intermediate-buffer planning table (pipeline memory optimisation).

Naive total intermediate memory vs the liveness-reused peak, with fusion
off and on, for every zoo model.  Claims: fusion removes most
intermediates outright; buffer reuse shrinks what remains; the combination
bounds peak memory for arbitrary shapes without per-shape tuning.
"""

import pytest

from repro.bench import e11_memory_planning, format_memory_planning, \
    print_and_save


@pytest.fixture(scope="module")
def experiment():
    result = e11_memory_planning()
    print_and_save("e11_memory_planning", result,
                   format_memory_planning(result))
    return result


def test_bench_e11_memory_planning(benchmark, experiment, bert_disc,
                                   bert_inputs):
    benchmark(bert_disc.run, bert_inputs)
    rows = experiment["rows"]
    for row in rows:
        assert row["peak_mb"] <= row["naive_mb"] + 1e-9
        assert row["reuse_factor"] >= 1.0
    by_key = {(r["model"], r["fusion"]): r for r in rows}
    for model in {r["model"] for r in rows}:
        unfused = by_key[(model, "unfused")]
        fused = by_key[(model, "fused")]
        assert fused["values"] <= unfused["values"], model
        assert fused["naive_mb"] <= unfused["naive_mb"] + 1e-9, model
