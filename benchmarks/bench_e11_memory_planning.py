"""E11 — intermediate-buffer planning table (pipeline memory optimisation).

Naive total intermediate memory vs the liveness-reused peak, with fusion
off and on, for every zoo model.  Claims: fusion removes most
intermediates outright; buffer reuse shrinks what remains; the combination
bounds peak memory for arbitrary shapes without per-shape tuning.

The shape-diversity sweep extends the claim to the *symbolic* planner:
one class-wide reuse plan (frozen at compile time, replayed for every
signature) must stay within ``MAX_SYMBOLIC_RATIO`` of a
best-fit-decreasing planner that is allowed to re-plan for every concrete
shape.  That is the price of planning once per class instead of once per
shape — the CI perf-smoke gate pins it.

Runnable directly as a perf-smoke gate (used by CI)::

    python benchmarks/bench_e11_memory_planning.py --quick
"""

import sys

import pytest

from repro.bench import e11_memory_planning, format_memory_planning, \
    print_and_save

#: CI gate: the one symbolic class plan's peak must stay within this
#: factor of the per-shape re-planning baseline at *every* sampled shape.
MAX_SYMBOLIC_RATIO = 1.1

#: representative subset for --quick (CI smoke): an attention model, the
#: two-axis TTS pipeline (the hardest packing case), and the
#: embedding-heavy recommender.
QUICK_MODELS = ["bert", "fastspeech2", "dien"]


@pytest.fixture(scope="module")
def experiment():
    result = e11_memory_planning()
    print_and_save("e11_memory_planning", result,
                   format_memory_planning(result))
    return result


def _check_gate(result: dict) -> list:
    failures = []
    for row in result["diversity"]:
        if not row["proven"]:
            failures.append(f"{row['model']}: class peak not provable "
                            f"under the zoo axes")
        if row["worst_ratio"] > MAX_SYMBOLIC_RATIO:
            failures.append(
                f"{row['model']}: symbolic one-plan peak "
                f"{row['worst_ratio']:.3f}x the per-shape re-planning "
                f"peak (gate {MAX_SYMBOLIC_RATIO}x)")
        if row["symbolic_peak_mb"] > row["naive_mb"] + 1e-9:
            failures.append(f"{row['model']}: symbolic peak exceeds the "
                            f"no-reuse baseline")
    return failures


def test_bench_e11_memory_planning(benchmark, experiment, bert_disc,
                                   bert_inputs):
    benchmark(bert_disc.run, bert_inputs)
    rows = experiment["rows"]
    for row in rows:
        assert row["peak_mb"] <= row["naive_mb"] + 1e-9
        assert row["reuse_factor"] >= 1.0
    by_key = {(r["model"], r["fusion"]): r for r in rows}
    for model in {r["model"] for r in rows}:
        unfused = by_key[(model, "unfused")]
        fused = by_key[(model, "fused")]
        assert fused["values"] <= unfused["values"], model
        assert fused["naive_mb"] <= unfused["naive_mb"] + 1e-9, model


def test_bench_e11_symbolic_one_plan_gate(experiment):
    failures = _check_gate(experiment)
    assert not failures, "\n".join(failures)


def main(argv=None) -> int:
    import argparse
    parser = argparse.ArgumentParser(
        description="E11 memory-planning perf smoke",
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--quick", action="store_true",
                        help=f"subset ({', '.join(QUICK_MODELS)}) with "
                             "the symbolic one-plan gate enforced")
    parser.add_argument("--check", action="store_true",
                        help="enforce the gate on the full zoo "
                             "(implied by --quick)")
    parser.add_argument("--shapes", type=int, default=8,
                        help="sampled shapes per model (default 8)")
    args = parser.parse_args(argv)

    if args.quick:
        result = e11_memory_planning(models=QUICK_MODELS,
                                     shapes_per_model=args.shapes)
    else:
        result = e11_memory_planning(shapes_per_model=args.shapes)
    print_and_save("e11_memory_planning", result,
                   format_memory_planning(result))

    if args.quick or args.check:
        failures = _check_gate(result)
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}")
            return 1
        worst = max(r["worst_ratio"] for r in result["diversity"])
        print(f"OK: symbolic one-plan peak within {worst:.3f}x of "
              f"per-shape re-planning on every sampled shape "
              f"(gate {MAX_SYMBOLIC_RATIO}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
