"""E16 — async serving: background compilation vs synchronous stalls.

The E14 shape-diverse trace replayed through the *runtime*
(``repro.serving``) under a virtual clock: synchronous per-signature
compilation stalls the server behind every cold signature, background
compilation answers cold requests on the interpreter fallback while the
pool produces launch plans.  Claims: async-compile p99 strictly below
synchronous-compile p99, and injected compile faults (transient retries
+ permanent quarantines) never surface an error to a request.

Runnable directly as a perf-smoke gate (used by CI)::

    python benchmarks/bench_e16_async_serving.py --quick
"""

import sys

import pytest

from repro.bench import (e16_async_serving, format_async_serving,
                         print_and_save)

#: CI gate: async p99 must beat sync p99 by at least this factor (the
#: acceptance bar is "strictly below"; the margin keeps the gate
#: meaningful rather than winning by rounding).
REQUIRED_P99_IMPROVEMENT = 1.5

#: --quick (CI smoke): fewer queries, same structure.
QUICK_QUERIES = 60


def _modes(result):
    return {row["mode"]: row for row in result["rows"]}


@pytest.fixture(scope="module")
def experiment():
    result = e16_async_serving("A10")
    print_and_save("e16_async_serving", result,
                   format_async_serving(result))
    return result


def test_async_p99_beats_sync(experiment):
    modes = _modes(experiment)
    sync_p99 = modes["sync compile"]["p99_us"]
    async_p99 = modes["async + fallback"]["p99_us"]
    assert async_p99 < sync_p99, \
        "background compilation did not improve tail latency"
    assert experiment["p99_improvement"] >= REQUIRED_P99_IMPROVEMENT


def test_no_request_ever_sees_an_error(experiment):
    for row in experiment["rows"]:
        assert row["errors"] == 0, \
            f"{row['mode']}: {row['errors']} non-OK responses"


def test_faults_degrade_latency_not_correctness(experiment):
    modes = _modes(experiment)
    faulted = modes["async + faults"]
    assert faulted["quarantined"] > 0, \
        "fault schedule never quarantined a signature"
    assert faulted["p99_us"] < modes["sync compile"]["p99_us"], \
        "even a fault-ridden async runtime must beat sync stalls"


def test_async_mode_actually_exercises_both_paths(experiment):
    modes = _modes(experiment)
    row = modes["async + fallback"]
    assert row["fallback"] > 0, "no cold request hit the fallback"
    assert row["fast"] > 0, "no request ever reached the warm path"
    assert row["compile_stalls"] == 0, "async mode must never stall"


def main(argv=None) -> int:
    import argparse
    parser = argparse.ArgumentParser(
        description="E16 async-serving perf smoke",
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--quick", action="store_true",
                        help=f"{QUICK_QUERIES}-query trace; what CI runs")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 unless async p99 beats sync p99 by "
                             f">= {REQUIRED_P99_IMPROVEMENT}x with zero "
                             "errors (implied by --quick)")
    parser.add_argument("--device", default="A10")
    args = parser.parse_args(argv)

    if args.quick:
        result = e16_async_serving(args.device,
                                   num_queries=QUICK_QUERIES)
    else:
        result = e16_async_serving(args.device)
    print_and_save("e16_async_serving", result,
                   format_async_serving(result))

    if args.quick or args.check:
        errors = sum(row["errors"] for row in result["rows"])
        if errors:
            print(f"FAIL: {errors} requests saw a non-OK response")
            return 1
        improvement = result["p99_improvement"]
        if improvement < REQUIRED_P99_IMPROVEMENT:
            print(f"FAIL: async p99 only {improvement:.2f}x below sync "
                  f"(need >= {REQUIRED_P99_IMPROVEMENT}x)")
            return 1
        # Each mode serves through a traced ServingEngine on the virtual
        # clock; the JSON artifact must carry per-mode span breakdowns
        # that saw every request.
        for row in result["rows"]:
            breakdown = row.get("span_breakdown", {})
            requests = breakdown.get("request", {}).get("count", 0)
            if requests != result["num_queries"]:
                print(f"FAIL: {row['mode']}: span_breakdown saw "
                      f"{requests} request spans, expected "
                      f"{result['num_queries']}")
                return 1
        print(f"OK: async p99 {improvement:.2f}x below sync, 0 errors "
              f"(gate {REQUIRED_P99_IMPROVEMENT}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
