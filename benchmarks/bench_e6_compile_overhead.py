"""E6 — compilation overhead table.

One-time compilation cost per zoo model: pipeline wall time of this
implementation, the simulated JIT-grade compile cost charged in serving
experiments, kernel counts, and the symbolic-analysis share.  The paper's
point: BladeDISC pays this once per *model*, not per shape.
"""

import pytest

from repro.bench import e6_compile_overhead, format_compile_overhead, \
    print_and_save
from repro.core import DiscCompiler


@pytest.fixture(scope="module")
def experiment():
    result = e6_compile_overhead()
    print_and_save("e6_compile_overhead", result,
                   format_compile_overhead(result))
    return result


def test_bench_e6_compile_bert(benchmark, experiment, bert_model):
    compiler = DiscCompiler()
    benchmark(compiler.compile, bert_model.graph)
    for row in experiment["rows"]:
        assert row["kernels"] > 0
        assert row["pipeline_wall_s"] < 60
        # the symbolic analysis is a trivial share of compilation
        assert row["analysis_ms"] / 1e3 < row["pipeline_wall_s"]
