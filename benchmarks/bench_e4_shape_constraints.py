"""E4 — symbolic shape-constraint ablation table.

Fusion quality when the analysis is restricted: no constraints at all
(structural shapes only), dim-equality only, and the full store including
reshape product-equality.  The full level must fuse at least as much as
the restricted ones — the reshape-crossing loop fusions are exactly what
product equality buys.
"""

import pytest

from repro.bench import e4_shape_constraints, format_shape_constraints, \
    print_and_save


@pytest.fixture(scope="module")
def experiment():
    result = e4_shape_constraints("A10", models=("bert", "gpt2", "s2t"),
                                  num_queries=10)
    print_and_save("e4_shape_constraints", result,
                   format_shape_constraints(result))
    return result


def test_bench_e4_shape_constraints(benchmark, experiment, bert_disc,
                                    bert_inputs):
    benchmark(bert_disc.run, bert_inputs)
    for model in ("bert", "gpt2", "s2t"):
        rows = {r["level"]: r for r in experiment["rows"]
                if r["model"] == model}
        assert rows["full"]["kernels"] <= rows["equality"]["kernels"] \
            <= rows["none"]["kernels"] + 1
        assert rows["full"]["fused_ops"] >= rows["none"]["fused_ops"]
        assert rows["full"]["mean_steady_us"] <= \
            rows["none"]["mean_steady_us"] * 1.02
