"""E13 — CPU deployment end-to-end (the system's non-GPU target).

BladeDISC also deploys on x86 and AArch64 servers; the same compiled
pipeline is driven against the CPU device profiles here.  On CPU the
kernel-launch economics change (calls are cheap, parallelism is scarce):
framework dispatch overhead still loses, padding still wastes compute, and
BladeDISC must keep winning on average — with smaller factors against the
launch-bound baselines than on GPU.
"""

import pytest

from repro.baselines import DiscExecutor
from repro.bench import e1_end_to_end, format_end_to_end, print_and_save
from repro.device import CPU_X86


@pytest.fixture(scope="module")
def experiment():
    result = e1_end_to_end("CPU-x86", num_queries=12, seed=0,
                           models=["bert", "gpt2", "s2t", "dien"])
    print_and_save("e13_cpu_end_to_end", result,
                   format_end_to_end(result))
    return result


def test_bench_e13_cpu(benchmark, experiment, bert_model, bert_inputs):
    disc = DiscExecutor(bert_model.graph, CPU_X86)
    benchmark(disc.run, bert_inputs)
    summary = experiment["summary"]
    for system, stats in summary.items():
        assert stats["mean"] > 0.9, f"collapsed against {system} on CPU"
    # overhead-bound gaps shrink on CPU relative to GPU
    assert summary["PyTorch"]["mean"] > 1.2
