"""E8 — kernel-launch and memory-traffic reduction table.

Per model: kernels launched and bytes moved for one inference, per-op
eager execution versus the BladeDISC executable.  The fusion pipeline's
mechanical effect — the paper's explanation of *why* the end-to-end wins
happen — is a multi-x reduction in both.
"""

import pytest

from repro.bench import e8_kernel_reduction, format_kernel_reduction, \
    print_and_save


@pytest.fixture(scope="module")
def experiment():
    result = e8_kernel_reduction("A10")
    print_and_save("e8_kernel_reduction", result,
                   format_kernel_reduction(result))
    return result


def test_bench_e8_kernel_reduction(benchmark, experiment, bert_disc,
                                   bert_inputs):
    benchmark(bert_disc.run, bert_inputs)
    for row in experiment["rows"]:
        assert row["kernel_reduction"] > 1.3, row["model"]
        assert row["bytes_reduction"] >= 1.0, row["model"]
    by_model = {r["model"]: r for r in experiment["rows"]}
    # transformer models fuse heavily (eager already serves composites
    # like softmax/layer-norm as single fused library kernels, so the
    # eager-vs-DISC kernel ratio is bounded by the remaining glue)
    assert by_model["bert"]["kernel_reduction"] > 1.6
