"""E1 — the paper's headline figure, A10 half.

End-to-end inference speedup of BladeDISC over PyTorch, TorchScript, TVM,
ONNX Runtime, XLA, Torch Inductor (dynamic shape) and TensorRT across the
eight-model zoo on the simulated A10.  The abstract reports average
speedups of 3.54 / 3.12 / 1.95 / 1.47 / 1.24 / 2.93 / 1.46x respectively;
the acceptance criterion is the *shape*: BladeDISC wins on average against
every system, with PyTorch/TorchScript/Inductor the largest gaps and
XLA/TensorRT the smallest.
"""

import pytest

from repro.bench import e1_end_to_end, format_end_to_end, print_and_save


@pytest.fixture(scope="module")
def experiment():
    result = e1_end_to_end("A10", num_queries=20, seed=0)
    print_and_save("e1_end_to_end_a10", result, format_end_to_end(result))
    return result


def test_bench_e1_disc_query_a10(benchmark, experiment, bert_disc,
                                 bert_inputs):
    benchmark(bert_disc.run, bert_inputs)
    summary = experiment["summary"]
    for system, stats in summary.items():
        assert stats["mean"] > 1.0, f"lost to {system} on average"
    # the paper's strongest baselines
    assert summary["XLA"]["mean"] < summary["PyTorch"]["mean"]
    assert summary["TensorRT"]["mean"] < summary["TorchScript"]["mean"]
