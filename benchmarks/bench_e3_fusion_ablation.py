"""E3 — fusion-kind ablation table.

Kernels launched, memory traffic, and latency as the fusion kinds are
enabled one by one (none -> kLoop -> +kInput -> +kStitch) on BERT and the
Speech-to-Text encoder.  The paper's claim: each kind strictly improves
all three metrics, with kStitch delivering the reduction-fusion win.
"""

import pytest

from repro.bench import e3_fusion_ablation, format_fusion_ablation, \
    print_and_save


@pytest.fixture(scope="module")
def experiment():
    result = e3_fusion_ablation("A10", models=("bert", "s2t"),
                                num_queries=10)
    print_and_save("e3_fusion_ablation", result,
                   format_fusion_ablation(result))
    return result


def test_bench_e3_fusion_ablation(benchmark, experiment, bert_disc,
                                  bert_inputs):
    benchmark(bert_disc.run, bert_inputs)
    for model in ("bert", "s2t"):
        rows = [r for r in experiment["rows"] if r["model"] == model]
        kernels = [r["kernels_per_query"] for r in rows]
        assert kernels == sorted(kernels, reverse=True), model
        assert rows[0]["mean_steady_us"] > rows[-1]["mean_steady_us"]
        assert rows[0]["mbytes_per_query"] >= rows[-1]["mbytes_per_query"]
