"""Shared helpers for the benchmark suite.

Every ``bench_e*.py`` file regenerates one paper artifact: a module-scoped
fixture runs the (simulated) experiment, prints the paper-style table and
persists it under ``benchmarks/results/``; the ``test_bench_*`` functions
then time a representative real code path with pytest-benchmark so the
suite doubles as a performance regression harness for the compiler itself.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import DiscExecutor
from repro.bench import BENCH_MODELS
from repro.device import A10
from repro.models import build_model


@pytest.fixture(scope="session")
def bert_model():
    return build_model("bert", **BENCH_MODELS["bert"])


@pytest.fixture(scope="session")
def bert_disc(bert_model):
    return DiscExecutor(bert_model.graph, A10)


@pytest.fixture(scope="session")
def bert_inputs(bert_model):
    rng = np.random.default_rng(0)
    return bert_model.make_inputs(rng, batch=2, seqlen=64)
