"""E12 — adaptive shape specialisation (speculative compilation).

The runtime extension the BladeDISC system ships for latency-critical
deployments: keep the shape-generic executable as the universal fallback
and speculatively build shape-specialised kernels for signatures that turn
out hot, in the background.  Claims: zero request stalls (unlike a
per-shape JIT), steady-state at least as good as generic-only, and
strictly better than the JIT's end-to-end totals on skewed traffic.
"""

import pytest

from repro.bench import (e12_adaptive_specialization,
                         format_adaptive_specialization, print_and_save)


@pytest.fixture(scope="module")
def experiment():
    result = e12_adaptive_specialization("A10", num_queries=40)
    print_and_save("e12_adaptive_specialization", result,
                   format_adaptive_specialization(result))
    return result


def test_bench_e12_adaptive(benchmark, experiment, bert_disc,
                            bert_inputs):
    benchmark(bert_disc.run, bert_inputs)
    rows = {r["engine"]: r for r in experiment["rows"]}
    adaptive = rows["adaptive specialisation"]
    generic = rows["generic (compile once)"]
    jit = rows["per-shape JIT (XLA-style)"]
    assert adaptive["stall_compiles"] == 0
    assert adaptive["background_compiles"] >= 1
    assert adaptive["mean_steady_us"] <= generic["mean_steady_us"] + 1e-6
    assert adaptive["total_us_per_query"] < jit["total_us_per_query"]
