"""E9 — multi-schedule codegen benefit + schedule autotuning.

A softmax kernel compiled once with three schedule variants, measured at
three row-space extremes: no single fixed schedule is best everywhere,
and the runtime selector must track the per-shape best variant.  On top
of that dispatch baseline, the budgeted autotuner searches the tuned
row-tile/vector families per zoo model and must beat the heuristic
picks by >= 1.15x geomean on schedulable-kernel device time — while
staying inside its search budget and changing no output bit.

Run directly with ``--quick`` as the CI perf gate.
"""

import sys

import numpy as np
import pytest

from repro.bench import e9_schedule_selection, format_schedule_selection, \
    print_and_save
from repro.core import compile_graph
from repro.device import A10
from repro.ir import GraphBuilder, f32
from repro.runtime import ExecutionEngine

#: geomean tuned-vs-heuristic speedup on schedulable-kernel device time
#: the zoo must clear (acceptance bar for the autotuner).
REQUIRED_GEOMEAN_SPEEDUP = 1.15


@pytest.fixture(scope="module")
def experiment():
    result = e9_schedule_selection("A10")
    print_and_save("e9_schedule_selection", result,
                   format_schedule_selection(result))
    return result


def check_selector(experiment):
    schedules = experiment["schedules"]
    no_single_winner = set()
    for record in experiment["rows"]:
        best = min(schedules, key=lambda s: record[s])
        no_single_winner.add(best)
        assert record["selected"] <= 1.25 * record["best_fixed"], record
    assert len(no_single_winner) >= 2, \
        "expected different shapes to favour different schedules"


def check_autotune(experiment):
    autotune = experiment["autotune"]
    assert autotune["geomean_kernel_speedup"] \
        >= REQUIRED_GEOMEAN_SPEEDUP, autotune
    assert autotune["geomean_model_speedup"] >= 1.0
    for record in autotune["rows"]:
        # Tuned never slower than heuristic — per model, both on the
        # kernels the search scored and end to end.
        assert record["tuned_kernel_us"] \
            <= record["heuristic_kernel_us"] * (1 + 1e-9), record
        assert record["tuned_model_us"] \
            <= record["heuristic_model_us"] * (1 + 1e-9), record
        # The adversarial bound brackets the decision from below.
        assert record["worst_model_us"] \
            >= record["heuristic_model_us"] * (1 - 1e-9), record
        # Budgeted search: spent time inside the configured ceiling.
        assert record["tuning_spent_us"] <= record["budget_us"], record
        assert record["enumerated"] == record["pruned"] \
            + record["scored"], record
    sweep = experiment["shape_sweep"]["rows"]
    for record in sweep:
        assert record["tuned_us_per_query"] \
            <= record["heuristic_us_per_query"] * (1 + 1e-9), record
        assert record["signatures_tuned"] == record["distinct_shapes"]


def check_bit_identity():
    """A tuned plan changes schedule picks, never numerics."""
    from repro.tuning import ScheduleTuner

    b = GraphBuilder("softmax_micro")
    rows, cols = b.sym("rows"), b.sym("cols")
    x = b.parameter("x", (rows, cols), f32)
    b.outputs(b.softmax(x, axis=-1))
    exe = compile_graph(b.graph)
    data = np.random.default_rng(0).normal(
        size=(512, 2048)).astype(np.float32)
    engine = ExecutionEngine(exe, A10)
    expected, heuristic_stats = engine.run({"x": data})
    signature = engine.host_program.signature({"x": data})
    result = ScheduleTuner(A10).tune(exe, signature)
    engine.prepare({"x": data}, signature, selector=result.selector(),
                   overwrite=True)
    outputs, tuned_stats = engine.run({"x": data})
    for ref, got in zip(expected, outputs):
        assert ref.tobytes() == got.tobytes(), \
            "tuned outputs diverged from heuristic outputs"
    assert tuned_stats.device_time_us <= heuristic_stats.device_time_us


def test_bench_e9_schedule_selection(benchmark, experiment):
    b = GraphBuilder("softmax_micro")
    rows, cols = b.sym("rows"), b.sym("cols")
    x = b.parameter("x", (rows, cols), f32)
    b.outputs(b.softmax(x, axis=-1))
    engine = ExecutionEngine(compile_graph(b.graph), A10)
    data = np.random.default_rng(0).normal(
        size=(1024, 256)).astype(np.float32)
    benchmark(engine.run, {"x": data})
    check_selector(experiment)


def test_bench_e9_autotuning(experiment):
    check_autotune(experiment)
    check_bit_identity()


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="run the perf gate and exit nonzero on "
                             "regression")
    parser.add_argument("--device", default="A10")
    args = parser.parse_args(argv)

    result = e9_schedule_selection(args.device)
    print_and_save("e9_schedule_selection", result,
                   format_schedule_selection(result))
    if args.quick:
        try:
            check_selector(result)
            check_autotune(result)
            check_bit_identity()
        except AssertionError as exc:
            print(f"FAIL: {exc}")
            return 1
        autotune = result["autotune"]
        print(f"OK: geomean tuned speedup "
              f"{autotune['geomean_kernel_speedup']:.3f}x "
              f"schedulable-kernel "
              f"({autotune['geomean_model_speedup']:.3f}x whole-model) "
              f">= {REQUIRED_GEOMEAN_SPEEDUP}x, every search inside its "
              f"{autotune['budget_us']:.0f}us budget, outputs "
              f"bit-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
