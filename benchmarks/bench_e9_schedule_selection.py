"""E9 — multi-schedule codegen benefit table.

A softmax kernel compiled once with three schedule variants, measured at
three row-space extremes.  No single fixed schedule is best everywhere;
the runtime selector must track the per-shape best variant — the payoff of
shipping several schedules in one compilation.
"""

import numpy as np
import pytest

from repro.bench import e9_schedule_selection, format_schedule_selection, \
    print_and_save
from repro.core import compile_graph
from repro.ir import GraphBuilder, f32
from repro.runtime import ExecutionEngine
from repro.device import A10


@pytest.fixture(scope="module")
def experiment():
    result = e9_schedule_selection("A10")
    print_and_save("e9_schedule_selection", result,
                   format_schedule_selection(result))
    return result


def test_bench_e9_schedule_selection(benchmark, experiment):
    b = GraphBuilder("softmax_micro")
    rows, cols = b.sym("rows"), b.sym("cols")
    x = b.parameter("x", (rows, cols), f32)
    b.outputs(b.softmax(x, axis=-1))
    engine = ExecutionEngine(compile_graph(b.graph), A10)
    data = np.random.default_rng(0).normal(
        size=(1024, 256)).astype(np.float32)
    benchmark(engine.run, {"x": data})

    schedules = experiment["schedules"]
    no_single_winner = set()
    for record in experiment["rows"]:
        best = min(schedules, key=lambda s: record[s])
        no_single_winner.add(best)
        assert record["selected"] <= 1.25 * record["best_fixed"], record
    assert len(no_single_winner) >= 2, \
        "expected different shapes to favour different schedules"
