"""E18 — fleet routing: signature affinity vs signature-blind placement.

A shape-diverse zipf trace replayed through a multi-replica
``FleetEngine`` under a virtual clock, once per routing policy, across
a replica sweep.  Every replica runs a bounded launch-plan LRU; the
trace's signature working set exceeds one replica's capacity.  Claims:
rendezvous-hash affinity partitions the signature space so each
replica's share fits its plan cache (stable fast-path service), while
signature-blind round-robin thrashes every cache into perpetual
eviction, background recompiles and eager-fallback service — at the
4-replica gate point its p99 must be at least 1.5x above affinity's —
and no policy, replica count or cache state may ever change an output:
every OK response is bit-identical to a direct engine run.

Runnable directly as a perf-smoke gate (used by CI)::

    python benchmarks/bench_e18_fleet_routing.py --quick
"""

import sys

import pytest

from repro.bench import (e18_fleet_routing, format_fleet_routing,
                         print_and_save)

#: CI gate: round-robin p99 must exceed affinity p99 by at least this
#: factor at the gate replica count (the acceptance bar from the issue).
REQUIRED_P99_RATIO = 1.5

#: --quick (CI smoke): fewer queries, same structure.  240 keeps the
#: signature working set (~110 distinct) well above one replica's plan
#: capacity — below that the whole trace fits every cache and the
#: policies converge.
QUICK_QUERIES = 240


def _row(result, policy, replicas):
    return next(r for r in result["rows"]
                if r["policy"] == policy and r["replicas"] == replicas)


@pytest.fixture(scope="module")
def experiment():
    result = e18_fleet_routing("A10")
    print_and_save("e18_fleet_routing", result,
                   format_fleet_routing(result))
    return result


def test_affinity_beats_round_robin_at_the_gate(experiment):
    gate = experiment["gate_replicas"]
    affinity = _row(experiment, "affinity", gate)
    round_robin = _row(experiment, "round_robin", gate)
    assert affinity["p99_us"] < round_robin["p99_us"], \
        "signature affinity did not improve tail latency"
    assert experiment["p99_ratio_at_gate"] >= REQUIRED_P99_RATIO


def test_every_response_is_bit_identical_and_ok(experiment):
    assert experiment["errors"] == 0, \
        f"{experiment['errors']} non-OK responses across the sweep"
    assert experiment["mismatches"] == 0, \
        "a routed response diverged from the direct engine run"


def test_round_robin_thrashes_the_plan_cache(experiment):
    gate = experiment["gate_replicas"]
    affinity = _row(experiment, "affinity", gate)
    round_robin = _row(experiment, "round_robin", gate)
    assert round_robin["recompiles"] > affinity["recompiles"], \
        "signature-blind placement should churn the bounded LRU"
    assert round_robin["fallback"] > affinity["fallback"], \
        "cache thrash should push round-robin onto the eager fallback"


def test_affinity_actually_pins_signatures(experiment):
    gate = experiment["gate_replicas"]
    affinity = _row(experiment, "affinity", gate)
    assert affinity["affinity_hits"] > 0, "no repeat ever hit its home"
    assert affinity["affinity_spills"] == 0, \
        "spill is disabled in this sweep; a spill means the policy leaked"


def main(argv=None) -> int:
    import argparse
    parser = argparse.ArgumentParser(
        description="E18 fleet-routing perf smoke",
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--quick", action="store_true",
                        help=f"{QUICK_QUERIES}-query trace at the gate "
                             "replica count only; what CI runs")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 unless affinity p99 beats round-"
                             f"robin by >= {REQUIRED_P99_RATIO}x at the "
                             "gate with zero errors/mismatches (implied "
                             "by --quick)")
    parser.add_argument("--device", default="A10")
    args = parser.parse_args(argv)

    if args.quick:
        result = e18_fleet_routing(args.device,
                                   num_queries=QUICK_QUERIES,
                                   replica_counts=(4,))
    else:
        result = e18_fleet_routing(args.device)
    print_and_save("e18_fleet_routing", result,
                   format_fleet_routing(result))

    if args.quick or args.check:
        if result["errors"]:
            print(f"FAIL: {result['errors']} non-OK responses")
            return 1
        if result["mismatches"]:
            print(f"FAIL: {result['mismatches']} responses diverged "
                  "from the direct engine run")
            return 1
        ratio = result["p99_ratio_at_gate"]
        if ratio < REQUIRED_P99_RATIO:
            print(f"FAIL: affinity p99 only {ratio:.2f}x below round-"
                  f"robin (need >= {REQUIRED_P99_RATIO}x)")
            return 1
        print(f"OK: affinity p99 {ratio:.2f}x below round-robin at "
              f"{result['gate_replicas']} replicas, 0 errors, "
              f"0 mismatches (gate {REQUIRED_P99_RATIO}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
