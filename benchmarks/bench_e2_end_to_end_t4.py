"""E2 — the paper's headline figure, T4 half.

Same protocol as E1 on the simulated T4 (lower bandwidth, much lower fp32
peak).  Factors shift but the ordering of systems must be preserved.
"""

import pytest

from repro.baselines import DiscExecutor
from repro.bench import e1_end_to_end, format_end_to_end, print_and_save
from repro.device import T4


@pytest.fixture(scope="module")
def experiment():
    result = e1_end_to_end("T4", num_queries=20, seed=0)
    print_and_save("e2_end_to_end_t4", result, format_end_to_end(result))
    return result


def test_bench_e2_disc_query_t4(benchmark, experiment, bert_model,
                                bert_inputs):
    disc = DiscExecutor(bert_model.graph, T4)
    benchmark(disc.run, bert_inputs)
    summary = experiment["summary"]
    for system, stats in summary.items():
        assert stats["mean"] > 0.95, f"collapsed against {system} on T4"
    assert summary["PyTorch"]["mean"] > summary["XLA"]["mean"]
