"""E14 — online serving tail latency (the queueing view).

The same dynamic-shape story measured the way a deployment feels it:
Poisson arrivals into a single-device FIFO queue.  Claims: compile-once
keeps p50≈p99; a per-shape JIT's recompiles queue behind live traffic and
blow the tail by orders of magnitude; per-op overhead raises the eager
median and drives utilisation toward saturation at the same load.
"""

import pytest

from repro.bench import (e14_serving_tail_latency,
                         format_serving_tail_latency, print_and_save)


@pytest.fixture(scope="module")
def experiment():
    result = e14_serving_tail_latency("A10", num_queries=40)
    print_and_save("e14_serving_tail_latency", result,
                   format_serving_tail_latency(result))
    return result


def test_bench_e14_serving(benchmark, experiment, bert_disc,
                           bert_inputs):
    benchmark(bert_disc.run, bert_inputs)
    rows = {r["system"]: r for r in experiment["rows"]}
    disc = rows["BladeDISC"]
    assert disc["compile_stalls"] == 0
    assert disc["p99_us"] < 5 * disc["p50_us"]  # flat tail
    assert rows["XLA"]["compile_stalls"] > 0
    assert rows["XLA"]["p99_us"] > 100 * disc["p99_us"]
    assert rows["PyTorch"]["p50_us"] > disc["p50_us"]
    assert rows["PyTorch"]["utilization"] > disc["utilization"]
