"""E5 — codegen strategy comparison table.

Three ways to generate code for dynamic shapes, measured as the number of
distinct shapes in the trace grows: recompile per shape signature
(XLA-style), one padded engine per bucket (TensorRT-style), and the
paper's compile-time/runtime combined approach.  Claims: the combined
strategy compiles exactly once regardless of diversity; recompilation cost
scales with the number of distinct shapes; padding pays a steady-state tax.
"""

import pytest

from repro.bench import e5_codegen_strategies, format_codegen_strategies, \
    print_and_save


@pytest.fixture(scope="module")
def experiment():
    result = e5_codegen_strategies("A10", num_queries=32,
                                   shape_counts=(1, 4, 16))
    print_and_save("e5_codegen_strategies", result,
                   format_codegen_strategies(result))
    return result


def test_bench_e5_codegen_strategies(benchmark, experiment, bert_disc,
                                     bert_inputs):
    benchmark(bert_disc.run, bert_inputs)
    rows = {(r["strategy"], r["distinct_shapes"]): r
            for r in experiment["rows"]}
    disc = "combined (BladeDISC)"
    xla = "recompile/shape (XLA-style)"
    trt = "bucket+pad (TensorRT-style)"
    for k in (1, 4, 16):
        assert rows[(disc, k)]["compile_events"] == 1
    assert rows[(xla, 16)]["compile_events"] > rows[(xla, 1)][
        "compile_events"]
    assert rows[(xla, 16)]["compile_total_s"] > \
        10 * rows[(disc, 16)]["compile_total_s"] / 10
    # padding tax: TRT steady latency above DISC's at high diversity
    assert rows[(trt, 16)]["steady_us_per_query"] > \
        rows[(disc, 16)]["steady_us_per_query"]
