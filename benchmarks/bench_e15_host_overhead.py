"""E15 — host wall-clock: compiled host program vs legacy interpreter.

The one experiment measuring *real* time, not simulated microseconds.
The legacy engine re-derives shape-generic structure on every call
(binding, whole-graph symbol resolution, dict environments, schedule
selection, cost evaluation); the host program freezes all of it at
compile time or into per-signature launch plans.  Claims: warm-signature
host overhead at least 2x lower than the legacy path across the zoo
replay, with outputs and simulated stats bit-identical.

Runnable directly as a perf-smoke gate (used by CI)::

    python benchmarks/bench_e15_host_overhead.py --quick
"""

import sys

import pytest

from repro.bench import (e15_host_overhead, format_host_overhead,
                         print_and_save)

#: CI gate: warm host overhead must beat legacy by at least this factor.
REQUIRED_SPEEDUP = 2.0

#: representative subset for --quick (CI smoke): an attention model, the
#: conv/LSTM pipeline, and the embedding-heavy recommender.
QUICK_MODELS = ["bert", "crnn", "dien"]


@pytest.fixture(scope="module")
def experiment():
    result = e15_host_overhead("A10")
    print_and_save("e15_host_overhead", result,
                   format_host_overhead(result))
    return result


def test_bench_e15_host_overhead(benchmark, experiment, bert_disc,
                                 bert_inputs):
    bert_disc.run(bert_inputs)           # warm the launch plan
    benchmark(bert_disc.run, bert_inputs)
    aggregate = experiment["aggregate"]
    assert aggregate["bit_identical"], \
        "host-program engine diverged from the legacy engine"
    assert aggregate["overhead_speedup_geomean"] >= REQUIRED_SPEEDUP, (
        f"warm host overhead only "
        f"{aggregate['overhead_speedup_geomean']:.2f}x below legacy "
        f"(need >= {REQUIRED_SPEEDUP}x)")
    assert all(r["overhead_speedup"] > 1.0 for r in experiment["rows"]), \
        "some model got slower on the host side"


def main(argv=None) -> int:
    import argparse
    parser = argparse.ArgumentParser(
        description="E15 host-overhead perf smoke",
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--quick", action="store_true",
                        help=f"subset ({', '.join(QUICK_MODELS)}) with "
                             f"fewer repeats; what CI runs")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 unless the geomean overhead speedup "
                             f"is >= {REQUIRED_SPEEDUP}x (implied by "
                             "--quick)")
    parser.add_argument("--device", default="A10")
    args = parser.parse_args(argv)

    if args.quick:
        result = e15_host_overhead(args.device, models=QUICK_MODELS,
                                   repeats=3)
    else:
        result = e15_host_overhead(args.device)
    print_and_save("e15_host_overhead", result,
                   format_host_overhead(result))

    if args.quick or args.check:
        aggregate = result["aggregate"]
        if not aggregate["bit_identical"]:
            print("FAIL: engines disagree on outputs or stats")
            return 1
        speedup = aggregate["overhead_speedup_geomean"]
        if speedup < REQUIRED_SPEEDUP:
            print(f"FAIL: warm host overhead speedup {speedup:.2f}x "
                  f"< required {REQUIRED_SPEEDUP}x")
            return 1
        # Timing now runs through obs tracer spans: every row of the
        # JSON artifact must carry the span breakdown, and the cold
        # recording pass must appear in it.
        for row in result["rows"]:
            breakdown = row.get("span_breakdown")
            if not breakdown or "bench:cold" not in breakdown:
                print(f"FAIL: {row['model']} row is missing its tracer "
                      f"span_breakdown")
                return 1
        print(f"OK: warm host overhead {speedup:.2f}x below legacy "
              f"(gate {REQUIRED_SPEEDUP}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
