"""E17 — dynamic batching: the throughput/latency frontier.

Single-sequence bert traffic (bimodal sequence lengths) replayed through
an unbatched ``ServingEngine`` and a ``BatchingServingEngine`` across a
Poisson arrival-rate sweep on the virtual clock.  The batcher buckets
requests by constraint-store-compatible signatures, pads only within a
bucket, and lowers each bucket to a single batched launch-plan replay.
Claims: at the 2 000 qps gate rate the batched engine serves at least
twice the unbatched throughput, with a p99 still inside 1.5x the
checked-in E16 async-serving baseline.

Runnable directly as a perf-smoke gate (used by CI)::

    python benchmarks/bench_e17_dynamic_batching.py --quick
"""

import json
import os
import sys

import pytest

from repro.bench import (e17_dynamic_batching, format_dynamic_batching,
                         print_and_save)

#: CI gate: batched throughput at the gate rate must be at least this
#: multiple of the unbatched throughput at the same offered load.
REQUIRED_THROUGHPUT_GAIN = 2.0

#: CI gate: batched p99 at the gate rate must stay within this factor
#: of the E16 async-serving baseline p99 (the checked-in artifact).
E16_P99_HEADROOM = 1.5

#: --quick (CI smoke): fewer queries and rates, same structure.
QUICK_QUERIES = 120
QUICK_RATES = [600.0, 2_000.0, 10_000.0]

_E16_RESULTS = os.path.join(os.path.dirname(__file__), "results",
                            "e16_async_serving.json")


def e16_async_p99_us() -> float:
    """The async+fallback p99 from the checked-in E16 artifact."""
    with open(_E16_RESULTS) as handle:
        e16 = json.load(handle)
    for row in e16["rows"]:
        if row["mode"] == "async + fallback":
            return float(row["p99_us"])
    raise AssertionError("E16 artifact has no 'async + fallback' row")


def _row(result, mode, rate):
    return next(r for r in result["rows"]
                if r["mode"] == mode and r["rate_qps"] == rate)


@pytest.fixture(scope="module")
def experiment():
    result = e17_dynamic_batching("A10")
    print_and_save("e17_dynamic_batching", result,
                   format_dynamic_batching(result))
    return result


def test_batched_throughput_at_least_doubles(experiment):
    assert experiment["throughput_gain_at_gate"] >= \
        REQUIRED_THROUGHPUT_GAIN, \
        (f"batched throughput only "
         f"{experiment['throughput_gain_at_gate']}x unbatched at "
         f"{experiment['gate_rate_qps']:.0f} qps")


def test_batched_p99_within_e16_async_baseline(experiment):
    gate = experiment["gate_rate_qps"]
    p99 = _row(experiment, "batched", gate)["p99_us"]
    bound = E16_P99_HEADROOM * e16_async_p99_us()
    assert p99 <= bound, \
        f"batched p99 {p99:.0f}us exceeds {bound:.0f}us " \
        f"({E16_P99_HEADROOM}x the E16 async baseline)"


def test_batching_sheds_no_request_the_solo_engine_keeps(experiment):
    # At every rate the batcher drains the queue at least as fast, so
    # it can never shed *more* than the unbatched engine.
    for rate in experiment["rates_qps"]:
        batched = _row(experiment, "batched", rate)
        unbatched = _row(experiment, "unbatched", rate)
        assert batched["shed"] <= unbatched["shed"], \
            f"batching shed more requests at {rate:.0f} qps"


def test_batches_actually_form_and_fill_under_load(experiment):
    top_rate = max(experiment["rates_qps"])
    row = _row(experiment, "batched", top_rate)
    assert row["batches"] > 0, "no batch ever formed"
    assert row["batched_served"] > 0, "no request took the batched path"
    assert row["mean_batch"] >= experiment["max_batch_size"] / 2, \
        "saturating load should fill batches at least halfway"


def test_padding_waste_stays_below_pow2_bound(experiment):
    # pow2 ceilings bound per-class padding below 2x, i.e. waste < 0.5,
    # and the bimodal trace should sit well under the worst case.
    for row in experiment["rows"]:
        if row["mean_padding_waste"] is not None:
            assert row["mean_padding_waste"] < 0.5


def main(argv=None) -> int:
    import argparse
    parser = argparse.ArgumentParser(
        description="E17 dynamic-batching perf smoke",
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--quick", action="store_true",
                        help=f"{QUICK_QUERIES}-query trace at "
                             f"{len(QUICK_RATES)} rates; what CI runs")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 unless batched throughput is >= "
                             f"{REQUIRED_THROUGHPUT_GAIN}x unbatched at "
                             "the gate rate with p99 inside "
                             f"{E16_P99_HEADROOM}x the E16 baseline "
                             "(implied by --quick)")
    parser.add_argument("--device", default="A10")
    args = parser.parse_args(argv)

    if args.quick:
        result = e17_dynamic_batching(args.device,
                                      num_queries=QUICK_QUERIES,
                                      rates_qps=QUICK_RATES)
    else:
        result = e17_dynamic_batching(args.device)
    print_and_save("e17_dynamic_batching", result,
                   format_dynamic_batching(result))

    if args.quick or args.check:
        gain = result["throughput_gain_at_gate"]
        if gain < REQUIRED_THROUGHPUT_GAIN:
            print(f"FAIL: batched throughput only {gain:.2f}x unbatched "
                  f"at {result['gate_rate_qps']:.0f} qps "
                  f"(need >= {REQUIRED_THROUGHPUT_GAIN}x)")
            return 1
        p99 = _row(result, "batched", result["gate_rate_qps"])["p99_us"]
        bound = E16_P99_HEADROOM * e16_async_p99_us()
        if p99 > bound:
            print(f"FAIL: batched p99 {p99:.0f}us exceeds {bound:.0f}us "
                  f"({E16_P99_HEADROOM}x the E16 async baseline)")
            return 1
        print(f"OK: {gain:.2f}x throughput at "
              f"{result['gate_rate_qps']:.0f} qps, batched p99 "
              f"{p99:.0f}us inside the E16 bound {bound:.0f}us")
    return 0


if __name__ == "__main__":
    sys.exit(main())
