"""E7 — shape-diversity sensitivity figure.

Amortised per-query latency (compilation included) as the number of
distinct shapes in the trace grows from 1 to 16, for BladeDISC and the
systems whose strategy degrades with diversity.  The claim: BladeDISC's
curve is flat; XLA's grows with every new signature; padded engines grow
stepwise per bucket; Inductor sits flat but high.
"""

import pytest

from repro.bench import e7_shape_diversity, format_shape_diversity, \
    print_and_save


@pytest.fixture(scope="module")
def experiment():
    result = e7_shape_diversity(
        "A10", num_queries=32, shape_counts=(1, 2, 4, 8, 16))
    print_and_save("e7_shape_diversity", result,
                   format_shape_diversity(result))
    return result


def test_bench_e7_shape_diversity(benchmark, experiment, bert_disc,
                                  bert_inputs):
    benchmark(bert_disc.run, bert_inputs)
    series = experiment["series"]
    disc = series["BladeDISC"]
    # flat for the compile-once system
    assert max(disc) < 2.5 * min(disc)
    # strictly growing burden for the per-signature JIT
    xla = series["XLA"]
    assert xla[-1] > xla[0]
    assert xla[-1] > disc[-1]
    # bucketed engines worse than DISC at high diversity too
    assert series["TensorRT"][-1] > disc[-1]
    assert series["TVM"][-1] > disc[-1]
