"""E10 — shape-computation placement + analysis-overhead table.

Two results: (a) host placement of shape scalar arithmetic removes one
kernel launch per shape op on a length-aware model; (b) the symbolic shape
analysis itself is a negligible share of compilation time for every zoo
model.
"""

import pytest

from repro.bench import e10_placement_overhead, \
    format_placement_overhead, print_and_save


@pytest.fixture(scope="module")
def experiment():
    result = e10_placement_overhead("A10", num_queries=10)
    print_and_save("e10_placement_overhead", result,
                   format_placement_overhead(result))
    return result


def test_bench_e10_placement(benchmark, experiment, bert_disc,
                             bert_inputs):
    benchmark(bert_disc.run, bert_inputs)
    enabled, disabled = experiment["placement_rows"]
    assert enabled["mean_steady_us"] < disabled["mean_steady_us"]
    assert enabled["kernels_per_query"] < disabled["kernels_per_query"]
    for row in experiment["analysis_rows"]:
        assert row["analysis_ms"] < 1e3 * row["pipeline_wall_s"]
