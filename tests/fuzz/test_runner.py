"""Campaign runner and corpus plumbing."""

import json

import numpy as np
import pytest

from repro.fuzz import (DifferentialOracle, FuzzReport, GeneratorConfig,
                        generate_graph, load_case, run_campaign, save_case)
from repro.fuzz.corpus import iter_corpus
from repro.fuzz.oracle import CaseResult, Failure
from repro.fuzz.runner import full_bindings
from repro.fuzz.sampler import binding_suite, free_symbols
from repro.ir import print_graph, verify

SMALL = GeneratorConfig(max_nodes=12)


def test_small_campaign_is_clean_and_reports_coverage(tmp_path):
    report = run_campaign(seed=0, iters=6, config=SMALL,
                          out_dir=tmp_path)
    assert report.ok
    assert report.cases_run == 6
    assert report.checks_run >= 6
    assert len(report.executors) == 8  # DISC + 7 baselines
    assert "parameter" in report.ops_covered
    text = report.summary()
    assert "failures:        0" in text
    assert "seed=0" in text


def test_campaign_is_deterministic():
    a = run_campaign(seed=3, iters=4, config=SMALL)
    b = run_campaign(seed=3, iters=4, config=SMALL)
    assert a.checks_run == b.checks_run
    assert a.ops_covered == b.ops_covered
    assert len(a.failures) == len(b.failures)


class _AlwaysFlagsTanh(DifferentialOracle):
    """A planted oracle: any graph containing tanh 'fails' on DISC."""

    def check_case(self, graph, bindings, input_seed=0):
        result = CaseResult(graph=graph, bindings=dict(bindings),
                            input_seed=input_seed,
                            ops_covered={n.op for n in graph.nodes})
        result.executors_checked = ["DISC"]
        if any(n.op == "tanh" for n in graph.nodes):
            result.failures.append(Failure(
                executor="DISC", kind="mismatch", detail="planted"))
        return result


def test_campaign_minimizes_and_saves_failures(tmp_path):
    report = run_campaign(seed=0, iters=10, config=SMALL,
                          out_dir=tmp_path, oracle=_AlwaysFlagsTanh())
    if not report.failures:
        pytest.skip("no seed in range produced a tanh")
    assert not report.ok
    assert report.artifacts
    for path in report.artifacts:
        graph, bindings, meta = load_case(path)
        verify(graph)
        assert any(n.op == "tanh" for n in graph.nodes)
        assert "minimized" in meta["note"]
        assert meta["failures"]
        # the minimized repro must be small
        assert len(graph.nodes) <= 4


def test_corpus_round_trip(tmp_path):
    graph = generate_graph(5)
    bindings = binding_suite(graph, limit=1, seed=0)[0]
    path = save_case(tmp_path / "case.json", graph, bindings,
                     {"note": "test"})
    loaded, loaded_bindings, meta = load_case(path)
    assert print_graph(loaded) == print_graph(graph)
    assert loaded_bindings == bindings
    assert meta["note"] == "test"
    assert iter_corpus(tmp_path) == [path]


def test_corpus_rejects_unknown_version(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"case_version": 99}))
    with pytest.raises(ValueError):
        load_case(path)


def test_full_bindings_extend_to_derived_symbols():
    for seed in range(15):
        graph = generate_graph(seed)
        primary = {name: 3 for name in free_symbols(graph)}
        extended = full_bindings(graph, primary)
        assert set(primary) <= set(extended)


def test_report_summary_lists_failures():
    report = FuzzReport(seed=1, iters=2)
    result = CaseResult(graph=generate_graph(0, SMALL), bindings={"s": 1},
                        input_seed=0)
    result.failures.append(Failure(executor="TVM", kind="mismatch",
                                   detail="off by one", output_index=0))
    report.failures.append((123, result))
    text = report.summary()
    assert "TVM" in text
    assert "off by one" in text
    assert "123" in text
